//! E-4.1 — the Figure 4.1 reduction: construction cost and solver scaling
//! on SAT → VMC instances (satisfiable family, so both solvers terminate
//! without hitting the exponential wall; the UNSAT blow-up is measured in
//! `fig5_reductions`).

use std::hint::black_box;
use vermem_coherence::{solve_backtracking, solve_sat, SearchConfig};
use vermem_reductions::reduce_sat_to_vmc;
use vermem_sat::random::{gen_forced_sat, RandomSatConfig};
use vermem_trace::Addr;
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/construct");
    for m in [4u32, 8, 16, 32] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        g.bench_with_input(BenchmarkId::from_parameter(m), &f, |b, f| {
            b.iter(|| black_box(reduce_sat_to_vmc(f)));
        });
    }
    g.finish();
}

fn bench_solve_backtracking(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/solve-backtracking");
    for m in [3u32, 4, 5, 6] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        let red = reduce_sat_to_vmc(&f);
        g.bench_with_input(BenchmarkId::from_parameter(m), &red.trace, |b, t| {
            b.iter(|| {
                let v = solve_backtracking(t, Addr::ZERO, &SearchConfig::default());
                assert!(v.is_coherent());
            });
        });
    }
    g.finish();
}

fn bench_solve_sat_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/solve-sat-encoding");
    g.sample_size(10);
    for m in [3u32, 4, 5] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        let red = reduce_sat_to_vmc(&f);
        g.bench_with_input(BenchmarkId::from_parameter(m), &red.trace, |b, t| {
            b.iter(|| {
                let v = solve_sat(t, Addr::ZERO);
                assert!(v.is_coherent());
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_solve_backtracking,
    bench_solve_sat_encoding
);
criterion_main!(benches);
