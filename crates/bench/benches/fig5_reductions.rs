//! E-5.1 / E-5.2 — the restricted reductions: construction cost, and the
//! exponential blow-up of exact search on reduced instances (the
//! NP-complete cells of Figure 5.3 in action).

use std::hint::black_box;
use vermem_coherence::{solve_backtracking, SearchConfig};
use vermem_reductions::{reduce_3sat_restricted, reduce_3sat_rmw};
use vermem_sat::random::{gen_forced_sat, gen_random_ksat, RandomSatConfig};
use vermem_trace::Addr;
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/construct");
    for m in [4u32, 8, 16, 32] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        g.bench_with_input(BenchmarkId::new("restricted", m), &f, |b, f| {
            b.iter(|| black_box(reduce_3sat_restricted(f)));
        });
        g.bench_with_input(BenchmarkId::new("rmw", m), &f, |b, f| {
            b.iter(|| black_box(reduce_3sat_rmw(f)));
        });
    }
    g.finish();
}

/// Exact search on *satisfiable* reduced instances — tractable but growing.
fn bench_solve_sat_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/solve-forced-sat");
    g.sample_size(10);
    for m in [3u32, 4, 5] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, 41 * u64::from(m)));
        let restricted = reduce_3sat_restricted(&f).trace;
        g.bench_with_input(BenchmarkId::new("restricted", m), &restricted, |b, t| {
            b.iter(|| {
                assert!(solve_backtracking(t, Addr::ZERO, &SearchConfig::default()).is_coherent());
            });
        });
        let rmw = reduce_3sat_rmw(&f).trace;
        g.bench_with_input(BenchmarkId::new("rmw", m), &rmw, |b, t| {
            b.iter(|| {
                assert!(solve_backtracking(t, Addr::ZERO, &SearchConfig::default()).is_coherent());
            });
        });
    }
    g.finish();
}

/// The blow-up: exact search on over-constrained (mostly UNSAT) instances.
/// A state budget bounds each call — the measured quantity is the cost of
/// exploring a fixed slice of the exponential space, which grows with the
/// instance even under the cap.
fn bench_solve_unsat_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/solve-overconstrained");
    g.sample_size(10);
    let capped = SearchConfig {
        max_states: Some(200_000),
        ..Default::default()
    };
    for m in [3u32, 4] {
        let f = gen_random_ksat(&RandomSatConfig::three_sat(m, 6.0, 53 * u64::from(m)));
        let rmw = reduce_3sat_rmw(&f).trace;
        g.bench_with_input(BenchmarkId::new("rmw", m), &rmw, |b, t| {
            b.iter(|| {
                black_box(solve_backtracking(t, Addr::ZERO, &capped));
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_solve_sat_instances,
    bench_solve_unsat_instances
);
criterion_main!(benches);
