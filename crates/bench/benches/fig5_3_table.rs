//! E-5.3 — the polynomial rows of Figure 5.3: one Criterion group per
//! implemented fast path over a size ladder, so the regression suite tracks
//! the measured scaling of every algorithm in the table.

use vermem_coherence::{
    one_op, readmap, rmw, solve_backtracking, solve_with_write_order, SearchConfig,
};
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::{Addr, Op, OpRef, ProcessHistory, Trace};
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZES: [usize; 4] = [256, 1024, 4096, 16384];

fn one_op_simple_instance(n: usize) -> Trace {
    // Write/read pairs share a value; each value is written ~twice.
    let vals = (n / 4).max(1);
    Trace::from_histories((0..n).map(|i| {
        let v = 1 + ((i / 2) % vals) as u64;
        ProcessHistory::from_ops([if i % 2 == 0 { Op::w(v) } else { Op::r(v) }])
    }))
}

fn one_op_rmw_instance(n: usize) -> Trace {
    Trace::from_histories((0..n).map(|i| {
        let next = if i + 1 == n { 0 } else { i as u64 + 1 };
        ProcessHistory::from_ops([Op::rw(i as u64, next)])
    }))
}

fn readmap_instance(n: usize) -> Trace {
    let procs = 4;
    let mut hists = vec![Vec::new(); procs];
    for i in 0..n / 2 {
        let v = i as u64 + 1;
        hists[i % procs].push(Op::w(v));
        hists[(i + 1) % procs].push(Op::r(v));
    }
    Trace::from_histories(hists.into_iter().map(ProcessHistory::from_ops))
}

fn rmw_chain_instance(n: usize) -> Trace {
    let procs = 4;
    let mut hists = vec![Vec::new(); procs];
    for i in 0..n {
        hists[i % procs].push(Op::rw(i as u64, i as u64 + 1));
    }
    Trace::from_histories(hists.into_iter().map(ProcessHistory::from_ops))
}

fn write_order_instance(n: usize, all_rmw: bool) -> (Trace, Vec<OpRef>) {
    let cfg = if all_rmw {
        GenConfig::all_rmw(4, n, n as u64)
    } else {
        GenConfig {
            procs: 4,
            total_ops: n,
            value_reuse: 0.5,
            seed: n as u64,
            ..Default::default()
        }
    };
    let (trace, witness) = gen_sc_trace(&cfg);
    let order = witness
        .refs()
        .iter()
        .copied()
        .filter(|&r| trace.op(r).unwrap().is_writing())
        .collect();
    (trace, order)
}

fn bench_row(
    c: &mut Criterion,
    name: &str,
    build: impl Fn(usize) -> Trace,
    solve: impl Fn(&Trace),
) {
    let mut g = c.benchmark_group(name);
    for &n in &SIZES {
        let trace = build(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, t| {
            b.iter(|| solve(t));
        });
    }
    g.finish();
}

fn fig5_3(c: &mut Criterion) {
    bench_row(c, "fig5.3/one-op-simple", one_op_simple_instance, |t| {
        assert!(one_op::solve_one_op(t, Addr::ZERO).is_coherent());
    });
    bench_row(c, "fig5.3/one-op-rmw-euler", one_op_rmw_instance, |t| {
        assert!(rmw::solve_rmw_one_op(t, Addr::ZERO).is_coherent());
    });
    bench_row(c, "fig5.3/readmap-simple", readmap_instance, |t| {
        assert!(readmap::solve_readmap(t, Addr::ZERO).is_coherent());
    });
    bench_row(c, "fig5.3/readmap-rmw-chain", rmw_chain_instance, |t| {
        assert!(rmw::solve_rmw_readmap(t, Addr::ZERO).is_coherent());
    });

    // Constant-k memoized search (k = 3); smaller ladder — the memo table
    // costs real memory at large n.
    let mut g = c.benchmark_group("fig5.3/constant-k3-backtracking");
    for &n in &[256usize, 512, 1024, 2048] {
        let (trace, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: n,
            addrs: 1,
            value_reuse: 0.5,
            seed: n as u64,
            ..Default::default()
        });
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, t| {
            b.iter(|| {
                assert!(solve_backtracking(t, Addr::ZERO, &SearchConfig::default()).is_coherent());
            });
        });
    }
    g.finish();

    // §5.2 write-order algorithm, simple and all-RMW.
    for (name, all_rmw) in [
        ("fig5.3/write-order-simple", false),
        ("fig5.3/write-order-rmw", true),
    ] {
        let mut g = c.benchmark_group(name);
        for &n in &SIZES {
            let (trace, order) = write_order_instance(n, all_rmw);
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(
                BenchmarkId::from_parameter(n),
                &(trace, order),
                |b, (t, o)| {
                    b.iter(|| {
                        assert!(solve_with_write_order(t, Addr::ZERO, o).is_coherent());
                    });
                },
            );
        }
        g.finish();
    }
}

criterion_group!(benches, fig5_3);
criterion_main!(benches);
