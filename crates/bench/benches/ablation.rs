//! Ablation study for the exact VMC search — the design choices DESIGN.md
//! calls out: memoization, greedy read absorption, demand-driven move
//! ordering, and (PR-4) the three inference prunings. Each is toggled on
//! the same hard instances.

use std::hint::black_box;
use vermem_coherence::{solve_backtracking, PruneConfig, SearchConfig};
use vermem_sat::random::{gen_random_ksat, RandomSatConfig};
use vermem_trace::gen::gen_hard_coherent;
use vermem_trace::{Addr, Trace};
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn configs() -> Vec<(&'static str, SearchConfig)> {
    // The historical PR-2 ablation axes are pinned to `PruneConfig::none()`
    // so they keep measuring memo/absorption/ordering effects in isolation,
    // not interactions with the PR-4 inference layer.
    let base = SearchConfig {
        prune: PruneConfig::none(),
        ..Default::default()
    };
    vec![
        ("full", base),
        (
            "no-memo",
            SearchConfig {
                memoize: false,
                ..base
            },
        ),
        (
            "no-absorption",
            SearchConfig {
                greedy_absorption: false,
                ..base
            },
        ),
        (
            "no-hot-order",
            SearchConfig {
                hot_move_ordering: false,
                ..base
            },
        ),
        // Memo-key ablation: SipHash'd Vec<u32> keys instead of the packed
        // u64 / interned FxHash representation. Same states, slower table.
        (
            "legacy-memo-keys",
            SearchConfig {
                legacy_memo_keys: true,
                ..base
            },
        ),
    ]
}

/// One row per prune setting — the E-PRUNE bench-harness counterpart of the
/// experiments binary's `eprune` ablation.
fn prune_configs() -> Vec<(&'static str, SearchConfig)> {
    let spec = |s: &str| SearchConfig {
        prune: PruneConfig::parse(s).expect("static spec"),
        // Bounded so the unpruned configuration cannot blow the bench
        // budget on the §5.2 instance; pruned configs finish far below it.
        max_states: Some(50_000),
        ..Default::default()
    };
    vec![
        ("prune-none", spec("none")),
        ("prune-windows", spec("windows")),
        ("prune-symmetry", spec("symmetry")),
        ("prune-nogoods", spec("nogoods")),
        ("prune-all", spec("all")),
    ]
}

fn instance(seed: u64) -> Trace {
    // 5 processes × 8 ops with value reuse: inside the NP-complete cell but
    // solvable by all configurations within bench time.
    gen_hard_coherent(5, 8, 2, seed).0
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/backtracking");
    g.sample_size(10);
    let traces: Vec<Trace> = (0..4).map(instance).collect();
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &traces, |b, traces| {
            b.iter(|| {
                for t in traces {
                    assert!(solve_backtracking(t, Addr::ZERO, &cfg).is_coherent());
                }
            });
        });
    }
    g.finish();
}

/// Ablation on a larger constant-k instance, where memoization is the
/// difference between polynomial and exponential behaviour.
fn bench_ablation_constant_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/constant-k");
    g.sample_size(10);
    let trace = gen_hard_coherent(3, 40, 2, 99).0;
    for (name, cfg) in configs() {
        // Skip no-memo at this size — it is the exponential configuration.
        if name == "no-memo" {
            continue;
        }
        g.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| {
                assert!(solve_backtracking(t, Addr::ZERO, &cfg).is_coherent());
            });
        });
    }
    g.finish();
}

/// PR-4 prune ablation on the workloads where the inference layer bites:
/// a hard coherent instance (windows/symmetry territory) and the §5.2 RMW
/// reduction of an over-constrained random 3-SAT formula (the blow-up case
/// where `prune-none` hits the state cap and `prune-all` finishes in
/// hundreds of states).
fn bench_prune_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/prune");
    g.sample_size(10);
    let hard = gen_hard_coherent(5, 8, 2, 7).0;
    let rmw = vermem_reductions::reduce_3sat_rmw(&gen_random_ksat(&RandomSatConfig::three_sat(
        3, 5.0, 93,
    )))
    .trace;
    for (name, cfg) in prune_configs() {
        g.bench_with_input(BenchmarkId::new("hard-coherent", name), &hard, |b, t| {
            b.iter(|| assert!(solve_backtracking(t, Addr::ZERO, &cfg).is_coherent()));
        });
        // Verdicts legitimately differ here (`prune-none` caps out, pruned
        // configs decide), so only the work is measured.
        g.bench_with_input(BenchmarkId::new("rmw-5.2", name), &rmw, |b, t| {
            b.iter(|| black_box(solve_backtracking(t, Addr::ZERO, &cfg)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ablation,
    bench_ablation_constant_k,
    bench_prune_ablation
);
criterion_main!(benches);
