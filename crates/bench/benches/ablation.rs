//! Ablation study for the exact VMC search — the design choices DESIGN.md
//! calls out: memoization, greedy read absorption, and demand-driven move
//! ordering. Each is disabled in turn on the same hard coherent instances.

use vermem_coherence::{solve_backtracking, SearchConfig};
use vermem_trace::gen::gen_hard_coherent;
use vermem_trace::{Addr, Trace};
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn configs() -> Vec<(&'static str, SearchConfig)> {
    vec![
        ("full", SearchConfig::default()),
        (
            "no-memo",
            SearchConfig {
                memoize: false,
                ..Default::default()
            },
        ),
        (
            "no-absorption",
            SearchConfig {
                greedy_absorption: false,
                ..Default::default()
            },
        ),
        (
            "no-hot-order",
            SearchConfig {
                hot_move_ordering: false,
                ..Default::default()
            },
        ),
        // Memo-key ablation: SipHash'd Vec<u32> keys instead of the packed
        // u64 / interned FxHash representation. Same states, slower table.
        (
            "legacy-memo-keys",
            SearchConfig {
                legacy_memo_keys: true,
                ..Default::default()
            },
        ),
    ]
}

fn instance(seed: u64) -> Trace {
    // 5 processes × 8 ops with value reuse: inside the NP-complete cell but
    // solvable by all configurations within bench time.
    gen_hard_coherent(5, 8, 2, seed).0
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/backtracking");
    g.sample_size(10);
    let traces: Vec<Trace> = (0..4).map(instance).collect();
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &traces, |b, traces| {
            b.iter(|| {
                for t in traces {
                    assert!(solve_backtracking(t, Addr::ZERO, &cfg).is_coherent());
                }
            });
        });
    }
    g.finish();
}

/// Ablation on a larger constant-k instance, where memoization is the
/// difference between polynomial and exponential behaviour.
fn bench_ablation_constant_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/constant-k");
    g.sample_size(10);
    let trace = gen_hard_coherent(3, 40, 2, 99).0;
    for (name, cfg) in configs() {
        // Skip no-memo at this size — it is the exponential configuration.
        if name == "no-memo" {
            continue;
        }
        g.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| {
                assert!(solve_backtracking(t, Addr::ZERO, &cfg).is_coherent());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation, bench_ablation_constant_k);
criterion_main!(benches);
