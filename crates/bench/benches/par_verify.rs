//! Thread-count ladder for the deterministic parallel execution verifier
//! ([`vermem_coherence::verify_execution_par`]) on multi-address traces:
//! generator-produced SC traces and MESI-simulator captures. The verdict is
//! bit-identical at every rung (see `crates/coherence/src/par.rs`), so this
//! measures pure scheduling overhead/speedup, not answer drift.

use std::hint::black_box;
use vermem_coherence::{verify_execution_par, VmcVerifier};
use vermem_sim::{random_program, Machine, MachineConfig, WorkloadConfig};
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::Trace;
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const JOBS_LADDER: [usize; 4] = [1, 2, 4, 8];

fn sc_trace(total_ops: usize, addrs: usize) -> Trace {
    gen_sc_trace(&GenConfig {
        procs: 4,
        total_ops,
        addrs,
        value_reuse: 0.5,
        seed: (total_ops ^ addrs) as u64,
        ..Default::default()
    })
    .0
}

fn bench_generated(c: &mut Criterion) {
    let verifier = VmcVerifier::new();
    let mut g = c.benchmark_group("par/verify-generated");
    g.sample_size(10);
    for &(ops, addrs) in &[(2048usize, 16usize), (8192, 64)] {
        let t = sc_trace(ops, addrs);
        g.throughput(Throughput::Elements(t.num_ops() as u64));
        for jobs in JOBS_LADDER {
            g.bench_with_input(
                BenchmarkId::new(format!("{ops}ops-{addrs}addrs"), jobs),
                &t,
                |b, t| {
                    b.iter(|| {
                        let report = verify_execution_par(t, &verifier, jobs);
                        assert!(report.is_coherent());
                        black_box(report)
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_sim_capture(c: &mut Criterion) {
    let verifier = VmcVerifier::new();
    let mut g = c.benchmark_group("par/verify-sim-capture");
    g.sample_size(10);
    for &instrs in &[1024usize, 4096] {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: instrs / 4,
            addrs: 16,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed: instrs as u64,
        });
        let cap = Machine::run(&program, MachineConfig::default());
        g.throughput(Throughput::Elements(cap.trace.num_ops() as u64));
        for jobs in JOBS_LADDER {
            g.bench_with_input(
                BenchmarkId::new(format!("{instrs}instrs"), jobs),
                &cap.trace,
                |b, t| {
                    b.iter(|| {
                        let report = verify_execution_par(t, &verifier, jobs);
                        assert!(report.is_coherent());
                        black_box(report)
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generated, bench_sim_capture);
criterion_main!(benches);
