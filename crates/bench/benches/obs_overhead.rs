//! The "zero overhead when off" claim of DESIGN.md §Observability, made
//! falsifiable:
//!
//! 1. **Macro micro-bench** — a tight loop of disabled `counter!` /
//!    `histogram!` calls against the same loop with no instrumentation at
//!    all. Disabled, each macro is one relaxed atomic load and a
//!    never-taken branch; the two loops should be indistinguishable.
//! 2. **End-to-end** — the E-5.2 over-constrained blow-up instance (the
//!    memo-ablation workload) solved under a state cap with the
//!    observability layer off and on. The off run is the production
//!    default; EXPERIMENTS.md E-OBS records the measured delta.
//!
//! The obs state is process-global, so each configuration sets it
//! explicitly before timing and the bench restores the default (off,
//! empty) at the end.

use vermem_coherence::{solve_backtracking, SearchConfig};
use vermem_sat::random::{gen_random_ksat, RandomSatConfig};
use vermem_trace::Addr;
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vermem_util::obs;

/// The E-5.2 instance at the exponential wall, capped so every run does the
/// same bounded amount of work (each visited state is a memo probe and —
/// when obs is on — a depth-histogram record).
fn capped_instance() -> (vermem_trace::Trace, SearchConfig) {
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let overcons = gen_random_ksat(&RandomSatConfig::three_sat(3, 5.0, 93));
    let trace = vermem_reductions::reduce_3sat_rmw(&overcons).trace;
    let cfg = SearchConfig {
        max_states: Some(if fast { 50_000 } else { 500_000 }),
        ..Default::default()
    };
    (trace, cfg)
}

fn bench_disabled_macros(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/disabled-macros");
    g.sample_size(20);
    obs::set_enabled(false);
    const N: u64 = 100_000;

    // Baseline: the loop body with no instrumentation at all. `black_box`
    // keeps the compiler from folding the loop away.
    g.bench_function(BenchmarkId::from_parameter("uninstrumented"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc)
        });
    });

    // Same loop with a disabled counter! + histogram! per iteration.
    g.bench_function(BenchmarkId::from_parameter("disabled-macros"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(std::hint::black_box(i));
                vermem_util::counter!("bench.obs.noop", 1);
                vermem_util::histogram!("bench.obs.noop_hist", i);
            }
            std::hint::black_box(acc)
        });
    });
    g.finish();
}

fn bench_e52_off_vs_on(c: &mut Criterion) {
    let (trace, cfg) = capped_instance();
    let mut g = c.benchmark_group("obs/e5.2-capped-search");
    g.sample_size(10);

    obs::set_enabled(false);
    g.bench_with_input(BenchmarkId::from_parameter("obs-off"), &trace, |b, t| {
        b.iter(|| {
            let _ = solve_backtracking(t, Addr::ZERO, &cfg);
        });
    });

    obs::set_enabled(true);
    g.bench_with_input(BenchmarkId::from_parameter("obs-on"), &trace, |b, t| {
        b.iter(|| {
            let _ = solve_backtracking(t, Addr::ZERO, &cfg);
        });
    });
    g.finish();

    // Restore the process default: off, nothing accumulated.
    obs::set_enabled(false);
    obs::reset();
}

criterion_group!(benches, bench_disabled_macros, bench_e52_off_vs_on);
criterion_main!(benches);
