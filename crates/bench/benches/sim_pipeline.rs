//! E-SIM — the dynamic-verification pipeline: simulator throughput,
//! capture-and-verify end to end (exact vs §5.2 write-order path), and the
//! SAT substrate (CDCL vs DPLL) on random 3-SAT near the phase transition.

use std::hint::black_box;
use vermem_coherence::solve_with_write_order;
use vermem_sat::random::{gen_random_ksat, RandomSatConfig};
use vermem_sat::{solve_cdcl, solve_dpll};
use vermem_sim::{random_program, Machine, MachineConfig, WorkloadConfig};
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workload(instrs: usize) -> vermem_sim::Program {
    random_program(&WorkloadConfig {
        cpus: 4,
        instrs_per_cpu: instrs / 4,
        addrs: 4,
        write_fraction: 0.45,
        rmw_fraction: 0.1,
        seed: instrs as u64,
    })
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/machine-run");
    for &instrs in &[256usize, 1024, 4096] {
        let p = workload(instrs);
        g.throughput(Throughput::Elements(instrs as u64));
        g.bench_with_input(BenchmarkId::new("sc", instrs), &p, |b, p| {
            b.iter(|| black_box(Machine::run(p, MachineConfig::default())));
        });
        g.bench_with_input(BenchmarkId::new("tso", instrs), &p, |b, p| {
            b.iter(|| {
                black_box(Machine::run(
                    p,
                    MachineConfig {
                        store_buffers: true,
                        ..Default::default()
                    },
                ))
            });
        });
    }
    g.finish();
}

fn bench_capture_and_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/capture-and-verify");
    for &instrs in &[256usize, 1024, 4096] {
        let p = workload(instrs);
        let cap = Machine::run(&p, MachineConfig::default());
        g.throughput(Throughput::Elements(instrs as u64));
        g.bench_with_input(BenchmarkId::new("exact", instrs), &cap.trace, |b, t| {
            b.iter(|| {
                assert!(vermem_coherence::verify_execution(t).is_coherent());
            });
        });
        g.bench_with_input(
            BenchmarkId::new("write-order", instrs),
            &(cap.trace.clone(), cap.write_order.clone()),
            |b, (t, orders)| {
                b.iter(|| {
                    for (addr, order) in orders {
                        assert!(solve_with_write_order(t, *addr, order).is_coherent());
                    }
                });
            },
        );
    }
    g.finish();
}

/// The PR-4 `AddrIndex::build` allocation-churn fix: exact-capacity
/// two-pass counting build vs the historical doubling-growth build. More
/// addresses per trace means more per-(address, process) vectors whose
/// realloc chains the counting pass now avoids.
fn bench_addr_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/addr-index");
    for &(instrs, addrs) in &[(1024usize, 4usize), (4096, 16), (16384, 64)] {
        let p = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: instrs / 4,
            addrs,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed: (instrs ^ addrs) as u64,
        });
        let cap = Machine::run(&p, MachineConfig::default());
        g.throughput(Throughput::Elements(cap.trace.num_ops() as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("{addrs}addrs"), instrs),
            &cap.trace,
            |b, t| {
                b.iter(|| black_box(vermem_trace::AddrIndex::build(t)));
            },
        );
    }
    g.finish();
}

fn bench_online_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/online-checker");
    for &instrs in &[256usize, 1024, 4096, 16384] {
        let p = workload(instrs);
        let cap = Machine::run(&p, MachineConfig::default());
        g.throughput(Throughput::Elements(cap.event_log.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(instrs),
            &cap.event_log,
            |b, log| {
                b.iter(|| {
                    let mut v = vermem_coherence::OnlineVerifier::new();
                    for &(proc, op) in log {
                        v.observe(proc, op);
                    }
                    assert!(v.finish().is_empty());
                });
            },
        );
    }
    g.finish();
}

fn bench_sat_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat/cdcl-vs-dpll");
    g.sample_size(10);
    for vars in [20u32, 40, 60] {
        let f = gen_random_ksat(&RandomSatConfig::three_sat(vars, 4.26, u64::from(vars)));
        g.bench_with_input(BenchmarkId::new("cdcl", vars), &f, |b, f| {
            b.iter(|| black_box(solve_cdcl(f)));
        });
        // DPLL only at the smallest size — it falls off the cliff fast.
        if vars == 20 {
            g.bench_with_input(BenchmarkId::new("dpll", vars), &f, |b, f| {
                b.iter(|| black_box(solve_dpll(f)));
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_machine,
    bench_capture_and_verify,
    bench_addr_index,
    bench_online_checker,
    bench_sat_substrate
);
criterion_main!(benches);
