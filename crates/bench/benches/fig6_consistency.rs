//! E-6.x — consistency verification: the VSCC pipeline stages on Figure
//! 6.2 instances (per-address coherence is cheap, exact VSC is not), the
//! VSC-Conflict merge, the LRC-wrapped reduction, and the litmus suite
//! across all memory models.

use std::hint::black_box;
use vermem_coherence::ExecutionVerdict;
use vermem_consistency::litmus::all_litmus_tests;
use vermem_consistency::{
    merge_coherent_schedules, solve_model_sat, solve_sc_backtracking, verify_model_operational,
    KernelConfig, MemoryModel,
};
use vermem_reductions::{reduce_sat_to_lrc, reduce_sat_to_vscc};
use vermem_sat::random::{gen_forced_sat, RandomSatConfig};
use vermem_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_vscc_stages(c: &mut Criterion) {
    let mut coh = c.benchmark_group("fig6/vscc-coherence-stage");
    for m in [3u32, 4, 6, 8] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        let red = reduce_sat_to_vscc(&f);
        coh.bench_with_input(BenchmarkId::from_parameter(m), &red.trace, |b, t| {
            b.iter(|| {
                assert!(vermem_coherence::verify_execution(t).is_coherent());
            });
        });
    }
    coh.finish();

    let mut merge = c.benchmark_group("fig6/vscc-merge-stage");
    for m in [3u32, 4, 6, 8] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        let red = reduce_sat_to_vscc(&f);
        let ExecutionVerdict::Coherent(schedules) = vermem_coherence::verify_execution(&red.trace)
        else {
            panic!("promise holds");
        };
        merge.bench_with_input(
            BenchmarkId::from_parameter(m),
            &(red.trace, schedules),
            |b, (t, s)| {
                b.iter(|| black_box(merge_coherent_schedules(t, s)));
            },
        );
    }
    merge.finish();

    let mut exact = c.benchmark_group("fig6/vscc-exact-vsc-stage");
    exact.sample_size(10);
    for m in [3u32, 4, 5] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        let red = reduce_sat_to_vscc(&f);
        exact.bench_with_input(BenchmarkId::from_parameter(m), &red.trace, |b, t| {
            b.iter(|| {
                assert!(solve_sc_backtracking(t, &KernelConfig::default()).is_consistent());
            });
        });
    }
    exact.finish();
}

fn bench_lrc(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/lrc-verify");
    for m in [3u32, 4, 5] {
        let f = gen_forced_sat(&RandomSatConfig::three_sat(m, 3.0, u64::from(m)));
        let red = reduce_sat_to_lrc(&f);
        g.bench_with_input(BenchmarkId::from_parameter(m), &red.sync_trace, |b, t| {
            b.iter(|| {
                let v = vermem_consistency::lrc::verify_lrc_fully_synchronized(
                    t,
                    vermem_reductions::lrc::LOCK,
                )
                .expect("fully synchronized");
                assert!(v.is_coherent());
            });
        });
    }
    g.finish();
}

fn bench_litmus(c: &mut Criterion) {
    let tests = all_litmus_tests();
    let mut g = c.benchmark_group("fig6/litmus-suite");
    for model in MemoryModel::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(model), &tests, |b, tests| {
            b.iter(|| {
                for t in tests {
                    let got = solve_model_sat(&t.trace, model).is_consistent();
                    assert_eq!(got, t.expected[&model]);
                }
            });
        });
    }
    g.finish();
}

/// The shared exact-search kernel across all three operational machines
/// (SC / TSO / PSO), packed-or-interned memo keys against the legacy
/// alloc-per-probe representation, on one contended generated workload.
fn bench_model_kernel(c: &mut Criterion) {
    use vermem_trace::gen::{gen_sc_trace, GenConfig};
    let (trace, _) = gen_sc_trace(&GenConfig {
        procs: 3,
        total_ops: 24,
        addrs: 2,
        value_reuse: 0.6,
        seed: 4242,
        ..Default::default()
    });
    let configs = [
        ("kernel", KernelConfig::default()),
        (
            "legacy-keys",
            KernelConfig {
                legacy_keys: true,
                ..Default::default()
            },
        ),
    ];
    let mut g = c.benchmark_group("fig6/model-kernel");
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        for (name, cfg) in &configs {
            g.bench_with_input(
                BenchmarkId::new(format!("{model}"), name),
                &(&trace, cfg),
                |b, (t, cfg)| {
                    b.iter(|| {
                        let (verdict, _) = verify_model_operational(t, model, cfg);
                        assert!(verdict.is_consistent());
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vscc_stages,
    bench_lrc,
    bench_litmus,
    bench_model_kernel
);
criterion_main!(benches);
