//! Regenerates every table and figure of the paper's evaluation as console
//! tables, pairing each complexity claim with a measured growth exponent or
//! blow-up factor. See DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! ```sh
//! cargo run --release -p vermem-bench --bin experiments            # all
//! cargo run --release -p vermem-bench --bin experiments -- e5.3   # one
//! cargo run --release -p vermem-bench --bin experiments -- --json # BENCH_vmc.json
//! ```
//!
//! `--json` runs the E-PAR thread ladder, the memo-key ablation, the
//! E-KERNEL operational-machine ablation (SC/TSO/PSO on the shared
//! exact-search kernel, packed/interned vs legacy memo keys), the E-TIER
//! tiered-verification ablation (closure frontline vs exact-only, per
//! trace family), the E-AXIOM declared-model ablation (every `ModelSpec`
//! model through the operational compiler, the SAT compiler, and — for the
//! base models — the verbatim legacy machines, plus the RA polynomial-tier
//! decision-rate probe), the E-STREAM streaming-engine family (sustained ops/s,
//! p99 detection latency, and the bounded-memory peak-retained-windows
//! probe at 1/4/16 concurrent streams), and the observability-overhead
//! probe, and writes machine-readable receipts (per-case medians, op/s,
//! speedup vs 1 thread, memo hit/miss counts, per-model key-allocation
//! counts, per-tier address accounting, enabled-vs-disabled obs cost) to
//! `BENCH_vmc.json` in the current directory. Set `VERMEM_BENCH_FAST=1` to shrink instance sizes and
//! repetitions for smoke-test runs.
//!
//! `--metrics` prints the unified run report (counters/gauges/histograms
//! accumulated across the selected experiments) when the run finishes;
//! `--trace-out FILE` additionally writes a Chrome trace-event file
//! loadable in Perfetto / `chrome://tracing`.

use std::time::Instant;
use vermem_bench::{loglog_slope, mean_growth_ratio, median_secs};
use vermem_coherence::{
    one_op, readmap, rmw, solve_backtracking, solve_backtracking_with_stats,
    solve_with_write_order, verify_execution_par, PruneConfig, SearchConfig, TierConfig, TierStats,
    VmcVerifier,
};
use vermem_consistency::{
    merge_coherent_schedules, solve_sc_backtracking, verify_axiom, verify_model_operational,
    AxiomConfig, Engine, KernelConfig, MemoryModel, MergeOutcome, ModelId,
};
use vermem_reductions::{
    example_fig_4_2, reduce_3sat_restricted, reduce_3sat_rmw, reduce_sat_to_lrc, reduce_sat_to_vmc,
    reduce_sat_to_vscc,
};
use vermem_sat::random::{gen_random_ksat, RandomSatConfig};
use vermem_sat::solve_cdcl;
use vermem_sim::{
    random_program, shared_counter, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig,
};
use vermem_trace::classify::InstanceProfile;
use vermem_trace::gen::{gen_sc_trace, inject_violation, GenConfig, ViolationKind};
use vermem_trace::{Addr, OpRef, Trace};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `--trace-out` takes a value: pre-extract it (both `--trace-out FILE`
    // and `--trace-out=FILE`) before the filter scan below so the path is
    // not mistaken for an experiment id.
    let mut trace_out: Option<String> = None;
    let mut metrics = false;
    let mut argv: Vec<String> = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--trace-out" {
            match it.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out requires a file argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(path) = a.strip_prefix("--trace-out=") {
            trace_out = Some(path.to_string());
        } else if a == "--metrics" {
            metrics = true;
        } else {
            argv.push(a);
        }
    }
    let obs_on = metrics || trace_out.is_some();
    if obs_on {
        vermem_util::obs::reset();
        vermem_util::obs::set_enabled(true);
    }
    let json = argv.iter().any(|a| a == "--json");
    let filter = argv
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        // Bare `--json` means "produce the receipts": run only E-PAR + the
        // memo ablation rather than the whole console suite.
        .unwrap_or_else(|| {
            if json {
                "epar".to_string()
            } else {
                "all".to_string()
            }
        });
    let run = |id: &str| filter == "all" || filter == id;

    if run("e4.1") {
        e4_1_sat_to_vmc();
    }
    if run("e4.2") {
        e4_2_worked_example();
    }
    if run("e5.1") {
        e5_reduction("e5.1 (Figure 5.1)", &|f| reduce_3sat_restricted(f).trace);
    }
    if run("e5.2") {
        e5_reduction("e5.2 (Figure 5.2)", &|f| reduce_3sat_rmw(f).trace);
    }
    if run("e5.3") {
        e5_3_table();
    }
    if run("e6.1") {
        e6_1_lrc();
    }
    if run("e6.2") || run("e6.3") {
        e6_2_vscc();
    }
    if run("evscc") {
        e_vscc_hardness();
    }
    if run("esim") {
        e_sim_detection();
    }
    if run("eonline") {
        e_online_checker();
    }
    if run("eopen") {
        e_open_problems();
    }
    if run("epar") {
        e_par_scaling(json);
    }
    if filter == "eprune" {
        // Included in `epar`'s receipt run; also runnable standalone.
        e_prune();
    }
    if filter == "ekernel" {
        // Included in `epar`'s receipt run; also runnable standalone.
        e_kernel();
    }
    if filter == "etier" {
        // Included in `epar`'s receipt run; also runnable standalone.
        e_tier();
    }
    if filter == "eaxiom" {
        // Included in `epar`'s receipt run; also runnable standalone.
        e_axiom();
    }
    if filter == "estream" {
        // Included in `epar`'s receipt run; also runnable standalone.
        e_stream();
    }
    if filter == "ehotpath" {
        // Included in `epar`'s receipt run; also runnable standalone.
        e_hotpath();
    }

    if obs_on {
        vermem_util::obs::set_enabled(false);
        let events = vermem_util::obs::take_events();
        if let Some(path) = &trace_out {
            std::fs::write(path, vermem_util::obs::chrome::render_chrome_trace(&events))
                .expect("write trace-out file");
            println!("\nwrote Chrome trace ({} events) to {path}", events.len());
        }
        if metrics {
            let mut report = vermem_util::obs::report::RunReport::new();
            report.extend_from_metrics(&vermem_util::obs::snapshot());
            header("run report (accumulated across selected experiments)");
            print!("{}", report.to_text());
        }
    }
}

fn header(title: &str) {
    println!("\n==========================================================================");
    println!("{title}");
    println!("==========================================================================");
}

// ---------------------------------------------------------------------------
// E-4.1: the SAT → VMC reduction at scale.
// ---------------------------------------------------------------------------
fn e4_1_sat_to_vmc() {
    header("E-4.1  SAT → VMC (Figure 4.1): size and equisatisfiability");
    println!("paper: instance has 2m+3 histories and O(mn) operations; coherent iff SAT");
    println!(
        "{:>4} {:>4} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "m", "n", "histories", "ops", "SAT", "coherent", "agree"
    );
    let mut agreements = 0;
    let mut total = 0;
    for m in [3u32, 4, 5, 6] {
        for ratio in [2.0, 4.0] {
            let cfg = RandomSatConfig::three_sat(m, ratio, 7 * u64::from(m));
            let f = gen_random_ksat(&cfg);
            let red = reduce_sat_to_vmc(&f);
            let sat = solve_cdcl(&f).is_sat();
            let coh =
                solve_backtracking(&red.trace, Addr::ZERO, &SearchConfig::default()).is_coherent();
            total += 1;
            if sat == coh {
                agreements += 1;
            }
            println!(
                "{:>4} {:>4} {:>10} {:>8} {:>10} {:>10} {:>8}",
                m,
                f.num_clauses(),
                red.trace.num_procs(),
                red.trace.num_ops(),
                sat,
                coh,
                sat == coh
            );
        }
    }
    println!("equisatisfiability: {agreements}/{total}");
}

// ---------------------------------------------------------------------------
// E-4.2: the worked example of Figure 4.2.
// ---------------------------------------------------------------------------
fn e4_2_worked_example() {
    header("E-4.2  worked example (Figure 4.2): Q = u");
    let red = example_fig_4_2();
    println!("instance:\n{}", vermem_trace::fmt::format_trace(&red.trace));
    let verdict = solve_backtracking(&red.trace, Addr::ZERO, &SearchConfig::default());
    let schedule = verdict.schedule().expect("Q = u is satisfiable");
    println!("coherent schedule: {schedule:?}");
    let model = red.extract_assignment(schedule);
    println!(
        "extracted T(u) = {} (paper: coherent iff W(d_u) precedes W(d_ū))",
        model.value(vermem_sat::Var(0)).unwrap()
    );
}

// ---------------------------------------------------------------------------
// E-5.1 / E-5.2: the restricted reductions — restriction check + blow-up.
// ---------------------------------------------------------------------------
fn e5_reduction(title: &str, reduce: &dyn Fn(&vermem_sat::Cnf) -> Trace) {
    header(&format!(
        "{title}: restrictions hold; exact-solver states blow up with m"
    ));
    println!(
        "{:>10} {:>4} {:>6} {:>8} {:>12} {:>14} {:>12}",
        "family", "m", "ops", "ops/proc", "writes/value", "states", "verdict"
    );
    // A state budget keeps the harness bounded; a capped row already
    // demonstrates the blow-up. Pruning is off here by design: E-5.1/E-5.2
    // measure the *baseline* exponential wall of the exact search; how much
    // of it the PR-4 inference layer recovers is E-PRUNE's question.
    const CAP: u64 = 2_000_000;
    let cfg_capped = SearchConfig {
        max_states: Some(CAP),
        prune: PruneConfig::none(),
        ..Default::default()
    };
    let mut points = Vec::new();
    let solve_row = |family: &str, m: u32, f: &vermem_sat::Cnf| -> (u64, bool) {
        let trace = reduce(f);
        let profile = InstanceProfile::of(&trace, Addr::ZERO);
        let (verdict, stats) = solve_backtracking_with_stats(&trace, Addr::ZERO, &cfg_capped);
        let verdict_str = match &verdict {
            vermem_coherence::Verdict::Coherent(_) => "coherent",
            vermem_coherence::Verdict::Incoherent(_) => "incoherent",
            vermem_coherence::Verdict::Unknown => "capped",
        };
        println!(
            "{:>10} {:>4} {:>6} {:>8} {:>12} {:>14} {:>12}",
            family,
            m,
            trace.num_ops(),
            profile.max_ops_per_proc,
            profile.max_writes_per_value,
            stats.states,
            verdict_str
        );
        (
            stats.states,
            matches!(verdict, vermem_coherence::Verdict::Unknown),
        )
    };

    // Satisfiable family: the search completes; states grow with m.
    let mut wall: Option<u32> = None;
    for m in [3u32, 4, 5, 6] {
        let f = vermem_sat::random::gen_forced_sat(&RandomSatConfig::three_sat(
            m,
            1.0,
            31 * u64::from(m),
        ));
        let (states, capped) = solve_row("SAT", m, &f);
        if capped {
            wall.get_or_insert(m);
        } else {
            points.push((f64::from(m), states as f64));
        }
    }
    // One over-constrained instance: the exponential wall.
    let f = gen_random_ksat(&RandomSatConfig::three_sat(3, 5.0, 93));
    let _ = solve_row("overcons", 3, &f);

    if points.len() >= 2 {
        println!(
            "mean states growth per +1 variable below the wall: ×{:.2}",
            mean_growth_ratio(&points)
        );
    }
    if let Some(m) = wall {
        println!(
            "search exceeded the {CAP}-state cap from m = {m}: the exponential wall \
             of an NP-complete cell"
        );
    }
}

// ---------------------------------------------------------------------------
// E-5.3: the headline complexity table with measured exponents.
// ---------------------------------------------------------------------------
fn e5_3_table() {
    header("E-5.3  Figure 5.3: complexity summary with measured growth exponents");
    println!(
        "{:<34} {:>14} {:>14} {:>10}",
        "case", "paper bound", "ours", "slope"
    );
    let sizes = [400usize, 800, 1600, 3200, 6400];

    // Row: 1 op/process, simple — paper O(n lg n), ours O(n).
    let slope = sweep(
        &sizes,
        |n| one_op_instance(n, false),
        |t| {
            assert!(one_op::solve_one_op(t, Addr::ZERO).is_coherent());
        },
    );
    row("1 op/process (simple R/W)", "O(n lg n)", "O(n)", slope);

    // Row: 1 op/process, RMW — paper O(n^2), ours O(n) (Eulerian path).
    let slope = sweep(
        &sizes,
        |n| one_op_instance(n, true),
        |t| {
            assert!(rmw::solve_rmw_one_op(t, Addr::ZERO).is_coherent());
        },
    );
    row("1 op/process (RMW)", "O(n^2)", "O(n) Euler", slope);

    // Row: 1 write/value (read-map), simple — paper O(n), ours O(n).
    let slope = sweep(&sizes, readmap_instance, |t| {
        assert!(readmap::solve_readmap(t, Addr::ZERO).is_coherent());
    });
    row("1 write/value (simple)", "O(n)", "O(n)", slope);

    // Row: RMW read-map — paper O(n lg n), ours O(n) forced chain.
    let slope = sweep(&sizes, rmw_chain_instance, |t| {
        assert!(rmw::solve_rmw_readmap(t, Addr::ZERO).is_coherent());
    });
    row("1 write/value (RMW chain)", "O(n lg n)", "O(n)", slope);

    // Row: constant processes — paper O(n^k); memoized search, k = 3.
    let slope = sweep(
        &[200, 400, 800, 1600],
        |n| {
            gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: n,
                addrs: 1,
                value_reuse: 0.5,
                seed: n as u64,
                ..Default::default()
            })
            .0
        },
        |t| {
            assert!(solve_backtracking(t, Addr::ZERO, &SearchConfig::default()).is_coherent());
        },
    );
    row("constant processes (k=3)", "O(n^k)", "memoized DFS", slope);

    // Rows: write order given — paper O(n^2) simple / O(n) all-RMW. The
    // instance (trace + order) is prebuilt so only the solve is timed.
    for (label, claim, all_rmw) in [
        ("write-order given (simple)", "O(n^2)", false),
        ("write-order given (RMW)", "O(n)", true),
    ] {
        let mut points = Vec::new();
        for &n in &sizes {
            let (trace, order) = write_order_instance(n, all_rmw);
            let secs = median_secs(5, || {
                assert!(solve_with_write_order(&trace, Addr::ZERO, &order).is_coherent());
            });
            points.push((n as f64, secs));
        }
        row(label, claim, claim, loglog_slope(&points));
    }

    println!(
        "\nNP-complete rows (3+ ops/process, 2+ writes/value; 2 RMWs/process,\n\
         3 writes/value) are demonstrated by the E-5.1/E-5.2 state blow-up;\n\
         the open cells of the paper (§7) have no algorithm to measure."
    );
}

fn row(case: &str, paper: &str, ours: &str, slope: f64) {
    println!("{case:<34} {paper:>14} {ours:>14} {slope:>10.2}");
}

fn sweep(
    sizes: &[usize],
    mut build: impl FnMut(usize) -> Trace,
    mut solve: impl FnMut(&Trace),
) -> f64 {
    let mut points = Vec::new();
    for &n in sizes {
        let trace = build(n);
        let secs = median_secs(5, || solve(&trace));
        points.push((n as f64, secs));
    }
    loglog_slope(&points)
}

/// n singleton processes: writes of ~n/2 distinct values (each twice, so the
/// read-map row does not apply), plus reads of those values / the initial
/// value. All-RMW variant builds an Eulerian cycle of RMWs.
fn one_op_instance(n: usize, all_rmw: bool) -> Trace {
    use vermem_trace::{Op, ProcessHistory};
    let mut histories = Vec::with_capacity(n);
    if all_rmw {
        // n single-RMW processes forming one long cycle 0→1→…→0 so an
        // Eulerian path exists from d_I = 0.
        for i in 0..n {
            let next = if i + 1 == n { 0 } else { i as u64 + 1 };
            histories.push(ProcessHistory::from_ops([Op::rw(i as u64, next)]));
        }
    } else {
        // Write/read pairs share a value; each value is written ~twice.
        let vals = (n / 4).max(1);
        for i in 0..n {
            let v = 1 + ((i / 2) % vals) as u64;
            histories.push(ProcessHistory::from_ops([if i % 2 == 0 {
                Op::w(v)
            } else {
                Op::r(v)
            }]));
        }
    }
    Trace::from_histories(histories)
}

/// A unique-write chain across 4 processes: W(1..n) round-robin with reads
/// of the previous value inserted after each write.
fn readmap_instance(n: usize) -> Trace {
    use vermem_trace::{Op, ProcessHistory};
    let procs = 4;
    let mut hists = vec![Vec::new(); procs];
    for i in 0..n / 2 {
        let v = i as u64 + 1;
        hists[i % procs].push(Op::w(v));
        hists[(i + 1) % procs].push(Op::r(v));
    }
    Trace::from_histories(hists.into_iter().map(ProcessHistory::from_ops))
}

/// A forced RMW chain 0→1→…→n split round-robin over 4 processes in
/// program order.
fn rmw_chain_instance(n: usize) -> Trace {
    use vermem_trace::{Op, ProcessHistory};
    let procs = 4;
    let mut hists = vec![Vec::new(); procs];
    for i in 0..n {
        hists[i % procs].push(Op::rw(i as u64, i as u64 + 1));
    }
    Trace::from_histories(hists.into_iter().map(ProcessHistory::from_ops))
}

/// A generated coherent trace plus its committed write order.
fn write_order_instance(n: usize, all_rmw: bool) -> (Trace, Vec<OpRef>) {
    let cfg = if all_rmw {
        GenConfig::all_rmw(4, n, n as u64)
    } else {
        GenConfig {
            procs: 4,
            total_ops: n,
            value_reuse: 0.5,
            seed: n as u64,
            ..Default::default()
        }
    };
    let (trace, witness) = gen_sc_trace(&cfg);
    let order: Vec<OpRef> = witness
        .refs()
        .iter()
        .copied()
        .filter(|&r| trace.op(r).unwrap().is_writing())
        .collect();
    (trace, order)
}

// ---------------------------------------------------------------------------
// E-6.1: the LRC-synchronized reduction (Figure 6.1).
// ---------------------------------------------------------------------------
fn e6_1_lrc() {
    header("E-6.1  Figure 6.1: LRC-synchronized SAT → VMC");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>8}",
        "m", "sync ops", "SAT", "LRC ok", "agree"
    );
    for m in [3u32, 4, 5] {
        let f = gen_random_ksat(&RandomSatConfig::three_sat(m, 4.0, 11 * u64::from(m)));
        let sat = solve_cdcl(&f).is_sat();
        let red = reduce_sat_to_lrc(&f);
        let verdict = vermem_consistency::lrc::verify_lrc_fully_synchronized(
            &red.sync_trace,
            vermem_reductions::lrc::LOCK,
        )
        .expect("fully synchronized by construction");
        let ops: usize = red
            .sync_trace
            .histories()
            .iter()
            .map(|h| h.ops().len())
            .sum();
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>8}",
            m,
            ops,
            sat,
            verdict.is_coherent(),
            sat == verdict.is_coherent()
        );
    }
}

// ---------------------------------------------------------------------------
// E-6.2 / E-6.3: SAT → VSCC; the coherence promise holds by construction.
// ---------------------------------------------------------------------------
fn e6_2_vscc() {
    header("E-6.2/E-6.3  Figure 6.2: SAT → VSCC (coherence promise, Figure 6.3)");
    println!(
        "{:>4} {:>6} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "m", "procs", "addrs", "coherent", "SAT", "SC", "agree"
    );
    for m in [3u32, 4, 5] {
        let f = gen_random_ksat(&RandomSatConfig::three_sat(m, 4.0, 13 * u64::from(m)));
        let sat = solve_cdcl(&f).is_sat();
        let red = reduce_sat_to_vscc(&f);
        let coherent = vermem_coherence::verify_execution(&red.trace).is_coherent();
        let sc = solve_sc_backtracking(&red.trace, &KernelConfig::default()).is_consistent();
        println!(
            "{:>4} {:>6} {:>6} {:>10} {:>10} {:>10} {:>8}",
            m,
            red.trace.num_procs(),
            red.trace.addresses().len(),
            coherent,
            sat,
            sc,
            sat == sc
        );
        assert!(
            coherent,
            "Figure 6.3: the promise must hold by construction"
        );
    }
}

// ---------------------------------------------------------------------------
// E-VSCC-HARD: coherence (polynomial per address) vs exact VSC time.
// ---------------------------------------------------------------------------
fn e_vscc_hardness() {
    header("E-VSCC  §6.3: verifying coherence is cheap; SC stays hard after it");
    println!(
        "{:>4} {:>8} {:>16} {:>16} {:>10}",
        "m", "ops", "coherence (µs)", "exact VSC (µs)", "merge?"
    );
    for m in [3u32, 4, 5] {
        let f = gen_random_ksat(&RandomSatConfig::three_sat(m, 4.5, 17 * u64::from(m)));
        let red = reduce_sat_to_vscc(&f);
        let t0 = Instant::now();
        let verdict = vermem_coherence::verify_execution(&red.trace);
        let coh_us = t0.elapsed().as_secs_f64() * 1e6;
        let vermem_coherence::ExecutionVerdict::Coherent(schedules) = verdict else {
            panic!("promise holds by construction");
        };
        let merged = matches!(
            merge_coherent_schedules(&red.trace, &schedules),
            MergeOutcome::Merged(_)
        );
        let t1 = Instant::now();
        let _ = solve_sc_backtracking(&red.trace, &KernelConfig::default());
        let vsc_us = t1.elapsed().as_secs_f64() * 1e6;
        println!(
            "{m:>4} {:>8} {coh_us:>16.1} {vsc_us:>16.1} {merged:>10}",
            red.trace.num_ops()
        );
    }
}

// ---------------------------------------------------------------------------
// E-OPEN: empirical reconnaissance of the §7 open cells.
// ---------------------------------------------------------------------------
fn e_open_problems() {
    use vermem_coherence::open_problems::{probe_open_cell, OpenCell};
    header("E-OPEN  §7 open problems: exact-search difficulty on random instances");
    println!(
        "{:<28} {:>6} {:>8} {:>12} {:>10} {:>10}",
        "cell", "procs", "samples", "max states", "coherent", "incoherent"
    );
    for procs in [4usize, 8, 12, 16] {
        let (ms, c, i) = probe_open_cell(OpenCell::TwoSimpleOpsPerProc, procs, 30, 11);
        println!(
            "{:<28} {procs:>6} {:>8} {ms:>12} {c:>10} {i:>10}",
            "2 simple ops/process", 30
        );
    }
    for procs in [4usize, 8, 16, 32] {
        let (ms, c, i) = probe_open_cell(OpenCell::RmwTwoWritesPerValue, procs, 30, 13);
        println!(
            "{:<28} {procs:>6} {:>8} {ms:>12} {c:>10} {i:>10}",
            "RMW, ≤2 writes/value", 30
        );
    }
    println!(
        "interpretation: rapid state growth in a cell is evidence (not proof)\n\
         toward hardness; sustained mildness hints at tractability (§7). In our\n\
         probes the 2-simple-ops cell blows up quickly under naive search while\n\
         the RMW ≤2-writes cell stays mild."
    );
}

// ---------------------------------------------------------------------------
// E-ONLINE: the streaming checker — throughput and detection latency.
// ---------------------------------------------------------------------------
fn e_online_checker() {
    header("E-ONLINE  streaming verification: throughput and detection latency");
    println!("{:>8} {:>14} {:>16}", "events", "verify (µs)", "events/µs");
    for &instrs in &[1_000usize, 4_000, 16_000, 64_000] {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: instrs / 4,
            addrs: 4,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed: instrs as u64,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed: 3,
                ..Default::default()
            },
        );
        let t = Instant::now();
        let mut v = vermem_coherence::OnlineVerifier::new();
        for &(proc, op) in &cap.event_log {
            v.observe(proc, op);
        }
        assert!(v.finish().is_empty(), "healthy run must be clean");
        let us = t.elapsed().as_secs_f64() * 1e6;
        println!(
            "{:>8} {:>14.1} {:>16.2}",
            cap.event_log.len(),
            us,
            cap.event_log.len() as f64 / us
        );
    }

    // Detection latency distribution on faulty counter runs.
    let mut latencies: Vec<u64> = Vec::new();
    for seed in 0..60 {
        let cap = Machine::run(
            &shared_counter(4, 10),
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::DropInvalidation { victim_cpu: 1 },
                    at_step: 10,
                }],
                ..Default::default()
            },
        );
        let mut v = vermem_coherence::OnlineVerifier::new();
        for &(proc, op) in &cap.event_log {
            v.observe(proc, op);
        }
        for viol in v.finish() {
            latencies.push(viol.detected_at - viol.issued_at);
        }
    }
    if latencies.is_empty() {
        println!("no faulty run produced a detection (all masked)");
    } else {
        latencies.sort_unstable();
        println!(
            "detection latency over {} violations: median {} events, p90 {} events, max {}",
            latencies.len(),
            latencies[latencies.len() / 2],
            latencies[latencies.len() * 9 / 10],
            latencies.last().unwrap()
        );
    }
}

// ---------------------------------------------------------------------------
// E-PAR: the parallel per-address engine (thread ladder) and the memo-key
// ablation, with optional machine-readable receipts (BENCH_vmc.json).
// ---------------------------------------------------------------------------
struct ParPoint {
    jobs: usize,
    secs: f64,
    ops_per_sec: f64,
    speedup: f64,
}

struct ParCase {
    name: String,
    ops: usize,
    addrs: usize,
    points: Vec<ParPoint>,
}

struct MemoRow {
    case: String,
    config: &'static str,
    secs: f64,
    states: u64,
    memo_hits: u64,
    memo_misses: u64,
    verdict: &'static str,
}

/// One row of the E-PRUNE inference-layer ablation: a blow-up instance
/// solved under one [`PruneConfig`], with every prune counter recorded.
struct PruneRow {
    case: String,
    config: &'static str,
    secs: f64,
    states: u64,
    memo_hits: u64,
    memo_misses: u64,
    window_prunes: u64,
    symmetry_prunes: u64,
    nogood_hits: u64,
    nogoods_learned: u64,
    verdict: &'static str,
}

/// One row of the E-KERNEL ablation: an operational consistency machine
/// (SC / TSO / PSO) on the shared exact-search kernel, timed under the
/// packed/interned memo keys and under the legacy alloc-per-probe
/// representation, with the key-allocation count recorded for each.
struct ModelKernelRow {
    model: &'static str,
    case: String,
    config: &'static str,
    secs: f64,
    states: u64,
    memo_misses: u64,
    key_allocs: u64,
    verdict: &'static str,
}

/// Enabled-vs-disabled cost of the observability layer on a state-capped
/// E-5.2 blow-up instance (every state records into the depth histogram
/// when enabled, so this is the worst case for the hot path).
struct ObsOverhead {
    case: &'static str,
    median_secs_disabled: f64,
    median_secs_enabled: f64,
    enabled_overhead_pct: f64,
}

/// One row of the E-TIER ablation: a trace family verified under one tier
/// pipeline (`closure,exact` vs `exact`), with per-tier address accounting
/// and verdict counts. Verdicts are bit-identical across pipelines by
/// construction (asserted); only the accounting and wall time may differ.
struct TierRow {
    family: &'static str,
    tier: &'static str,
    traces: usize,
    addresses: u64,
    frontline_decided: u64,
    escalated: u64,
    median_secs: f64,
    coherent: usize,
    incoherent: usize,
    unknown: usize,
}

fn e_par_scaling(write_json: bool) {
    header("E-PAR  parallel per-address verification: thread ladder + memo ablation");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let host = vermem_util::pool::available_jobs();
    println!("host parallelism: {host} (ladder rungs above it measure overhead, not speedup)");

    let verifier = VmcVerifier::new();
    let mut cases = Vec::new();
    let sizes: &[(usize, usize)] = if fast {
        &[(512, 16)]
    } else {
        &[(2048, 16), (8192, 64), (32768, 64)]
    };
    for &(ops, addrs) in sizes {
        let t = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: ops,
            addrs,
            value_reuse: 0.5,
            seed: (ops ^ addrs) as u64,
            ..Default::default()
        })
        .0;
        cases.push(par_case(
            format!("sc-4p-{ops}ops-{addrs}addrs"),
            &t,
            &verifier,
            reps,
        ));
    }
    let instrs = if fast { 512 } else { 4096 };
    let program = random_program(&WorkloadConfig {
        cpus: 4,
        instrs_per_cpu: instrs / 4,
        addrs: 16,
        write_fraction: 0.45,
        rmw_fraction: 0.1,
        seed: instrs as u64,
    });
    let cap = Machine::run(&program, MachineConfig::default());
    cases.push(par_case(
        format!("sim-4cpu-{instrs}instrs"),
        &cap.trace,
        &verifier,
        reps,
    ));

    println!(
        "{:>26} {:>8} {:>6} {:>5} {:>12} {:>12} {:>9}",
        "case", "ops", "addrs", "jobs", "median (ms)", "ops/s", "speedup"
    );
    for c in &cases {
        for p in &c.points {
            println!(
                "{:>26} {:>8} {:>6} {:>5} {:>12.3} {:>12.0} {:>8.2}x",
                c.name,
                c.ops,
                c.addrs,
                p.jobs,
                p.secs * 1e3,
                p.ops_per_sec,
                p.speedup
            );
        }
    }

    let memo = memo_ablation(reps, fast);
    println!("\nmemo-key ablation (single thread, E-5.1/E-5.2 reduction instances):");
    println!(
        "{:>14} {:>18} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "case", "config", "median (ms)", "states", "hits", "misses", "verdict"
    );
    for r in &memo {
        println!(
            "{:>14} {:>18} {:>12.3} {:>10} {:>10} {:>10} {:>10}",
            r.case,
            r.config,
            r.secs * 1e3,
            r.states,
            r.memo_hits,
            r.memo_misses,
            r.verdict
        );
    }

    let prune = prune_ablation(reps, fast);
    println!("\nE-PRUNE inference-layer ablation (single thread, same instances):");
    print_prune_table(&prune);

    let model_kernel = model_kernel_ablation(reps, fast);
    println!("\nE-KERNEL operational machines on the shared kernel (memo-key ablation):");
    print_model_kernel_table(&model_kernel);

    let tier = tier_ablation(reps, fast);
    println!("\nE-TIER tiered verification (closure frontline vs exact-only):");
    print_tier_table(&tier);

    let (axiom, ra_probe) = axiom_ablation(reps, fast);
    println!("\nE-AXIOM declared models (operational compiler vs SAT vs legacy):");
    print_axiom_table(&axiom, &ra_probe);

    let (estream, bounded) = estream_bench(reps, fast);
    println!("\nE-STREAM sharded bounded-memory streaming engine:");
    print_estream_table(&estream, &bounded);

    let hotpath = hotpath_ablation(reps);
    println!("\nE-HOTPATH dense-slab ingest structures vs the std-HashMap baseline:");
    print_hotpath_table(&hotpath);

    let obs = obs_overhead_probe(reps, fast);
    println!(
        "\nobservability overhead ({}): disabled {:.3} ms, enabled {:.3} ms ({:+.2}%)",
        obs.case,
        obs.median_secs_disabled * 1e3,
        obs.median_secs_enabled * 1e3,
        obs.enabled_overhead_pct
    );

    let live_obs = live_obs_probe(reps, fast);
    println!(
        "live telemetry overhead ({} streams, {} events): off {:.3} ms, \
         on {:.3} ms ({:+.2}%), {} forensic bundle(s)",
        live_obs.streams,
        live_obs.events,
        live_obs.median_secs_off * 1e3,
        live_obs.median_secs_on * 1e3,
        live_obs.enabled_overhead_pct,
        live_obs.forensic_bundles
    );

    if write_json {
        let path = "BENCH_vmc.json";
        std::fs::write(
            path,
            bench_json(
                host,
                &cases,
                &memo,
                &prune,
                &model_kernel,
                &tier,
                &axiom,
                &ra_probe,
                &estream,
                &hotpath,
                &bounded,
                &obs,
                &live_obs,
            ),
        )
        .expect("write BENCH_vmc.json");
        println!("\nwrote {path}");
    }
}

/// E-KERNEL: the VSC / TSO / PSO operational machines all run on the shared
/// exact-search kernel; this ablation times each against the legacy
/// SipHash'd `Vec<u64>` memo keys on contended generated workloads. Both
/// key representations memoize the same state set, so states (and verdicts)
/// must be identical per (model, case); the kernel path must never allocate
/// *more* key storage than the legacy alloc-per-probe path.
fn model_kernel_ablation(reps: usize, fast: bool) -> Vec<ModelKernelRow> {
    let ops = if fast { 16 } else { 48 };
    let instances: [(String, Trace); 2] = [
        (
            // Multi-address workload: memo keys exceed two words, so the
            // kernel tier interns them (one allocation per *fresh* state).
            format!("gen-3p-{ops}ops-2addrs"),
            gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: ops,
                addrs: 2,
                value_reuse: 0.6,
                seed: 4242,
                ..Default::default()
            })
            .0,
        ),
        (
            // Single-address workload: SC keys fit two words and the fast
            // memo tier allocates nothing at all.
            format!("gen-3p-{ops}ops-1addr"),
            gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: ops,
                addrs: 1,
                value_reuse: 0.7,
                seed: 99,
                ..Default::default()
            })
            .0,
        ),
    ];
    let configs: [(&'static str, KernelConfig); 2] = [
        ("kernel", KernelConfig::default()),
        (
            "legacy-keys",
            KernelConfig {
                legacy_keys: true,
                ..Default::default()
            },
        ),
    ];
    let models: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];
    let mut rows = Vec::new();
    for (case, trace) in &instances {
        for model in models {
            let mut per_config: Vec<(u64, u64)> = Vec::new(); // (states, key_allocs)
            for (name, cfg) in &configs {
                // One instrumented run for stats + the key-alloc counter
                // (delta of the global obs counter around the run).
                let was = vermem_util::obs::enabled();
                vermem_util::obs::set_enabled(true);
                let allocs_before = key_alloc_counter();
                let (verdict, stats) = verify_model_operational(trace, model, cfg);
                let key_allocs = key_alloc_counter() - allocs_before;
                vermem_util::obs::set_enabled(was);
                if !was {
                    vermem_util::obs::reset();
                }
                let verdict_str = if verdict.is_consistent() {
                    "consistent"
                } else if verdict.is_violating() {
                    "violating"
                } else {
                    "unknown"
                };
                per_config.push((stats.states, key_allocs));
                let secs = median_secs(reps, || {
                    let _ = verify_model_operational(trace, model, cfg);
                })
                .max(1e-12);
                rows.push(ModelKernelRow {
                    model: model.name(),
                    case: case.clone(),
                    config: name,
                    secs,
                    states: stats.states,
                    memo_misses: stats.memo_misses,
                    key_allocs,
                    verdict: verdict_str,
                });
            }
            let [(kernel_states, kernel_allocs), (legacy_states, legacy_allocs)] = per_config[..]
            else {
                unreachable!("two configs per (model, case)");
            };
            assert_eq!(
                kernel_states, legacy_states,
                "{case}/{model}: memo representations must visit identical state sets"
            );
            assert!(
                kernel_allocs <= legacy_allocs,
                "{case}/{model}: kernel keys allocated more than legacy ({kernel_allocs} > {legacy_allocs})"
            );
        }
    }
    rows
}

/// Read the cumulative `kernel.memo.key_allocs` counter from the global
/// observability registry (0 if never recorded).
fn key_alloc_counter() -> u64 {
    vermem_util::obs::snapshot()
        .counters
        .get("kernel.memo.key_allocs")
        .copied()
        .unwrap_or(0)
}

fn print_model_kernel_table(rows: &[ModelKernelRow]) {
    println!(
        "{:>22} {:>6} {:>12} {:>12} {:>9} {:>9} {:>10} {:>11}",
        "case", "model", "config", "median (ms)", "states", "misses", "key allocs", "verdict"
    );
    for r in rows {
        println!(
            "{:>22} {:>6} {:>12} {:>12.3} {:>9} {:>9} {:>10} {:>11}",
            r.case,
            r.model,
            r.config,
            r.secs * 1e3,
            r.states,
            r.memo_misses,
            r.key_allocs,
            r.verdict
        );
    }
}

/// Console-only entry for the E-KERNEL ablation (`experiments ekernel`);
/// the `--json` receipt run includes the same rows in BENCH_vmc.json.
fn e_kernel() {
    header("E-KERNEL  one exact-search kernel: SC/TSO/PSO memo-key ablation");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let rows = model_kernel_ablation(reps, fast);
    print_model_kernel_table(&rows);
}

/// The E-TIER trace families: realistic protocol captures (healthy and
/// fault-injected MESI runs), SC-generated traces, and the litmus corpus.
/// The healthy-sim family uses the same workload shape as the
/// `tier_differential` suite, so the committed receipt and the test gate
/// measure the same population.
fn tier_families(fast: bool) -> Vec<(&'static str, Vec<Trace>)> {
    let healthy_seeds = if fast { 4 } else { 16 };
    let fault_seeds = if fast { 2 } else { 5 };
    let gen_seeds = if fast { 2 } else { 6 };
    let healthy: Vec<Trace> = (0..healthy_seeds)
        .map(|seed| {
            Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu: 30,
                    addrs: 4,
                    write_fraction: 0.45,
                    rmw_fraction: 0.1,
                    seed,
                }),
                MachineConfig {
                    seed,
                    ..Default::default()
                },
            )
            .trace
        })
        .collect();
    let generated: Vec<Trace> = (0..gen_seeds)
        .map(|seed| {
            gen_sc_trace(&GenConfig {
                procs: 4,
                total_ops: 240,
                addrs: 6,
                value_reuse: 0.5,
                seed,
                ..Default::default()
            })
            .0
        })
        .collect();
    let litmus: Vec<Trace> = vermem_consistency::litmus::all_litmus_tests()
        .into_iter()
        .map(|t| t.trace)
        .collect();
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xDEAD_0000,
        },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
        FaultKind::DropInvalidation { victim_cpu: 2 },
    ];
    let faulty: Vec<Trace> = kinds
        .into_iter()
        .flat_map(|kind| {
            (0..fault_seeds).map(move |seed| {
                Machine::run(
                    &random_program(&WorkloadConfig {
                        cpus: 4,
                        instrs_per_cpu: 25,
                        addrs: 4,
                        write_fraction: 0.5,
                        rmw_fraction: 0.0,
                        seed: 700 + seed,
                    }),
                    MachineConfig {
                        seed,
                        faults: vec![FaultPlan { kind, at_step: 8 }],
                        ..Default::default()
                    },
                )
                .trace
            })
        })
        .collect();
    vec![
        ("healthy-sim", healthy),
        ("generated", generated),
        ("litmus", litmus),
        ("fault-injected", faulty),
    ]
}

/// E-TIER: the tiered-verification ablation. Each family is verified under
/// the default `closure,exact` pipeline and the `exact`-only ablation;
/// verdicts must match bit-for-bit (asserted — the differential suite
/// proves the same at every thread count), while the accounting shows how
/// many addresses the polynomial frontline decided without escalation.
fn tier_ablation(reps: usize, fast: bool) -> Vec<TierRow> {
    let families = tier_families(fast);
    let configs: [(&'static str, TierConfig); 2] = [
        ("closure,exact", TierConfig::tiered()),
        ("exact", TierConfig::exact_only()),
    ];
    let mut rows = Vec::new();
    for (family, traces) in &families {
        let mut per_config_verdicts: Vec<Vec<bool>> = Vec::new();
        for (spec, tier) in configs {
            let verifier = VmcVerifier {
                tier,
                ..VmcVerifier::new()
            };
            let mut tiers = TierStats::default();
            let mut coherent = 0;
            let mut incoherent = 0;
            let mut unknown = 0;
            let mut verdicts = Vec::with_capacity(traces.len());
            for t in traces {
                let report = verify_execution_par(t, &verifier, 1);
                tiers.absorb(&report.tiers);
                match &report.verdict {
                    vermem_coherence::ExecutionVerdict::Coherent(_) => coherent += 1,
                    vermem_coherence::ExecutionVerdict::Incoherent(_) => incoherent += 1,
                    vermem_coherence::ExecutionVerdict::Unknown { .. } => unknown += 1,
                }
                verdicts.push(report.is_coherent());
            }
            per_config_verdicts.push(verdicts);
            let median_secs = median_secs(reps, || {
                for t in traces {
                    let _ = verify_execution_par(t, &verifier, 1);
                }
            })
            .max(1e-12);
            rows.push(TierRow {
                family,
                tier: spec,
                traces: traces.len(),
                addresses: tiers.total(),
                frontline_decided: tiers.frontline_decided,
                escalated: tiers.escalated,
                median_secs,
                coherent,
                incoherent,
                unknown,
            });
        }
        assert!(
            per_config_verdicts.windows(2).all(|w| w[0] == w[1]),
            "{family}: tier pipelines must agree on every verdict"
        );
    }
    rows
}

fn print_tier_table(rows: &[TierRow]) {
    println!(
        "{:>15} {:>14} {:>7} {:>6} {:>10} {:>10} {:>12} {:>5} {:>5} {:>5}",
        "family",
        "tier",
        "traces",
        "addrs",
        "frontline",
        "escalated",
        "median (ms)",
        "coh",
        "inc",
        "unk"
    );
    for r in rows {
        println!(
            "{:>15} {:>14} {:>7} {:>6} {:>10} {:>10} {:>12.3} {:>5} {:>5} {:>5}",
            r.family,
            r.tier,
            r.traces,
            r.addresses,
            r.frontline_decided,
            r.escalated,
            r.median_secs * 1e3,
            r.coherent,
            r.incoherent,
            r.unknown
        );
    }
    // Headline: the frontline share of the realistic healthy family.
    if let Some(r) = rows
        .iter()
        .find(|r| r.family == "healthy-sim" && r.tier == "closure,exact")
    {
        let pct = 100.0 * r.frontline_decided as f64 / (r.addresses.max(1)) as f64;
        println!(
            "healthy-sim: frontline decided {}/{} addresses ({pct:.1}%) without escalation",
            r.frontline_decided, r.addresses
        );
    }
}

/// Console-only entry for the E-TIER ablation (`experiments etier`); the
/// `--json` receipt run includes the same rows in BENCH_vmc.json.
fn e_tier() {
    header("E-TIER  tiered verification: closure frontline vs exact-only");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let rows = tier_ablation(reps, fast);
    print_tier_table(&rows);
}

/// One row of the E-AXIOM ablation: one declared model (`ModelSpec`) run
/// through one of its engines over one trace family, with verdict-class
/// counts. Parity is asserted in-harness: every engine must match the SAT
/// oracle on consistency, and the compiled engine must be bit-identical
/// (verdict value *and* `SearchStats`) to the verbatim legacy machines for
/// the three machine-backed base models.
struct AxiomRow {
    model: &'static str,
    engine: &'static str,
    family: &'static str,
    traces: usize,
    median_secs: f64,
    consistent: usize,
    violating: usize,
    unknown: usize,
}

/// The RA polynomial-tier decision-rate probe: healthy generated traces
/// with no value reuse (every read names a unique writer), the population
/// behind the verify.sh >= 90% decision-rate gate. The tier never decides
/// against the exact-only pipeline (asserted per trace).
struct RaFrontlineProbe {
    traces: usize,
    frontline_decided: usize,
    decision_rate: f64,
}

/// The E-AXIOM trace families: the litmus corpus, healthy SC-generated
/// workloads, and fault-injected mutations of the latter (the violating
/// side of the differential).
fn axiom_families(fast: bool) -> Vec<(&'static str, Vec<Trace>)> {
    let litmus: Vec<Trace> = vermem_consistency::litmus::all_litmus_tests()
        .into_iter()
        .map(|t| t.trace)
        .collect();
    let gen_seeds = if fast { 2 } else { 5 };
    let generated: Vec<Trace> = (0..gen_seeds)
        .map(|seed| {
            gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: 12,
                addrs: 2,
                value_reuse: 0.5,
                seed: 70_000 + seed,
                ..Default::default()
            })
            .0
        })
        .collect();
    let kinds = [
        ViolationKind::CorruptReadValue,
        ViolationKind::StaleRead,
        ViolationKind::LostWrite,
        ViolationKind::ReorderAdjacent,
    ];
    let fault_seeds = if fast { 1 } else { 2 };
    let faulty: Vec<Trace> = kinds
        .into_iter()
        .flat_map(|kind| {
            (0..fault_seeds).filter_map(move |seed| {
                let (t, _) = gen_sc_trace(&GenConfig {
                    procs: 3,
                    total_ops: 12,
                    addrs: 2,
                    value_reuse: 0.6,
                    seed: 71_000 + seed,
                    ..Default::default()
                });
                inject_violation(&t, kind, 72_000 + seed).map(|(bad, _)| bad)
            })
        })
        .collect();
    vec![
        ("litmus", litmus),
        ("generated", generated),
        ("fault-injected", faulty),
    ]
}

/// E-AXIOM: every declared model through each engine that supports it,
/// timed per (family, model, engine), with the compiled/SAT/legacy parity
/// contract re-asserted on every trace the rows are built from.
fn axiom_ablation(reps: usize, fast: bool) -> (Vec<AxiomRow>, RaFrontlineProbe) {
    let families = axiom_families(fast);
    let mut rows = Vec::new();
    for (family, traces) in &families {
        for id in ModelId::ALL {
            // SAT-oracle consistency bits, computed once per (family, model).
            let oracle: Vec<bool> = traces
                .iter()
                .map(|t| {
                    verify_axiom(
                        t,
                        id,
                        &AxiomConfig {
                            engine: Engine::Sat,
                            ..AxiomConfig::default()
                        },
                    )
                    .verdict
                    .is_consistent()
                })
                .collect();
            for engine in [Engine::Compiled, Engine::Legacy, Engine::Sat] {
                if !engine.supports(id) {
                    continue;
                }
                let cfg = AxiomConfig {
                    engine,
                    ..AxiomConfig::default()
                };
                let (mut consistent, mut violating, mut unknown) = (0usize, 0usize, 0usize);
                for (t, &sat_ok) in traces.iter().zip(&oracle) {
                    let report = verify_axiom(t, id, &cfg);
                    if report.verdict.is_consistent() {
                        consistent += 1;
                    } else if report.verdict.is_violating() {
                        violating += 1;
                    } else {
                        unknown += 1;
                    }
                    assert_eq!(
                        report.verdict.is_consistent(),
                        sat_ok,
                        "E-AXIOM: {} via {} drifts from the SAT oracle ({family})",
                        id.name(),
                        engine.name()
                    );
                    // Bit-identity vs the verbatim legacy machines (the
                    // CoherenceOnly legacy dispatch is itself the SAT
                    // oracle, so only the machine-backed models compare).
                    if engine == Engine::Legacy
                        && matches!(id, ModelId::Sc | ModelId::Tso | ModelId::Pso)
                    {
                        let compiled = verify_axiom(t, id, &AxiomConfig::default());
                        assert_eq!(
                            compiled.verdict,
                            report.verdict,
                            "E-AXIOM: {} compiled/legacy verdict drift ({family})",
                            id.name()
                        );
                        assert_eq!(
                            compiled.stats,
                            report.stats,
                            "E-AXIOM: {} compiled/legacy stats drift ({family})",
                            id.name()
                        );
                    }
                }
                let secs = median_secs(reps, || {
                    for t in traces.iter() {
                        let _ = verify_axiom(t, id, &cfg);
                    }
                })
                .max(1e-12);
                rows.push(AxiomRow {
                    model: id.name(),
                    engine: engine.name(),
                    family,
                    traces: traces.len(),
                    median_secs: secs,
                    consistent,
                    violating,
                    unknown,
                });
            }
        }
    }
    let probe_traces = if fast { 8 } else { 24 };
    let mut decided = 0usize;
    for seed in 0..probe_traces as u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 16,
            addrs: 3,
            value_reuse: 0.0,
            seed: 73_000 + seed,
            ..Default::default()
        });
        let tiered = verify_axiom(&t, ModelId::Ra, &AxiomConfig::default());
        let exact = verify_axiom(
            &t,
            ModelId::Ra,
            &AxiomConfig {
                tier: TierConfig::exact_only(),
                ..AxiomConfig::default()
            },
        );
        assert_eq!(
            tiered.verdict.is_consistent(),
            exact.verdict.is_consistent(),
            "E-AXIOM: RA frontline masked the exact verdict (seed {seed})"
        );
        if matches!(tiered.tier, vermem_coherence::closure::Tier::Frontline) {
            decided += 1;
        }
    }
    let probe = RaFrontlineProbe {
        traces: probe_traces,
        frontline_decided: decided,
        decision_rate: decided as f64 / probe_traces as f64,
    };
    (rows, probe)
}

fn print_axiom_table(rows: &[AxiomRow], probe: &RaFrontlineProbe) {
    println!(
        "{:>15} {:>9} {:>9} {:>7} {:>12} {:>11} {:>10} {:>8}",
        "family", "model", "engine", "traces", "median (ms)", "consistent", "violating", "unknown"
    );
    for r in rows {
        println!(
            "{:>15} {:>9} {:>9} {:>7} {:>12.3} {:>11} {:>10} {:>8}",
            r.family,
            r.model,
            r.engine,
            r.traces,
            r.median_secs * 1e3,
            r.consistent,
            r.violating,
            r.unknown
        );
    }
    println!(
        "RA frontline decided {}/{} healthy unique-value traces ({:.0}%)",
        probe.frontline_decided,
        probe.traces,
        probe.decision_rate * 100.0
    );
}

/// Console-only entry for the E-AXIOM ablation (`experiments eaxiom`);
/// the `--json` receipt run includes the same rows in BENCH_vmc.json.
fn e_axiom() {
    header("E-AXIOM  declared models: operational compiler vs SAT vs legacy machines");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let (rows, probe) = axiom_ablation(reps, fast);
    print_axiom_table(&rows, &probe);
}

/// One row of the E-STREAM receipt: the sharded bounded-memory streaming
/// engine (`coherence::stream`) over N concurrent v3 event streams (half
/// healthy, half fault-injected so the p99 detection-latency receipt has a
/// data source), with batch verdict parity asserted per stream.
struct EstreamRow {
    streams: usize,
    window: usize,
    window_slack: usize,
    jobs: usize,
    events: u64,
    median_secs: f64,
    sustained_ops_per_sec: f64,
    detections: usize,
    /// `None` when the row saw no detections — serialized as JSON `null`
    /// (a 0 would read as "instant detection", which is a lie).
    p99_detect_latency_us: Option<u64>,
    peak_retained_windows: u64,
    incoherent: usize,
    verdict_parity: bool,
}

/// One row of the E-HOTPATH ablation: the E-STREAM workload ingested with
/// the dense-slab hot-path structures vs the pre-dense std-`HashMap`
/// baseline (`HotPathConfig::legacy_structures`). The two strategies are
/// bit-identical in every report field (asserted in-harness at jobs 1, 2
/// and 8); only the wall time differs.
struct HotpathRow {
    streams: usize,
    config: &'static str,
    jobs: usize,
    events: u64,
    median_secs: f64,
    sustained_ops_per_sec: f64,
    /// Legacy wall time over this configuration's wall time (1.0 on the
    /// legacy rows by definition).
    speedup_vs_legacy: f64,
    verdict_parity: bool,
}

/// The bounded-memory demonstration: a periodic synthetic event stream at
/// R rounds and 10R rounds retains an **identical** peak number of
/// windows — memory is O(window × addresses), independent of length.
struct BoundedMemoryProbe {
    window: usize,
    events: u64,
    peak_retained_windows: u64,
    events_10x: u64,
    peak_retained_windows_10x: u64,
    /// Peaks with the flight recorder enabled: the forensic ring is
    /// counted into `peak_retained_windows`, so these are higher than the
    /// plain peaks but must be equally length-invariant.
    recorder_peak_retained_windows: u64,
    recorder_peak_retained_windows_10x: u64,
}

/// N sim captures for one E-STREAM row: odd-indexed streams carry a
/// corrupt-fill protocol fault (detections + incoherent verdicts), even
/// ones are healthy.
fn estream_captures(streams: usize, instrs_per_cpu: usize) -> Vec<vermem_sim::CapturedExecution> {
    (0..streams)
        .map(|i| {
            let seed = 40 + i as u64;
            let faults = if i % 2 == 1 {
                vec![FaultPlan {
                    kind: FaultKind::CorruptFill {
                        cpu: 1,
                        xor: 0xDEAD_0000,
                    },
                    at_step: 6,
                }]
            } else {
                Vec::new()
            };
            Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu,
                    addrs: 4,
                    write_fraction: 0.45,
                    rmw_fraction: 0.0,
                    seed,
                }),
                MachineConfig {
                    seed,
                    faults,
                    ..Default::default()
                },
            )
        })
        .collect()
}

/// A perfectly periodic 2-process v3 event stream (unique-value write/read
/// ping-pong over `addrs` addresses): after warm-up the retained state is
/// periodic, so the peak is exactly length-invariant.
fn periodic_stream(rounds: usize, addrs: u32) -> Vec<u8> {
    use std::collections::BTreeMap;
    use vermem_trace::{Op, ProcId, Value};
    let mut initials = BTreeMap::new();
    let mut finals = BTreeMap::new();
    let mut events = Vec::with_capacity(rounds * addrs as usize * 2);
    let mut v = 1u64;
    for _ in 0..rounds {
        for a in 0..addrs {
            events.push((ProcId(0), Op::write(a, v)));
            events.push((ProcId(1), Op::read(a, v)));
            finals.insert(Addr(a), Value(v));
            v += 1;
        }
    }
    for a in 0..addrs {
        initials.insert(Addr(a), Value(0));
    }
    vermem_trace::binary::encode_event_stream(2, &initials, &finals, &events)
}

/// E-STREAM: sustained streaming throughput + p99 detection latency at
/// 1/4/16 concurrent streams, with per-stream batch verdict parity
/// (asserted) and the peak-retained-windows receipt that `verify.sh`
/// gates against `streams × window_slack`.
fn estream_bench(reps: usize, fast: bool) -> (Vec<EstreamRow>, BoundedMemoryProbe) {
    const WINDOW: usize = 256;
    const SLACK: usize = 16;
    let instrs = if fast { 30 } else { 120 };
    let config = || vermem_coherence::StreamConfig {
        window: Some(WINDOW),
        jobs: 1,
        temporal: true,
        verifier: VmcVerifier::new(),
        recorder: None,
        hot_path: Default::default(),
    };
    let mut rows = Vec::new();
    for streams in [1usize, 4, 16] {
        let caps = estream_captures(streams, instrs);
        let byte_streams: Vec<Vec<u8>> = caps
            .iter()
            .map(|c| vermem_sim::event_stream_bytes(c).expect("SC capture streams"))
            .collect();
        // One instrumented pass for the receipt fields + batch parity.
        let mut events = 0u64;
        let mut peak = 0u64;
        let mut detections = 0usize;
        let mut latencies: Vec<u64> = Vec::new();
        let mut incoherent = 0usize;
        let mut parity = true;
        for (cap, bytes) in caps.iter().zip(&byte_streams) {
            let report =
                vermem_coherence::verify_stream_bytes(bytes, config()).expect("stream decodes");
            let batch = verify_execution_par(&cap.trace, &VmcVerifier::new(), 1);
            parity &= report.verdict.matches_batch(&batch.verdict);
            events += report.events;
            peak += report.metrics.peak_retained_windows;
            detections += report.detections.len();
            latencies.extend_from_slice(&report.detect_latencies_us);
            if !report.is_coherent() {
                incoherent += 1;
            }
        }
        assert!(
            parity,
            "E-STREAM: streaming verdicts must be bit-identical to batch"
        );
        assert!(
            peak <= (streams * SLACK) as u64,
            "E-STREAM: peak retained windows {peak} exceeds {streams} × {SLACK}"
        );
        let secs = median_secs(reps, || {
            for bytes in &byte_streams {
                let report =
                    vermem_coherence::verify_stream_bytes(bytes, config()).expect("stream decodes");
                assert!(report.events > 0);
            }
        })
        .max(1e-12);
        rows.push(EstreamRow {
            streams,
            window: WINDOW,
            window_slack: SLACK,
            jobs: 1,
            events,
            median_secs: secs,
            sustained_ops_per_sec: events as f64 / secs,
            detections,
            p99_detect_latency_us: vermem_coherence::stream::percentile(&latencies, 99),
            peak_retained_windows: peak,
            incoherent,
            verdict_parity: parity,
        });
    }

    // Bounded memory: same periodic workload at R and 10R rounds must
    // retain an identical peak (asserted here, gated again by verify.sh).
    const PROBE_WINDOW: usize = 64;
    let rounds = if fast { 400 } else { 2_000 };
    let probe_run = |rounds: usize, recorder: Option<vermem_coherence::RecorderConfig>| {
        let bytes = periodic_stream(rounds, 3);
        let report = vermem_coherence::verify_stream_bytes(
            &bytes,
            vermem_coherence::StreamConfig {
                window: Some(PROBE_WINDOW),
                jobs: 1,
                temporal: true,
                verifier: VmcVerifier::new(),
                recorder,
                hot_path: Default::default(),
            },
        )
        .expect("stream decodes");
        assert!(report.is_coherent(), "periodic stream is coherent");
        (report.events, report.metrics.peak_retained_windows)
    };
    let (events, peak) = probe_run(rounds, None);
    let (events_10x, peak_10x) = probe_run(rounds * 10, None);
    assert_eq!(
        peak, peak_10x,
        "peak retained windows must be independent of stream length"
    );
    // Same gate with the flight recorder on: its per-shard ring is charged
    // to peak_retained_windows and must stay length-invariant too.
    let recorder = || Some(vermem_coherence::RecorderConfig::default());
    let (_, rec_peak) = probe_run(rounds, recorder());
    let (_, rec_peak_10x) = probe_run(rounds * 10, recorder());
    assert_eq!(
        rec_peak, rec_peak_10x,
        "recorder-on peak retained windows must be independent of stream length"
    );
    (
        rows,
        BoundedMemoryProbe {
            window: PROBE_WINDOW,
            events,
            peak_retained_windows: peak,
            events_10x,
            peak_retained_windows_10x: peak_10x,
            recorder_peak_retained_windows: rec_peak,
            recorder_peak_retained_windows_10x: rec_peak_10x,
        },
    )
}

fn print_estream_table(rows: &[EstreamRow], probe: &BoundedMemoryProbe) {
    println!(
        "{:>8} {:>7} {:>8} {:>12} {:>12} {:>7} {:>9} {:>9} {:>4} {:>7}",
        "streams",
        "window",
        "events",
        "median (ms)",
        "ops/s",
        "det",
        "p99 (us)",
        "peak win",
        "inc",
        "parity"
    );
    for r in rows {
        println!(
            "{:>8} {:>7} {:>8} {:>12.3} {:>12.0} {:>7} {:>9} {:>9} {:>4} {:>7}",
            r.streams,
            r.window,
            r.events,
            r.median_secs * 1e3,
            r.sustained_ops_per_sec,
            r.detections,
            r.p99_detect_latency_us
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            r.peak_retained_windows,
            r.incoherent,
            r.verdict_parity
        );
    }
    println!(
        "bounded memory (window {}): {} events peak {} windows; 10x length \
         ({} events) peak {} windows; recorder-on peaks {} / {}",
        probe.window,
        probe.events,
        probe.peak_retained_windows,
        probe.events_10x,
        probe.peak_retained_windows_10x,
        probe.recorder_peak_retained_windows,
        probe.recorder_peak_retained_windows_10x
    );
}

/// Console-only entry for the E-STREAM family (`experiments estream`); the
/// `--json` receipt run includes the same rows in BENCH_vmc.json.
fn e_stream() {
    header("E-STREAM  sharded bounded-memory streaming verification");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let (rows, probe) = estream_bench(reps, fast);
    print_estream_table(&rows, &probe);
}

/// E-HOTPATH: the dense-slab storage ablation. The E-STREAM workload at
/// 1/4/16 concurrent streams is ingested twice on the same binary — once
/// with the dense index-addressed tables (the default), once with the
/// pre-dense std-`HashMap` structures re-homed behind
/// `HotPathConfig::legacy_structures` — after a parity pass asserting the
/// two strategies produce bit-identical reports at jobs 1, 2 and 8.
fn hotpath_ablation(reps: usize) -> Vec<HotpathRow> {
    const WINDOW: usize = 256;
    // Longer streams than E-STREAM: this ablation measures the *ingest*
    // structures, so the workload must be ingest-dominated (the finish
    // phase solves identical instances on both paths). The size is NOT
    // reduced under VERMEM_BENCH_FAST — verify.sh gates the fast fresh
    // rows' throughput against the committed full-mode receipt, so the
    // two must measure the same workload (only `reps` differs).
    let instrs = 1_500;
    let config = |legacy: bool, jobs: usize| vermem_coherence::StreamConfig {
        window: Some(WINDOW),
        jobs,
        temporal: true,
        verifier: VmcVerifier::new(),
        recorder: None,
        hot_path: vermem_coherence::HotPathConfig {
            legacy_structures: legacy,
        },
    };
    let mut rows = Vec::new();
    for streams in [1usize, 4, 16] {
        let caps = estream_captures(streams, instrs);
        let byte_streams: Vec<Vec<u8>> = caps
            .iter()
            .map(|c| vermem_sim::event_stream_bytes(c).expect("SC capture streams"))
            .collect();
        // Parity pass: the storage strategy must be unobservable in every
        // report field, at every jobs rung.
        let mut events = 0u64;
        for bytes in &byte_streams {
            for jobs in [1usize, 2, 8] {
                let d = vermem_coherence::verify_stream_bytes(bytes, config(false, jobs))
                    .expect("dense decodes");
                let l = vermem_coherence::verify_stream_bytes(bytes, config(true, jobs))
                    .expect("legacy decodes");
                assert_eq!(
                    d.verdict, l.verdict,
                    "E-HOTPATH: verdict drift at {jobs} jobs"
                );
                assert_eq!(d.stats, l.stats, "E-HOTPATH: stats drift at {jobs} jobs");
                assert_eq!(d.tiers, l.tiers, "E-HOTPATH: tier drift at {jobs} jobs");
                assert_eq!(
                    d.detections, l.detections,
                    "E-HOTPATH: detection drift at {jobs} jobs"
                );
                assert_eq!(
                    d.metrics, l.metrics,
                    "E-HOTPATH: metric drift at {jobs} jobs"
                );
                if jobs == 1 {
                    events += d.events;
                }
            }
        }
        let time = |legacy: bool| {
            median_secs(reps, || {
                for bytes in &byte_streams {
                    let report = vermem_coherence::verify_stream_bytes(bytes, config(legacy, 1))
                        .expect("stream decodes");
                    assert!(report.events > 0);
                }
            })
            .max(1e-12)
        };
        let dense_secs = time(false);
        let legacy_secs = time(true);
        rows.push(HotpathRow {
            streams,
            config: "dense",
            jobs: 1,
            events,
            median_secs: dense_secs,
            sustained_ops_per_sec: events as f64 / dense_secs,
            speedup_vs_legacy: legacy_secs / dense_secs,
            verdict_parity: true,
        });
        rows.push(HotpathRow {
            streams,
            config: "legacy",
            jobs: 1,
            events,
            median_secs: legacy_secs,
            sustained_ops_per_sec: events as f64 / legacy_secs,
            speedup_vs_legacy: 1.0,
            verdict_parity: true,
        });
    }
    rows
}

fn print_hotpath_table(rows: &[HotpathRow]) {
    println!(
        "{:>8} {:>8} {:>5} {:>8} {:>12} {:>12} {:>9} {:>7}",
        "streams", "config", "jobs", "events", "median (ms)", "ops/s", "speedup", "parity"
    );
    for r in rows {
        println!(
            "{:>8} {:>8} {:>5} {:>8} {:>12.3} {:>12.0} {:>8.2}x {:>7}",
            r.streams,
            r.config,
            r.jobs,
            r.events,
            r.median_secs * 1e3,
            r.sustained_ops_per_sec,
            r.speedup_vs_legacy,
            r.verdict_parity
        );
    }
}

/// Console-only entry for the E-HOTPATH ablation (`experiments ehotpath`);
/// the `--json` receipt run includes the same rows in BENCH_vmc.json.
fn e_hotpath() {
    header("E-HOTPATH  dense-slab ingest structures vs the std-HashMap baseline");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let rows = hotpath_ablation(reps);
    print_hotpath_table(&rows);
}

/// Measure the exact search on the E-5.2 over-constrained instance with the
/// observability layer off and on. The off run is the production default;
/// the delta is what `--metrics`/`--trace-out` cost. Restores the previous
/// enabled state (the probe may run inside a `--metrics` session).
fn obs_overhead_probe(reps: usize, fast: bool) -> ObsOverhead {
    let cap: u64 = if fast { 50_000 } else { 500_000 };
    // Pruning off so the probe keeps exercising the full capped state set
    // (the worst case for per-state obs cost), as in the PR-3 receipt.
    let cfg = SearchConfig {
        max_states: Some(cap),
        prune: PruneConfig::none(),
        ..Default::default()
    };
    let overcons = gen_random_ksat(&RandomSatConfig::three_sat(3, 5.0, 93));
    let trace = reduce_3sat_rmw(&overcons).trace;
    let was = vermem_util::obs::enabled();

    vermem_util::obs::set_enabled(false);
    let off = median_secs(reps, || {
        let _ = solve_backtracking(&trace, Addr::ZERO, &cfg);
    })
    .max(1e-12);

    vermem_util::obs::set_enabled(true);
    let on = median_secs(reps, || {
        let _ = solve_backtracking(&trace, Addr::ZERO, &cfg);
    })
    .max(1e-12);

    vermem_util::obs::set_enabled(was);
    if !was {
        // Not inside a `--metrics` session: drop what the probe recorded.
        vermem_util::obs::reset();
    }
    ObsOverhead {
        case: "e5.2-overcons-capped",
        median_secs_disabled: off,
        median_secs_enabled: on,
        enabled_overhead_pct: (on / off - 1.0) * 100.0,
    }
}

/// Live-telemetry cost on the streaming engine: the E-STREAM workload run
/// plain vs with the whole observability stack enabled — per-shard flight
/// recorder plus a rolling [`TimeSeries`] fed per stream — with verdict,
/// stats and tier identity asserted between the two runs.
struct LiveObsProbe {
    streams: usize,
    events: u64,
    forensic_bundles: usize,
    median_secs_off: f64,
    median_secs_on: f64,
    enabled_overhead_pct: f64,
}

use vermem_util::obs::timeseries::TimeSeries;

fn live_obs_probe(reps: usize, fast: bool) -> LiveObsProbe {
    let streams = 4usize;
    let instrs = if fast { 30 } else { 120 };
    let caps = estream_captures(streams, instrs);
    let byte_streams: Vec<Vec<u8>> = caps
        .iter()
        .map(|c| vermem_sim::event_stream_bytes(c).expect("SC capture streams"))
        .collect();
    let config = |recorder| vermem_coherence::StreamConfig {
        window: Some(256),
        jobs: 1,
        temporal: true,
        verifier: VmcVerifier::new(),
        recorder,
        hot_path: Default::default(),
    };
    let recorder = || Some(vermem_coherence::RecorderConfig::default());

    // Identity pass: telemetry on vs off must agree on everything the
    // verifier reports (the obs-on/off contract, gated by verify.sh).
    let mut events = 0u64;
    let mut bundles = 0usize;
    for bytes in &byte_streams {
        let off = vermem_coherence::verify_stream_bytes(bytes, config(None)).expect("decodes");
        let on = vermem_coherence::verify_stream_bytes(bytes, config(recorder())).expect("decodes");
        assert_eq!(off.verdict, on.verdict, "recorder changed the verdict");
        assert_eq!(off.stats, on.stats, "recorder changed the search stats");
        assert_eq!(off.tiers, on.tiers, "recorder changed the tier accounting");
        events += off.events;
        bundles += on.forensics.len();
    }

    let off = median_secs(reps, || {
        for bytes in &byte_streams {
            let report =
                vermem_coherence::verify_stream_bytes(bytes, config(None)).expect("decodes");
            assert!(report.events > 0);
        }
    })
    .max(1e-12);
    let series = TimeSeries::new(8, 0);
    let mut clock = 0u64;
    let on = median_secs(reps, || {
        for bytes in &byte_streams {
            let report =
                vermem_coherence::verify_stream_bytes(bytes, config(recorder())).expect("decodes");
            series.record(report.events);
        }
        clock += 1_000_000;
        series.rotate(clock);
    })
    .max(1e-12);
    LiveObsProbe {
        streams,
        events,
        forensic_bundles: bundles,
        median_secs_off: off,
        median_secs_on: on,
        enabled_overhead_pct: (on / off - 1.0) * 100.0,
    }
}

/// Run the jobs ladder on one trace, asserting the verdict is identical to
/// the sequential engine at every rung (the determinism contract).
fn par_case(name: String, trace: &Trace, verifier: &VmcVerifier, reps: usize) -> ParCase {
    let expected = vermem_coherence::verify_execution_with(trace, verifier);
    let mut points = Vec::new();
    let mut t1: Option<f64> = None;
    for jobs in [1usize, 2, 4, 8] {
        let secs = median_secs(reps, || {
            let report = verify_execution_par(trace, verifier, jobs);
            assert_eq!(
                report.verdict, expected,
                "determinism violated at {jobs} jobs"
            );
        })
        .max(1e-12);
        let base = *t1.get_or_insert(secs);
        points.push(ParPoint {
            jobs,
            secs,
            ops_per_sec: trace.num_ops() as f64 / secs,
            speedup: base / secs,
        });
    }
    ParCase {
        name,
        ops: trace.num_ops(),
        addrs: trace.addresses().len(),
        points,
    }
}

/// Time the exact search with the overhauled memo keys (packed/interned
/// FxHash) against the legacy SipHash'd `Vec<u32>` representation on the
/// E-5.1/E-5.2 blow-up instances (forced-SAT at the wall and the
/// over-constrained family), state-capped so the run is bounded: every
/// visited state is a memo probe, so the table cost dominates. Both
/// representations memoize the same state set, so the state counts (and
/// verdicts) must agree; only the wall time differs.
fn memo_ablation(reps: usize, fast: bool) -> Vec<MemoRow> {
    let cap: u64 = if fast { 50_000 } else { 500_000 };
    // Pruning off: this ablation isolates the memo *representation* cost on
    // the full capped state set (the PR-4 inference layer would collapse
    // the workload — its effect is measured separately by `prune_ablation`).
    let configs: [(&'static str, SearchConfig); 2] = [
        (
            "fx-overhaul",
            SearchConfig {
                max_states: Some(cap),
                prune: PruneConfig::none(),
                ..Default::default()
            },
        ),
        (
            "legacy-memo-keys",
            SearchConfig {
                max_states: Some(cap),
                legacy_memo_keys: true,
                prune: PruneConfig::none(),
                ..Default::default()
            },
        ),
    ];
    // E-5.1/E-5.2 cases at and past the exponential wall (see e5.1/e5.2):
    // the forced-SAT family at m = 6 and the over-constrained family both
    // exceed any practical cap, so the search does exactly `cap` states.
    let wall = vermem_sat::random::gen_forced_sat(&RandomSatConfig::three_sat(6, 1.0, 31 * 6));
    let overcons = gen_random_ksat(&RandomSatConfig::three_sat(3, 5.0, 93));
    let instances: [(String, Trace); 3] = [
        (
            "e5.1-m6-wall".to_string(),
            reduce_3sat_restricted(&wall).trace,
        ),
        (
            "e5.1-overcons".to_string(),
            reduce_3sat_restricted(&overcons).trace,
        ),
        (
            "e5.2-overcons".to_string(),
            reduce_3sat_rmw(&overcons).trace,
        ),
    ];
    let mut rows = Vec::new();
    for (case, trace) in &instances {
        let mut state_counts = Vec::new();
        for (name, cfg) in &configs {
            let (verdict, stats) = solve_backtracking_with_stats(trace, Addr::ZERO, cfg);
            let verdict_str = match verdict {
                vermem_coherence::Verdict::Coherent(_) => "coherent",
                vermem_coherence::Verdict::Incoherent(_) => "incoherent",
                vermem_coherence::Verdict::Unknown => "capped",
            };
            state_counts.push(stats.states);
            let secs = median_secs(reps, || {
                let _ = solve_backtracking(trace, Addr::ZERO, cfg);
            })
            .max(1e-12);
            rows.push(MemoRow {
                case: case.clone(),
                config: name,
                secs,
                states: stats.states,
                memo_hits: stats.memo_hits,
                memo_misses: stats.memo_misses,
                verdict: verdict_str,
            });
        }
        assert!(
            state_counts.windows(2).all(|w| w[0] == w[1]),
            "memo representations must visit identical state sets ({case})"
        );
    }
    rows
}

/// E-PRUNE: the PR-4 inference-layer ablation on the E-5.1/E-5.2 blow-up
/// instances. Each technique runs alone and all together, against the
/// unpruned baseline, under the same state cap as `memo_ablation`. All
/// configurations must agree on the verdict (they provably do — the
/// assertion enforces it), and every pruned configuration must explore at
/// most the baseline's states (monotonicity).
fn prune_ablation(reps: usize, fast: bool) -> Vec<PruneRow> {
    let cap: u64 = if fast { 50_000 } else { 500_000 };
    let configs: [(&'static str, PruneConfig); 5] = [
        ("none", PruneConfig::none()),
        ("windows", PruneConfig::parse("windows").unwrap()),
        ("symmetry", PruneConfig::parse("symmetry").unwrap()),
        ("nogoods", PruneConfig::parse("nogoods").unwrap()),
        ("all", PruneConfig::all()),
    ];
    let wall = vermem_sat::random::gen_forced_sat(&RandomSatConfig::three_sat(6, 1.0, 31 * 6));
    let overcons = gen_random_ksat(&RandomSatConfig::three_sat(3, 5.0, 93));
    let instances: [(String, Trace); 3] = [
        (
            "e5.1-m6-wall".to_string(),
            reduce_3sat_restricted(&wall).trace,
        ),
        (
            "e5.1-overcons".to_string(),
            reduce_3sat_restricted(&overcons).trace,
        ),
        (
            "e5.2-overcons".to_string(),
            reduce_3sat_rmw(&overcons).trace,
        ),
    ];
    let mut rows = Vec::new();
    for (case, trace) in &instances {
        let mut baseline_states: Option<u64> = None;
        let mut decided_verdicts: Vec<bool> = Vec::new();
        for (name, prune) in &configs {
            let cfg = SearchConfig {
                max_states: Some(cap),
                prune: *prune,
                ..Default::default()
            };
            let (verdict, stats) = solve_backtracking_with_stats(trace, Addr::ZERO, &cfg);
            let verdict_str = match &verdict {
                vermem_coherence::Verdict::Coherent(_) => "coherent",
                vermem_coherence::Verdict::Incoherent(_) => "incoherent",
                vermem_coherence::Verdict::Unknown => "capped",
            };
            // Verdict parity among configurations that decided (a capped
            // run decides nothing, so it constrains nothing).
            if let vermem_coherence::Verdict::Coherent(_)
            | vermem_coherence::Verdict::Incoherent(_) = &verdict
            {
                decided_verdicts.push(verdict.is_coherent());
            }
            // States monotonicity vs the unpruned baseline.
            match (*name, baseline_states) {
                ("none", _) => baseline_states = Some(stats.states),
                (_, Some(base)) => assert!(
                    stats.states <= base,
                    "{case}/{name}: pruned search explored more states ({} > {base})",
                    stats.states
                ),
                _ => unreachable!("baseline row runs first"),
            }
            let secs = median_secs(reps, || {
                let _ = solve_backtracking(trace, Addr::ZERO, &cfg);
            })
            .max(1e-12);
            rows.push(PruneRow {
                case: case.clone(),
                config: name,
                secs,
                states: stats.states,
                memo_hits: stats.memo_hits,
                memo_misses: stats.memo_misses,
                window_prunes: stats.window_prunes,
                symmetry_prunes: stats.symmetry_prunes,
                nogood_hits: stats.nogood_hits,
                nogoods_learned: stats.nogoods_learned,
                verdict: verdict_str,
            });
        }
        assert!(
            decided_verdicts.windows(2).all(|w| w[0] == w[1]),
            "prune configurations disagree on {case}"
        );
    }
    rows
}

fn print_prune_table(rows: &[PruneRow]) {
    println!(
        "{:>14} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "case",
        "config",
        "median (ms)",
        "states",
        "win.pr",
        "sym.pr",
        "ng.hits",
        "ng.learn",
        "hits",
        "verdict"
    );
    for r in rows {
        println!(
            "{:>14} {:>9} {:>12.3} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            r.case,
            r.config,
            r.secs * 1e3,
            r.states,
            r.window_prunes,
            r.symmetry_prunes,
            r.nogood_hits,
            r.nogoods_learned,
            r.memo_hits,
            r.verdict
        );
    }
    // Headline: states-explored reduction of `all` vs `none` per case.
    for case in ["e5.1-m6-wall", "e5.1-overcons", "e5.2-overcons"] {
        let states_of = |cfg: &str| {
            rows.iter()
                .find(|r| r.case == case && r.config == cfg)
                .map(|r| r.states)
        };
        if let (Some(none), Some(all)) = (states_of("none"), states_of("all")) {
            let ratio = none as f64 / (all.max(1)) as f64;
            println!("{case}: states {none} -> {all} ({ratio:.1}x fewer with --prune=all)");
        }
    }
}

/// Console-only entry for the E-PRUNE ablation (`experiments eprune`); the
/// `--json` receipt run includes the same rows in BENCH_vmc.json.
fn e_prune() {
    header("E-PRUNE  inference-layer ablation: windows / symmetry / nogoods");
    let fast = std::env::var("VERMEM_BENCH_FAST").is_ok();
    let reps = if fast { 3 } else { 7 };
    let rows = prune_ablation(reps, fast);
    print_prune_table(&rows);
}

/// Hand-rolled JSON (the workspace is dependency-free): all strings are
/// internally generated identifiers, so no escaping is needed.
#[allow(clippy::too_many_arguments)]
fn bench_json(
    host: usize,
    cases: &[ParCase],
    memo: &[MemoRow],
    prune: &[PruneRow],
    model_kernel: &[ModelKernelRow],
    tier: &[TierRow],
    axiom: &[AxiomRow],
    ra_probe: &RaFrontlineProbe,
    estream: &[EstreamRow],
    hotpath: &[HotpathRow],
    bounded: &BoundedMemoryProbe,
    obs: &ObsOverhead,
    live_obs: &LiveObsProbe,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"vermem-bench-vmc/v9\",\n");
    s.push_str(&format!("  \"host_parallelism\": {host},\n"));
    s.push_str("  \"par_verify\": [\n");
    for (i, c) in cases.iter().enumerate() {
        // Bench honesty: every case records the host parallelism it ran
        // under, and each ladder point above it is flagged so downstream
        // readers chart it as scheduling overhead, not scaling.
        s.push_str(&format!(
            "    {{\"case\": \"{}\", \"ops\": {}, \"addresses\": {}, \
             \"host_parallelism\": {host}, \"points\": [",
            c.name, c.ops, c.addrs
        ));
        for (j, p) in c.points.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"jobs\": {}, \"median_secs\": {:.9}, \"ops_per_sec\": {:.1}, \
                 \"speedup_vs_1\": {:.4}, \"overhead_only\": {}}}",
                p.jobs,
                p.secs,
                p.ops_per_sec,
                p.speedup,
                p.jobs > host
            ));
        }
        s.push_str("]}");
        s.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"memo_ablation\": [\n");
    for (i, r) in memo.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"case\": \"{}\", \"config\": \"{}\", \"median_secs\": {:.9}, \
             \"states\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \"verdict\": \"{}\"}}",
            r.case, r.config, r.secs, r.states, r.memo_hits, r.memo_misses, r.verdict
        ));
        s.push_str(if i + 1 < memo.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"prune_ablation\": [\n");
    for (i, r) in prune.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"case\": \"{}\", \"config\": \"{}\", \"median_secs\": {:.9}, \
             \"states\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
             \"window_prunes\": {}, \"symmetry_prunes\": {}, \"nogood_hits\": {}, \
             \"nogoods_learned\": {}, \"verdict\": \"{}\"}}",
            r.case,
            r.config,
            r.secs,
            r.states,
            r.memo_hits,
            r.memo_misses,
            r.window_prunes,
            r.symmetry_prunes,
            r.nogood_hits,
            r.nogoods_learned,
            r.verdict
        ));
        s.push_str(if i + 1 < prune.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"model_kernel\": [\n");
    for (i, r) in model_kernel.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"case\": \"{}\", \"config\": \"{}\", \
             \"median_secs\": {:.9}, \"states\": {}, \"memo_misses\": {}, \
             \"key_allocs\": {}, \"verdict\": \"{}\"}}",
            r.model, r.case, r.config, r.secs, r.states, r.memo_misses, r.key_allocs, r.verdict
        ));
        s.push_str(if i + 1 < model_kernel.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"tier_ablation\": [\n");
    for (i, r) in tier.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"tier\": \"{}\", \"traces\": {}, \
             \"addresses\": {}, \"frontline_decided\": {}, \"escalated\": {}, \
             \"median_secs\": {:.9}, \"coherent\": {}, \"incoherent\": {}, \
             \"unknown\": {}}}",
            r.family,
            r.tier,
            r.traces,
            r.addresses,
            r.frontline_decided,
            r.escalated,
            r.median_secs,
            r.coherent,
            r.incoherent,
            r.unknown
        ));
        s.push_str(if i + 1 < tier.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"eaxiom\": [\n");
    for (i, r) in axiom.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"family\": \"{}\", \
             \"traces\": {}, \"median_secs\": {:.9}, \"consistent\": {}, \
             \"violating\": {}, \"unknown\": {}}}",
            r.model,
            r.engine,
            r.family,
            r.traces,
            r.median_secs,
            r.consistent,
            r.violating,
            r.unknown
        ));
        s.push_str(if i + 1 < axiom.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"eaxiom_ra_frontline\": {{\"traces\": {}, \"frontline_decided\": {}, \
         \"decision_rate\": {:.4}}},\n",
        ra_probe.traces, ra_probe.frontline_decided, ra_probe.decision_rate
    ));
    s.push_str("  \"estream\": [\n");
    for (i, r) in estream.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"streams\": {}, \"window\": {}, \"window_slack\": {}, \
             \"jobs\": {}, \"events\": {}, \"median_secs\": {:.9}, \
             \"sustained_ops_per_sec\": {:.1}, \"detections\": {}, \
             \"p99_detect_latency_us\": {}, \"peak_retained_windows\": {}, \
             \"incoherent\": {}, \"verdict_parity\": {}}}",
            r.streams,
            r.window,
            r.window_slack,
            r.jobs,
            r.events,
            r.median_secs,
            r.sustained_ops_per_sec,
            r.detections,
            r.p99_detect_latency_us
                .map_or_else(|| "null".to_string(), |v| v.to_string()),
            r.peak_retained_windows,
            r.incoherent,
            r.verdict_parity
        ));
        s.push_str(if i + 1 < estream.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"e_hotpath\": [\n");
    for (i, r) in hotpath.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"streams\": {}, \"config\": \"{}\", \"jobs\": {}, \
             \"events\": {}, \"median_secs\": {:.9}, \
             \"sustained_ops_per_sec\": {:.1}, \"speedup_vs_legacy\": {:.4}, \
             \"verdict_parity\": {}}}",
            r.streams,
            r.config,
            r.jobs,
            r.events,
            r.median_secs,
            r.sustained_ops_per_sec,
            r.speedup_vs_legacy,
            r.verdict_parity
        ));
        s.push_str(if i + 1 < hotpath.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"estream_bounded_memory\": {{\"window\": {}, \"events\": {}, \
         \"peak_retained_windows\": {}, \"events_10x\": {}, \
         \"peak_retained_windows_10x\": {}, \
         \"recorder_peak_retained_windows\": {}, \
         \"recorder_peak_retained_windows_10x\": {}}},\n",
        bounded.window,
        bounded.events,
        bounded.peak_retained_windows,
        bounded.events_10x,
        bounded.peak_retained_windows_10x,
        bounded.recorder_peak_retained_windows,
        bounded.recorder_peak_retained_windows_10x
    ));
    s.push_str(&format!(
        "  \"obs_overhead\": {{\"case\": \"{}\", \"median_secs_disabled\": {:.9}, \
         \"median_secs_enabled\": {:.9}, \"enabled_overhead_pct\": {:.4}}},\n",
        obs.case, obs.median_secs_disabled, obs.median_secs_enabled, obs.enabled_overhead_pct
    ));
    s.push_str(&format!(
        "  \"e_live_obs\": {{\"streams\": {}, \"events\": {}, \
         \"forensic_bundles\": {}, \"median_secs_off\": {:.9}, \
         \"median_secs_on\": {:.9}, \"enabled_overhead_pct\": {:.4}, \
         \"verdict_identical\": true}}\n",
        live_obs.streams,
        live_obs.events,
        live_obs.forensic_bundles,
        live_obs.median_secs_off,
        live_obs.median_secs_on,
        live_obs.enabled_overhead_pct
    ));
    s.push_str("}\n");
    s
}

// ---------------------------------------------------------------------------
// E-SIM: dynamic verification of the MESI machine with fault injection.
// ---------------------------------------------------------------------------
fn e_sim_detection() {
    header("E-SIM  dynamic verification: detection rates by fault class");
    const RUNS: u64 = 40;
    let mut false_pos = 0;
    for seed in 0..RUNS {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 40,
            addrs: 3,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        if !vermem_coherence::verify_execution(&cap.trace).is_coherent() {
            false_pos += 1;
        }
    }
    println!("healthy-run false positives: {false_pos}/{RUNS}");
    println!(
        "{:<36} {:>10} {:>12}",
        "fault class", "workload", "detected"
    );
    let cases: [(&str, FaultKind, bool); 4] = [
        (
            "corrupt fill",
            FaultKind::CorruptFill {
                cpu: 1,
                xor: 0xBEEF_0000,
            },
            false,
        ),
        (
            "dropped invalidation",
            FaultKind::DropInvalidation { victim_cpu: 2 },
            true,
        ),
        ("lost write", FaultKind::LostWrite { cpu: 0 }, false),
        ("stale fill", FaultKind::StaleFill { cpu: 1 }, true),
    ];
    // The per-class sweeps are independent; fan them out across threads.
    let results: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .iter()
            .map(|&(_, kind, counter)| {
                scope.spawn(move || {
                    let mut hits = 0;
                    for seed in 0..RUNS {
                        let program = if counter {
                            shared_counter(4, 10)
                        } else {
                            random_program(&WorkloadConfig {
                                cpus: 4,
                                instrs_per_cpu: 40,
                                addrs: 3,
                                write_fraction: 0.45,
                                rmw_fraction: 0.0,
                                seed,
                            })
                        };
                        let cap = Machine::run(
                            &program,
                            MachineConfig {
                                seed,
                                faults: vec![FaultPlan { kind, at_step: 12 }],
                                ..Default::default()
                            },
                        );
                        if !vermem_coherence::verify_execution(&cap.trace).is_coherent() {
                            hits += 1;
                        }
                    }
                    (hits, RUNS as usize)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for ((name, _, counter), (hits, total)) in cases.iter().zip(results) {
        let wl = if *counter { "counter" } else { "random" };
        println!("{name:<36} {wl:>10} {hits:>9}/{total}");
    }

    // §5.2 in the pipeline: write-order verification of big healthy runs.
    println!("\nwrite-order (§5.2) verification of healthy runs:");
    println!("{:>8} {:>16}", "ops", "verify (µs)");
    for &instrs in &[200usize, 400, 800, 1600] {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: instrs / 4,
            addrs: 2,
            write_fraction: 0.5,
            rmw_fraction: 0.0,
            seed: instrs as u64,
        });
        let cap = Machine::run(
            &program,
            MachineConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let t = Instant::now();
        for (addr, order) in &cap.write_order {
            assert!(solve_with_write_order(&cap.trace, *addr, order).is_coherent());
        }
        println!(
            "{:>8} {:>16.1}",
            cap.trace.num_ops(),
            t.elapsed().as_secs_f64() * 1e6
        );
    }
}
