//! Shared helpers for the benchmark and experiment harness: timing
//! utilities, log–log growth-exponent fitting, and instance builders used
//! by both the `vermem_util::bench`-harness benches and the `experiments`
//! binary that regenerates every table/figure of the paper's evaluation
//! (Figures 4.1–6.3, the Figure 5.3 complexity table; see EXPERIMENTS.md).

use std::time::Instant;

/// Median wall time of `f` over `reps` runs, in seconds.
pub fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical growth
/// exponent of a runtime series. A slope near `k` supports an O(n^k) bound.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| (x.ln(), y.max(1e-12).ln()))
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Successive-ratio geometric growth factor: for an exponential-in-m series
/// the ratio `y[i+1]/y[i]` stays ≥ some constant > 1 as `m` grows linearly.
pub fn mean_growth_ratio(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let ratios: Vec<f64> = points
        .windows(2)
        .map(|w| (w[1].1.max(1e-12)) / (w[0].1.max(1e-12)))
        .collect();
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_series_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64 * 100.0, (i as f64 * 100.0).powi(2)))
            .collect();
        let s = loglog_slope(&pts);
        assert!((s - 2.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_of_linear_series_is_one() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn growth_ratio_of_doubling_series() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64 + 1.0, 2f64.powi(i))).collect();
        assert!((mean_growth_ratio(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn median_is_deterministic_for_constant_work() {
        let t = median_secs(3, || {
            std::hint::black_box(0);
        });
        assert!(t >= 0.0);
    }
}
