//! Thin binary wrapper over [`vermem_cli::run`].

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Only slurp stdin when some argument asks for it.
    let stdin = if args.iter().any(|a| a == "-") {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: cannot read stdin");
            std::process::exit(2);
        }
        buf
    } else {
        String::new()
    };
    match vermem_cli::run(&args, &stdin) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
