//! Zero-dependency introspection server behind `vermem serve --obs-addr`.
//!
//! A minimal HTTP/1.1 responder on [`std::net::TcpListener`] — no hyper,
//! no tokio — serving three read-only endpoints over a shared
//! [`ServeState`]:
//!
//! * `/metrics` — Prometheus text format: the global obs registry
//!   ([`obs::snapshot`] via [`expo::prometheus_text`]) plus live serve
//!   families — per-stream event/detection counters and the sliding
//!   chunk-ingest histogram from [`TimeSeries::windowed`].
//! * `/healthz` — JSON liveness: per-stream progress, verdict-so-far and
//!   an aggregate `status` (`"ok"` until a stream verifies incoherent).
//! * `/snapshot.json` — the latest unified run report
//!   ([`vermem_util::obs::report::RunReport`]) rendered so far.
//!
//! The accept loop runs on one background thread, polls a [`CancelToken`]
//! between non-blocking accepts, and is joined by [`ObsServer::shutdown`]
//! — the server never outlives the command that started it. Scrapes are
//! read-only over shared atomics and mutexes: they cannot perturb
//! verdicts, `SearchStats` or tier accounting (the obs-on/off identity
//! contract in DESIGN.md §6b).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use vermem_util::json::JsonWriter;
use vermem_util::obs;
use vermem_util::obs::expo;
use vermem_util::obs::timeseries::TimeSeries;
use vermem_util::pool::CancelToken;

/// Liveness and verdict-so-far for one stream being served.
#[derive(Debug, Default, Clone)]
pub struct StreamHealth {
    /// Input name (`sim:SEED` or the file path).
    pub name: String,
    /// Events verified so far (final count once `done`).
    pub events: u64,
    /// Online detections recorded for this stream.
    pub detections: u64,
    /// Rendered verdict once the stream finished, `None` while running.
    pub verdict: Option<String>,
    /// `Some(false)` once the stream verified incoherent or unknown.
    pub coherent: Option<bool>,
    /// True once the stream's engine has finished.
    pub done: bool,
}

/// Shared state between `cmd_serve` (writer) and the scrape endpoints
/// (readers). All methods take `&self`; share it behind an [`Arc`].
#[derive(Debug)]
pub struct ServeState {
    /// Per-stream health rows, index-aligned with the serve inputs.
    pub streams: Mutex<Vec<StreamHealth>>,
    /// Sliding per-chunk ingest latency (µs), rotated once per stream.
    pub series: TimeSeries,
    /// Latest rendered run-report JSON (`{}` until the first stream ends).
    pub snapshot_json: Mutex<String>,
}

impl ServeState {
    /// Fresh state for `names` streams; `now_us` opens the first
    /// time-series epoch ([`obs::now_us`]).
    pub fn new(names: &[String], now_us: u64) -> Arc<ServeState> {
        let rows = names
            .iter()
            .map(|n| StreamHealth {
                name: n.clone(),
                ..StreamHealth::default()
            })
            .collect();
        Arc::new(ServeState {
            streams: Mutex::new(rows),
            series: TimeSeries::new(8, now_us),
            snapshot_json: Mutex::new("{}".to_string()),
        })
    }

    fn lock_streams(&self) -> std::sync::MutexGuard<'_, Vec<StreamHealth>> {
        match self.streams.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record a finished stream's results (index-aligned with `new`).
    pub fn complete_stream(
        &self,
        i: usize,
        events: u64,
        detections: u64,
        verdict: &str,
        coherent: bool,
    ) {
        let mut rows = self.lock_streams();
        if let Some(row) = rows.get_mut(i) {
            row.events = events;
            row.detections = detections;
            row.verdict = Some(verdict.to_string());
            row.coherent = Some(coherent);
            row.done = true;
        }
    }

    /// Replace the `/snapshot.json` document.
    pub fn set_snapshot(&self, json: String) {
        match self.snapshot_json.lock() {
            Ok(mut g) => *g = json,
            Err(poisoned) => *poisoned.into_inner() = json,
        }
    }

    /// Render `/metrics`: registry families first, then the live serve
    /// families. Deterministic given equal state.
    pub fn metrics_text(&self, now_us: u64) -> String {
        use std::fmt::Write as _;
        let mut out = expo::prometheus_text(&obs::snapshot());
        let (mut events, mut detections, mut done, mut incoherent) = (0u64, 0u64, 0u64, 0u64);
        let total = {
            let rows = self.lock_streams();
            for r in rows.iter() {
                events += r.events;
                detections += r.detections;
                done += u64::from(r.done);
                incoherent += u64::from(r.coherent == Some(false));
            }
            rows.len() as u64
        };
        for (family, value) in [
            ("vermem_serve_streams", total),
            ("vermem_serve_streams_done", done),
            ("vermem_serve_streams_incoherent", incoherent),
            ("vermem_serve_events_total", events),
            ("vermem_serve_detections_total", detections),
        ] {
            let _ = writeln!(out, "# TYPE {family} counter");
            let _ = writeln!(out, "{family} {value}");
        }
        let _ = writeln!(out, "# TYPE vermem_serve_chunks_per_sec gauge");
        let _ = writeln!(
            out,
            "vermem_serve_chunks_per_sec {}",
            self.series.rate_per_sec(now_us)
        );
        expo::prometheus_histogram(
            &mut out,
            "vermem_serve_chunk_ingest_us",
            &self.series.windowed(),
        );
        out
    }

    /// Render `/healthz`: aggregate status plus one row per stream.
    pub fn healthz_json(&self) -> String {
        let rows = self.lock_streams();
        let status = if rows.iter().any(|r| r.coherent == Some(false)) {
            "incoherent"
        } else {
            "ok"
        };
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("status").string(status);
        w.key("streams").begin_array();
        for r in rows.iter() {
            w.begin_object();
            w.key("name").string(&r.name);
            w.key("events").u64(r.events);
            w.key("detections").u64(r.detections);
            match &r.verdict {
                Some(v) => w.key("verdict").string(v),
                None => w.key("verdict").null(),
            };
            w.key("done").bool(r.done);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Handle to the background introspection server. Dropping it (on any
/// path, including errors) cancels the accept loop and joins the thread.
#[derive(Debug)]
pub struct ObsServer {
    local: SocketAddr,
    cancel: Arc<CancelToken>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept loop on a background thread.
    pub fn start(addr: &str, state: Arc<ServeState>) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let cancel = Arc::new(CancelToken::new());
        let token = Arc::clone(&cancel);
        let handle = std::thread::spawn(move || accept_loop(&listener, &state, &token));
        Ok(ObsServer {
            local,
            cancel,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(self) {
        drop(self);
    }

    fn stop(&mut self) {
        self.cancel.cancel();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, state: &ServeState, cancel: &CancelToken) {
    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
}

/// Read one request (first line is enough — every endpoint is a GET with
/// no body) and write the response. Errors are dropped: a half-closed
/// scraper must not take the server down.
fn handle_connection(mut stream: TcpStream, state: &ServeState) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let first_line = req
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let path = std::str::from_utf8(first_line)
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            state.metrics_text(obs::now_us()),
        ),
        "/healthz" => ("200 OK", "application/json", state.healthz_json()),
        "/snapshot.json" => {
            let doc = match state.snapshot_json.lock() {
                Ok(g) => g.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            };
            ("200 OK", "application/json", doc)
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot HTTP GET over a raw [`TcpStream`] — the same fetch the
    /// verify.sh smoke uses (no curl in the loop).
    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: vermem\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    }

    fn sample_state() -> Arc<ServeState> {
        let state = ServeState::new(&["sim:1".to_string(), "sim:2".to_string()], 0);
        state.series.record(120);
        state.series.record(80);
        state.complete_stream(0, 512, 0, "coherent", true);
        state
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let state = sample_state();
        let server = ObsServer::start("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let body = fetch(server.local_addr(), "/metrics");
        server.shutdown();
        assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
        assert!(
            body.contains("# TYPE vermem_serve_streams counter"),
            "{body}"
        );
        assert!(body.contains("vermem_serve_streams 2"), "{body}");
        assert!(body.contains("vermem_serve_streams_done 1"), "{body}");
        assert!(body.contains("vermem_serve_events_total 512"), "{body}");
        assert!(
            body.contains("vermem_serve_chunk_ingest_us_count 2"),
            "{body}"
        );
        assert!(
            body.contains("vermem_serve_chunk_ingest_us_bucket{le=\"+Inf\"} 2"),
            "{body}"
        );
    }

    #[test]
    fn healthz_reports_per_stream_liveness_and_verdict() {
        let state = sample_state();
        let server = ObsServer::start("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let body = fetch(server.local_addr(), "/healthz");
        let doc = body.split("\r\n\r\n").nth(1).expect("body");
        let json = vermem_util::json::parse_json(doc).expect("valid JSON");
        assert_eq!(json.get("status").and_then(|s| s.as_str()), Some("ok"));
        let streams = json.get("streams").and_then(|s| s.as_arr()).expect("rows");
        assert_eq!(streams.len(), 2);
        assert_eq!(
            streams[0].get("verdict").and_then(|v| v.as_str()),
            Some("coherent")
        );
        assert!(streams[1].get("verdict").unwrap().as_str().is_none());
        // An incoherent stream flips the aggregate status.
        state.complete_stream(1, 64, 3, "VIOLATION at address 2", false);
        let body = fetch(server.local_addr(), "/healthz");
        server.shutdown();
        assert!(body.contains("\"status\":\"incoherent\""), "{body}");
    }

    #[test]
    fn snapshot_endpoint_serves_latest_report_and_unknown_paths_404() {
        let state = sample_state();
        state.set_snapshot("{\"schema\":\"test\"}".to_string());
        let server = ObsServer::start("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let snap = fetch(server.local_addr(), "/snapshot.json");
        let missing = fetch(server.local_addr(), "/nope");
        server.shutdown();
        assert!(snap.contains("{\"schema\":\"test\"}"), "{snap}");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }

    #[test]
    fn shutdown_joins_and_port_is_released() {
        let state = ServeState::new(&[], 0);
        let server = ObsServer::start("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a rebind on the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }
}
