//! # vermem-cli
//!
//! Command-line front end for the `vermem` verifier suite. All command
//! logic lives here (returning the rendered output as a `String`) so it is
//! unit-testable; `main.rs` is a thin wrapper.
//!
//! ```text
//! vermem verify <trace> [--addr N] [--strategy auto|backtracking|sat] [--budget N] [--jobs N]
//!               [--tier closure,exact|exact] [--prune all|none|windows,symmetry,nogoods]
//!               [--metrics[=json|text]] [--trace-out FILE]
//! vermem sc <trace> [--model sc|tso|pso|coherence|ra|arm-dob]
//!           [--engine compiled|legacy|sat] [--tier closure,exact|exact] [--budget N]
//!           [--metrics[=json|text]] [--trace-out FILE]
//! vermem classify <trace>
//! vermem explain <trace> [--addr N]
//! vermem gen --procs N --ops N [--addrs N] [--seed N] [--rmw PCT] [--reuse PCT]
//! vermem inject <trace> --kind corrupt-read|stale-read|lost-write|reorder [--seed N]
//! vermem reduce <dimacs> [--figure 4.1|5.1|5.2]
//! vermem sim --cpus N --instrs N [--addrs N] [--tso|--directory] [--seed N] [--verify] [--online] [--jobs N]
//!            [--tier SPEC] [--prune SPEC] [--metrics[=json|text]] [--trace-out FILE]
//! vermem serve [<stream.bin>...] [--streams N] [--window W|unbounded] [--jobs N] [--chunk BYTES]
//!              [--cpus N] [--instrs N] [--addrs N] [--seed N] [--fault]
//!              [--obs-addr HOST:PORT] [--forensics DIR]
//!              [--metrics[=json|text]] [--trace-out FILE]
//! vermem sat <dimacs>
//! vermem litmus
//! ```
//!
//! Traces use the text format of [`vermem_trace::fmt`]; `-` reads stdin.
//!
//! ## Observability
//!
//! `--metrics` appends the unified [`RunReport`] (text by default,
//! `--metrics=json` for the schema-tagged JSON form) to the command
//! output; `--trace-out FILE` writes a Chrome trace-event file loadable
//! in `chrome://tracing` / Perfetto. `vermem serve` additionally takes
//! `--obs-addr HOST:PORT` (live `/metrics`, `/healthz` and
//! `/snapshot.json` endpoints on a built-in zero-dependency server) and
//! `--forensics DIR` (flight-recorder bundles as JSONL, one file per
//! stream with detections). None of these flags change verdicts or
//! `SearchStats` — observability is a write-only side channel.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod obs_server;

use std::fmt::Write as _;
use vermem_coherence::{PruneConfig, SearchConfig, Strategy, TierConfig, Verdict, VmcVerifier};
use vermem_consistency::{verify_axiom, AxiomConfig, Engine, ModelId};
use vermem_trace::{Addr, Trace};
use vermem_util::obs;
use vermem_util::obs::report::{RunReport, RunReportSection};

/// A command failure rendered to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
vermem — verify memory coherence and consistency of execution traces

USAGE:
  vermem verify <trace> [--addr N] [--strategy auto|backtracking|sat] [--budget N]
                [--jobs N] [--tier SPEC] [--prune SPEC]
                [--metrics[=json|text]] [--trace-out FILE]
  vermem sc <trace> [--model sc|tso|pso|coherence|ra|arm-dob]
            [--engine compiled|legacy|sat] [--tier closure,exact|exact]
            [--budget N] [--metrics[=json|text]] [--trace-out FILE]
  vermem classify <trace>
  vermem explain <trace> [--addr N]
  vermem gen --procs N --ops N [--addrs N] [--seed N] [--rmw PCT] [--reuse PCT]
  vermem inject <trace> --kind corrupt-read|stale-read|lost-write|reorder [--seed N]
  vermem reduce <dimacs> [--figure 4.1|5.1|5.2]
  vermem sim --cpus N --instrs N [--addrs N] [--tso|--directory] [--seed N]
             [--verify] [--online] [--jobs N] [--tier SPEC] [--prune SPEC]
             [--metrics[=json|text]] [--trace-out FILE]
  vermem serve [<stream.bin>...] [--streams N] [--window W|unbounded] [--jobs N]
               [--chunk BYTES] [--cpus N] [--instrs N] [--addrs N] [--seed N]
               [--fault] [--obs-addr HOST:PORT] [--forensics DIR]
               [--metrics[=json|text]] [--trace-out FILE]
  vermem sat <dimacs>
  vermem litmus

Traces use the vermem text format; pass '-' to read stdin.
--jobs N verifies addresses on N worker threads (0 or default: all cores);
the verdict is deterministic and identical at every thread count.
--tier SPEC selects the verification pipeline: 'closure,exact' (default)
runs the polynomial constraint-closure frontline and escalates only
ambiguous addresses to the exact search; 'exact' is the ablation that
sends every general instance straight to the exact tier. Verdicts are
bit-identical under both.
--prune SPEC selects the verdict-preserving search prunings: 'all'
(default), 'none', or a comma-separated subset of
windows,symmetry,nogoods (e.g. --prune=windows,nogoods).
sc decides consistency under a declared memory model, compiled from its
axioms: the serialization-based four plus 'ra' (Release–Acquire) and
'arm-dob' (ARM-like dependency ordering). --engine picks the decider —
'compiled' (default) lowers the model onto the exact-search kernel,
'legacy' runs the verbatim pre-refactor machines (base models only),
'sat' runs the spec-to-CNF compiler. For models with a polynomial fast
tier (ra), --tier exact disables it; the default pipeline tries the
fast tier first and escalates only when it cannot decide.
--metrics appends the unified run report (text, or JSON with
--metrics=json); --trace-out FILE writes a Chrome trace-event JSON file
loadable in chrome://tracing or https://ui.perfetto.dev.
serve runs the sharded bounded-memory streaming engine over binary trace
streams (v2 proc-major files or v3 temporal event logs), feeding each in
--chunk-byte slices; with no file arguments it synthesizes --streams
simulator event streams (--fault injects a protocol fault into each).
--window W bounds retained state per address (ops/slots); 'unbounded' or
0 disables retirement. Streaming verdicts are bit-identical to batch
verification.
--obs-addr HOST:PORT starts a built-in introspection server for the run:
GET /metrics (Prometheus text), /healthz (per-stream liveness JSON) and
/snapshot.json (the unified run report). Use port 0 for an ephemeral
port (printed on a '# obs:' line).
--forensics DIR enables the per-shard flight recorder: every online
detection emits a forensic bundle (retained window ops, minimal
incoherent core, issue/detect timestamps, tier provenance) written as
JSONL, one file per stream with detections. Neither flag changes
verdicts, stats or tier accounting.
";

/// Minimal flag parser: positional arguments plus `--flag [value]` pairs
/// (also `--flag=value`).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Flags that take no value. `metrics` is special: bare `--metrics`
/// means text, `--metrics=json` selects the JSON rendering.
const BOOL_FLAGS: &[&str] = &[
    "tso",
    "verify",
    "online",
    "directory",
    "fault",
    "help",
    "metrics",
];

impl Args {
    fn parse(args: &[String]) -> Result<Args, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((n, v)) = name.split_once('=') {
                    flags.push((n.to_string(), Some(v.to_string())));
                } else if BOOL_FLAGS.contains(&name) {
                    flags.push((name.to_string(), None));
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| err(format!("--{name} requires a value")))?;
                    flags.push((name.to_string(), Some(value.clone())));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("invalid --{name} value '{v}'"))),
        }
    }

    /// Reject flags this command does not understand (`--help` is always
    /// allowed). Every command calls this so a typo like `--sed 7` is an
    /// error instead of a silently ignored no-op.
    fn expect_flags(&self, allowed: &[&str]) -> Result<(), CliError> {
        for (name, _) in &self.flags {
            if name != "help" && !allowed.contains(&name.as_str()) {
                return Err(err(format!(
                    "unknown flag --{name} for this command (try --help)"
                )));
            }
        }
        Ok(())
    }
}

/// The `--metrics` / `--trace-out` observability surface of a command.
///
/// The obs state is process-global, so concurrent sessions would bleed
/// into each other; a process-wide mutex serializes them. Dropping the
/// session always disables recording, even on the error path.
struct ObsSession {
    json: bool,
    emit_metrics: bool,
    trace_out: Option<String>,
    _guard: std::sync::MutexGuard<'static, ()>,
}

static OBS_SESSION_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

impl ObsSession {
    /// Parse the obs flags; `Ok(None)` when neither is present (and
    /// recording stays off — a no-flags run emits nothing).
    fn start(args: &Args) -> Result<Option<ObsSession>, CliError> {
        let emit_metrics = args.has("metrics");
        let json = match args.flag("metrics") {
            None | Some("text") => false,
            Some("json") => true,
            Some(other) => {
                return Err(err(format!(
                    "invalid --metrics value '{other}' (expected json or text)"
                )))
            }
        };
        let trace_out = args.flag("trace-out").map(str::to_string);
        if !emit_metrics && trace_out.is_none() {
            return Ok(None);
        }
        let guard = match OBS_SESSION_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        obs::reset();
        obs::set_enabled(true);
        Ok(Some(ObsSession {
            json,
            emit_metrics,
            trace_out,
            _guard: guard,
        }))
    }

    /// Stop recording, fold the registry and the top-5 slowest addresses
    /// into `report`, append the requested rendering to `out`, and write
    /// the Chrome trace file if requested.
    fn finish(self, out: &mut String, mut report: RunReport) -> Result<(), CliError> {
        obs::set_enabled(false);
        let events = obs::take_events();
        let snap = obs::snapshot();
        let top = vermem_util::obs::report::top_k_slowest(&events, "verify.addr", 5);
        if !top.is_empty() {
            let mut s = RunReportSection::new("slowest_addrs");
            for e in &top {
                let addr = e
                    .args
                    .iter()
                    .find(|(k, _)| k == "addr")
                    .map_or(0, |(_, v)| *v);
                s.field(&format!("addr_{addr}_us"), e.dur_us);
            }
            report.push_section(s);
        }
        report.extend_from_metrics(&snap);
        if self.emit_metrics {
            if self.json {
                out.push_str(&report.to_json());
                out.push('\n');
            } else {
                for line in report.to_text().lines() {
                    let _ = writeln!(out, "# {line}");
                }
            }
        }
        if let Some(path) = &self.trace_out {
            let doc = vermem_util::obs::chrome::render_chrome_trace(&events);
            std::fs::write(path, doc).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        Ok(())
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        // Error paths must not leave global recording on.
        obs::set_enabled(false);
    }
}

/// Run a command line (without the program name); returns rendered output.
pub fn run(args: &[String], stdin: &str) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    let rest = Args::parse(&args[1..])?;
    if rest.has("help") {
        return Ok(USAGE.to_string());
    }
    match command.as_str() {
        "verify" => cmd_verify(&rest, stdin),
        "sc" => cmd_sc(&rest, stdin),
        "classify" => cmd_classify(&rest, stdin),
        "explain" => cmd_explain(&rest, stdin),
        "gen" => cmd_gen(&rest),
        "inject" => cmd_inject(&rest, stdin),
        "reduce" => cmd_reduce(&rest, stdin),
        "sim" => cmd_sim(&rest),
        "serve" => cmd_serve(&rest),
        "sat" => cmd_sat(&rest, stdin),
        "litmus" => {
            rest.expect_flags(&[])?;
            cmd_litmus()
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

/// Load the trace argument through one decode path: stdin (`-`) is
/// always text, files are sniffed with [`vermem_trace::binary::looks_binary`]
/// — the binary decoder itself accepts both the v2 batch and v3 temporal
/// event-stream framings, so `verify`/`explain`/`classify` all take the
/// same files `serve` does.
fn load_trace(args: &Args, stdin: &str) -> Result<Trace, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| err("expected a trace file argument (or '-')"))?;
    if path == "-" {
        return vermem_trace::fmt::parse_trace(stdin).map_err(|e| err(format!("parse error: {e}")));
    }
    let bytes = std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    if vermem_trace::binary::looks_binary(&bytes) {
        return vermem_trace::binary::decode_trace(&bytes)
            .map_err(|e| err(format!("{path}: binary decode error: {e}")));
    }
    let text = String::from_utf8(bytes).map_err(|e| err(format!("{path}: not UTF-8: {e}")))?;
    vermem_trace::fmt::parse_trace(&text).map_err(|e| err(format!("parse error: {e}")))
}

fn parse_strategy(args: &Args) -> Result<Strategy, CliError> {
    Ok(match args.flag("strategy").unwrap_or("auto") {
        "auto" => Strategy::Auto,
        "backtracking" => Strategy::Backtracking,
        "sat" => Strategy::Sat,
        other => return Err(err(format!("unknown strategy '{other}'"))),
    })
}

/// Parse `--prune` into a [`PruneConfig`] (default: all prunings on).
fn parse_prune(args: &Args) -> Result<PruneConfig, CliError> {
    PruneConfig::parse(args.flag("prune").unwrap_or("all")).map_err(err)
}

/// Parse `--tier` into a [`TierConfig`] (default: closure frontline +
/// exact escalation).
fn parse_tier(args: &Args) -> Result<TierConfig, CliError> {
    TierConfig::parse(args.flag("tier").unwrap_or("closure,exact")).map_err(err)
}

fn cmd_verify(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&[
        "addr",
        "strategy",
        "budget",
        "jobs",
        "tier",
        "prune",
        "metrics",
        "trace-out",
    ])?;
    let session = ObsSession::start(args)?;
    let trace = load_trace(args, stdin)?;
    let budget = args.num::<u64>("budget", 0)?;
    let jobs = args.num::<usize>("jobs", 0)?; // 0 = available_parallelism
    let verifier = VmcVerifier {
        strategy: parse_strategy(args)?,
        search: SearchConfig {
            max_states: (budget > 0).then_some(budget),
            prune: parse_prune(args)?,
            ..Default::default()
        },
        tier: parse_tier(args)?,
    };
    let mut out = String::new();

    // Single-address mode: keep the historical direct solve.
    if let Some(a) = args.flag("addr") {
        let addr = Addr(a.parse().map_err(|_| err("invalid --addr"))?);
        let (verdict, stats) = verifier.verify_with_stats(&trace, addr);
        let all_ok = match verdict {
            Verdict::Coherent(s) => {
                let _ = writeln!(out, "address {}: coherent ({} ops)", addr.0, s.len());
                true
            }
            Verdict::Incoherent(v) => {
                let _ = writeln!(out, "address {}: VIOLATION — {v}", addr.0);
                false
            }
            Verdict::Unknown => {
                let _ = writeln!(out, "address {}: unknown (budget exhausted)", addr.0);
                false
            }
        };
        let _ = writeln!(
            out,
            "{}",
            if all_ok {
                "execution: coherent"
            } else {
                "execution: NOT coherent"
            }
        );
        let _ = writeln!(out, "# {}", stats.to_report().to_inline());
        if let Some(session) = session {
            let mut run = RunReport::new();
            run.push_section(
                RunReportSection::new("verify")
                    .with("mode", "single-address")
                    .with("addr", u64::from(addr.0))
                    .with("coherent", u64::from(all_ok)),
            );
            run.push_section(stats.to_report());
            session.finish(&mut out, run)?;
        }
        return Ok(out);
    }

    // Whole-execution mode: the parallel per-address engine (deterministic
    // at every thread count; jobs == 1 runs inline with no threads).
    let report = vermem_coherence::verify_execution_par(&trace, &verifier, jobs);
    let all_ok = match &report.verdict {
        vermem_coherence::ExecutionVerdict::Coherent(witnesses) => {
            for (addr, s) in witnesses {
                let _ = writeln!(out, "address {}: coherent ({} ops)", addr.0, s.len());
            }
            true
        }
        vermem_coherence::ExecutionVerdict::Incoherent(v) => {
            let _ = writeln!(out, "address {}: VIOLATION — {v}", v.addr.0);
            false
        }
        vermem_coherence::ExecutionVerdict::Unknown { addr } => {
            let _ = writeln!(out, "address {}: unknown (budget exhausted)", addr.0);
            false
        }
    };
    let _ = writeln!(
        out,
        "{}",
        if all_ok {
            "execution: coherent"
        } else {
            "execution: NOT coherent"
        }
    );
    let verify_section = RunReportSection::new("verify")
        .with("addresses", report.addresses)
        .with("jobs", report.jobs)
        .with("coherent", u64::from(all_ok));
    let tier_section = RunReportSection::new("tier")
        .with("pipeline", verifier.tier.spec())
        .with("frontline_decided", report.tiers.frontline_decided)
        .with("escalated", report.tiers.escalated);
    let _ = writeln!(out, "# {}", verify_section.to_inline());
    let _ = writeln!(out, "# {}", tier_section.to_inline());
    let _ = writeln!(out, "# {}", report.stats.to_report().to_inline());
    if let Some(session) = session {
        let mut run = RunReport::new();
        run.push_section(verify_section);
        run.push_section(tier_section);
        run.push_section(report.stats.to_report());
        session.finish(&mut out, run)?;
    }
    Ok(out)
}

fn cmd_sc(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&["model", "engine", "tier", "budget", "metrics", "trace-out"])?;
    let session = ObsSession::start(args)?;
    let trace = load_trace(args, stdin)?;
    let model = ModelId::parse(args.flag("model").unwrap_or("sc")).ok_or_else(|| {
        err(format!(
            "unknown model '{}' (expected sc|tso|pso|coherence|ra|arm-dob)",
            args.flag("model").unwrap_or_default()
        ))
    })?;
    let engine = Engine::parse(args.flag("engine").unwrap_or("compiled")).ok_or_else(|| {
        err(format!(
            "unknown engine '{}' (expected compiled|legacy|sat)",
            args.flag("engine").unwrap_or_default()
        ))
    })?;
    if !engine.supports(model) {
        return Err(err(format!(
            "--engine {} has no implementation for model {}",
            engine.name(),
            model.name()
        )));
    }
    let budget = args.num::<u64>("budget", 0)?;
    let cfg = AxiomConfig {
        engine,
        kernel: vermem_consistency::KernelConfig {
            max_states: (budget > 0).then_some(budget),
            ..Default::default()
        },
        tier: parse_tier(args)?,
    };
    let report = verify_axiom(&trace, model, &cfg);
    let stats = report.stats;
    let mut out = String::new();
    let model_name = model.name();
    let consistent = match &report.verdict {
        vermem_consistency::ConsistencyVerdict::Consistent(s) => {
            let _ = writeln!(out, "{model_name}: consistent ({} ops serialized)", s.len());
            true
        }
        vermem_consistency::ConsistencyVerdict::Violating(v) => {
            let _ = writeln!(out, "{model_name}: VIOLATION — {v}");
            false
        }
        vermem_consistency::ConsistencyVerdict::Unknown { stats } => {
            let _ = writeln!(
                out,
                "{model_name}: unknown (budget of {budget} states exhausted after {} states)",
                stats.states
            );
            false
        }
    };
    let tier_name = match report.tier {
        vermem_coherence::closure::Tier::Frontline => "frontline",
        vermem_coherence::closure::Tier::Exact => "exact",
    };
    let _ = writeln!(out, "# engine={} tier={tier_name}", engine.name());
    // Same pretty-printer path as `verify`: the kernel's SearchStats
    // rendered through the unified run-report section.
    let _ = writeln!(out, "# {}", stats.to_report().to_inline());
    if let Some(session) = session {
        let mut run = RunReport::new();
        run.push_section(
            RunReportSection::new("sc")
                .with("model", model_name)
                .with("engine", engine.name())
                .with("tier", tier_name)
                .with("consistent", u64::from(consistent))
                .with("budget", budget),
        );
        run.push_section(stats.to_report());
        session.finish(&mut out, run)?;
    }
    Ok(out)
}

fn cmd_classify(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&[])?;
    let trace = load_trace(args, stdin)?;
    let mut out = String::new();
    let stats = vermem_trace::stats::TraceStats::of(&trace);
    let _ = writeln!(out, "{}", stats.to_report().to_inline());
    let verifier = VmcVerifier::new();
    for addr in trace.addresses() {
        let profile = vermem_trace::classify::InstanceProfile::of(&trace, addr);
        let _ = writeln!(
            out,
            "address {}: {} ops, ≤{} ops/proc, ≤{} writes/value, mix {:?} → {} ({:?})",
            addr.0,
            profile.num_ops,
            profile.max_ops_per_proc,
            profile.max_writes_per_value,
            profile.mix,
            profile.known_complexity(),
            verifier.select(&trace, addr),
        );
    }
    Ok(out)
}

fn cmd_explain(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&["addr"])?;
    let trace = load_trace(args, stdin)?;
    let addrs: Vec<Addr> = match args.flag("addr") {
        Some(a) => vec![Addr(a.parse().map_err(|_| err("invalid --addr"))?)],
        None => trace.addresses(),
    };
    let mut out = String::new();
    for addr in addrs {
        match vermem_coherence::minimize_incoherent_core(
            &trace,
            addr,
            &vermem_coherence::ExplainConfig::default(),
        ) {
            None => {
                let _ = writeln!(out, "address {}: coherent (nothing to explain)", addr.0);
            }
            Some(core) => {
                let _ = writeln!(
                    out,
                    "address {}: minimal incoherent core ({} of {} ops):",
                    addr.0,
                    core.len(),
                    trace.project(addr).num_ops()
                );
                for &r in &core.kept {
                    let _ = writeln!(out, "  {:?} {}", r, trace.op(r).expect("kept op"));
                }
                let _ = writeln!(out, "  cause: {}", core.violation);
            }
        }
    }
    Ok(out)
}

fn cmd_gen(args: &Args) -> Result<String, CliError> {
    args.expect_flags(&["procs", "ops", "addrs", "seed", "rmw", "reuse"])?;
    let cfg = vermem_trace::gen::GenConfig {
        procs: args.num("procs", 4usize)?,
        total_ops: args.num("ops", 64usize)?,
        addrs: args.num("addrs", 1usize)?,
        write_fraction: 0.5,
        rmw_fraction: args.num("rmw", 0u32)? as f64 / 100.0,
        value_reuse: args.num("reuse", 30u32)? as f64 / 100.0,
        seed: args.num("seed", 0xC0FFEEu64)?,
    };
    let (trace, _) = vermem_trace::gen::gen_sc_trace(&cfg);
    Ok(vermem_trace::fmt::format_trace(&trace))
}

fn cmd_inject(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&["kind", "seed"])?;
    let trace = load_trace(args, stdin)?;
    let kind = match args.flag("kind").ok_or_else(|| err("--kind required"))? {
        "corrupt-read" => vermem_trace::gen::ViolationKind::CorruptReadValue,
        "stale-read" => vermem_trace::gen::ViolationKind::StaleRead,
        "lost-write" => vermem_trace::gen::ViolationKind::LostWrite,
        "reorder" => vermem_trace::gen::ViolationKind::ReorderAdjacent,
        other => return Err(err(format!("unknown violation kind '{other}'"))),
    };
    let seed = args.num("seed", 1u64)?;
    match vermem_trace::gen::inject_violation(&trace, kind, seed) {
        None => Err(err("no eligible injection site in this trace")),
        Some((mutated, inj)) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "# injected {:?} at {:?} (guaranteed violation: {})",
                inj.kind, inj.site, inj.guaranteed
            );
            out.push_str(&vermem_trace::fmt::format_trace(&mutated));
            Ok(out)
        }
    }
}

fn cmd_reduce(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&["figure"])?;
    let path = args
        .positional
        .first()
        .ok_or_else(|| err("expected a DIMACS file argument (or '-')"))?;
    let text = if path == "-" {
        stdin.to_string()
    } else {
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?
    };
    let cnf = vermem_sat::dimacs::parse_dimacs(&text)
        .map_err(|e| err(format!("DIMACS parse error: {e}")))?;
    let trace = match args.flag("figure").unwrap_or("4.1") {
        "4.1" => vermem_reductions::reduce_sat_to_vmc(&cnf).trace,
        "5.1" => vermem_reductions::reduce_3sat_restricted(&cnf).trace,
        "5.2" => vermem_reductions::reduce_3sat_rmw(&cnf).trace,
        other => return Err(err(format!("unknown figure '{other}' (4.1, 5.1 or 5.2)"))),
    };
    Ok(vermem_trace::fmt::format_trace(&trace))
}

fn cmd_sim(args: &Args) -> Result<String, CliError> {
    args.expect_flags(&[
        "cpus",
        "instrs",
        "addrs",
        "tso",
        "directory",
        "seed",
        "verify",
        "online",
        "jobs",
        "tier",
        "prune",
        "metrics",
        "trace-out",
    ])?;
    let session = ObsSession::start(args)?;
    let cpus = args.num("cpus", 4usize)?;
    let instrs = args.num("instrs", 64usize)?;
    let program = vermem_sim::random_program(&vermem_sim::WorkloadConfig {
        cpus,
        instrs_per_cpu: instrs.div_ceil(cpus.max(1)),
        addrs: args.num("addrs", 3usize)?,
        write_fraction: 0.45,
        rmw_fraction: 0.1,
        seed: args.num("seed", 1u64)?,
    });
    if args.has("tso") && args.has("directory") {
        return Err(err("--tso and --directory are mutually exclusive"));
    }
    let cap = if args.has("directory") {
        vermem_sim::DirectoryMachine::run(
            &program,
            vermem_sim::DirectoryConfig {
                seed: args.num("seed", 1u64)?,
                ..Default::default()
            },
        )
    } else {
        vermem_sim::Machine::run(
            &program,
            vermem_sim::MachineConfig {
                store_buffers: args.has("tso"),
                seed: args.num("seed", 1u64)?,
                ..Default::default()
            },
        )
    };
    let mut out = String::new();
    let mut run = RunReport::new();
    let _ = writeln!(
        out,
        "# {} ops, {}",
        cap.trace.num_ops(),
        cap.stats.to_report().to_inline()
    );
    run.push_section(cap.stats.to_report());
    if args.has("verify") {
        let jobs = args.num::<usize>("jobs", 0)?; // 0 = available_parallelism
        let verifier = VmcVerifier {
            search: SearchConfig {
                prune: parse_prune(args)?,
                ..Default::default()
            },
            tier: parse_tier(args)?,
            ..VmcVerifier::new()
        };
        let report = vermem_coherence::verify_execution_par(&cap.trace, &verifier, jobs);
        let _ = writeln!(
            out,
            "# verification: {} ({} addresses, {} jobs)",
            if report.is_coherent() {
                "coherent"
            } else {
                "VIOLATION"
            },
            report.addresses,
            report.jobs
        );
        let tier_section = RunReportSection::new("tier")
            .with("pipeline", verifier.tier.spec())
            .with("frontline_decided", report.tiers.frontline_decided)
            .with("escalated", report.tiers.escalated);
        let _ = writeln!(out, "# {}", tier_section.to_inline());
        let _ = writeln!(out, "# {}", report.stats.to_report().to_inline());
        run.push_section(
            RunReportSection::new("verify")
                .with("addresses", report.addresses)
                .with("jobs", report.jobs)
                .with("coherent", u64::from(report.is_coherent())),
        );
        run.push_section(tier_section);
        run.push_section(report.stats.to_report());
    }
    if args.has("online") {
        let mut v = vermem_coherence::OnlineVerifier::new();
        for &(proc, op) in &cap.event_log {
            v.observe(proc, op);
        }
        let violations = v.finish();
        let _ = writeln!(
            out,
            "# online check: {}",
            if violations.is_empty() {
                "clean".to_string()
            } else {
                format!(
                    "{} violation(s), first at event {}",
                    violations.len(),
                    violations[0].detected_at
                )
            }
        );
    }
    out.push_str(&vermem_trace::fmt::format_trace(&cap.trace));
    if let Some(session) = session {
        session.finish(&mut out, run)?;
    }
    Ok(out)
}

/// Parse `--window` for `serve`: a positive op/slot budget per address,
/// or `unbounded` / `0` to disable retirement.
fn parse_window(args: &Args) -> Result<Option<usize>, CliError> {
    match args.flag("window") {
        None => Ok(Some(4096)),
        Some("unbounded") => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| err(format!("invalid --window value '{v}'")))?;
            Ok(if n == 0 { None } else { Some(n) })
        }
    }
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    args.expect_flags(&[
        "streams",
        "window",
        "jobs",
        "chunk",
        "cpus",
        "instrs",
        "addrs",
        "seed",
        "fault",
        "obs-addr",
        "forensics",
        "metrics",
        "trace-out",
        "hot-path",
    ])?;
    let session = ObsSession::start(args)?;
    let window = parse_window(args)?;
    let jobs = args.num::<usize>("jobs", 0)?; // 0 = available_parallelism
    let chunk = args.num("chunk", 64 * 1024usize)?.max(1);
    let hot_path = match args.flag("hot-path").unwrap_or("dense") {
        "dense" => vermem_coherence::HotPathConfig::default(),
        "legacy" => vermem_coherence::HotPathConfig {
            legacy_structures: true,
        },
        other => {
            return Err(err(format!(
                "invalid --hot-path value '{other}' (expected dense|legacy)"
            )))
        }
    };
    let obs_addr = args.flag("obs-addr").map(str::to_string);
    let forensics_dir = args.flag("forensics").map(std::path::PathBuf::from);
    // The flight recorder rides with --forensics; --obs-addr alone keeps
    // the engine untouched (the server only reads shared state).
    let recorder = forensics_dir
        .as_ref()
        .map(|_| vermem_coherence::RecorderConfig::default());
    if let Some(dir) = &forensics_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| err(format!("cannot create {}: {e}", dir.display())))?;
    }

    // Gather the input streams: binary files if given, otherwise
    // synthesized simulator event logs (one SC machine run per stream).
    let mut inputs: Vec<(String, Vec<u8>)> = Vec::new();
    if args.positional.is_empty() {
        let streams = args.num("streams", 4usize)?.max(1);
        let cpus = args.num("cpus", 4usize)?;
        let instrs = args.num("instrs", 256usize)?;
        let seed = args.num("seed", 1u64)?;
        for i in 0..streams {
            let s = seed.wrapping_add(i as u64);
            let program = vermem_sim::random_program(&vermem_sim::WorkloadConfig {
                cpus,
                instrs_per_cpu: instrs.div_ceil(cpus.max(1)),
                addrs: args.num("addrs", 4usize)?,
                write_fraction: 0.45,
                rmw_fraction: 0.0,
                seed: s,
            });
            let faults = if args.has("fault") {
                vec![vermem_sim::FaultPlan {
                    kind: vermem_sim::FaultKind::CorruptFill {
                        cpu: 1,
                        xor: 0xDEAD_0000,
                    },
                    at_step: 6,
                }]
            } else {
                Vec::new()
            };
            let cap = vermem_sim::Machine::run(
                &program,
                vermem_sim::MachineConfig {
                    seed: s,
                    faults,
                    ..Default::default()
                },
            );
            let bytes = vermem_sim::event_stream_bytes(&cap)
                .map_err(|e| err(format!("stream {i}: {e}")))?;
            inputs.push((format!("sim:{s}"), bytes));
        }
    } else {
        for path in &args.positional {
            let bytes = std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
            inputs.push((path.clone(), bytes));
        }
    }

    let mut out = String::new();
    let mut run = RunReport::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut total_events = 0u64;
    let mut total_us = 0u64;
    let mut incoherent = 0usize;
    let mut peak_windows = 0u64;
    let mut total_bundles = 0usize;

    // Live introspection: shared state always exists (it is cheap); the
    // server and the per-chunk clock reads only run with --obs-addr.
    let names: Vec<String> = inputs.iter().map(|(n, _)| n.clone()).collect();
    let state = obs_server::ServeState::new(&names, obs::now_us());
    let server = match &obs_addr {
        Some(addr) => {
            let s = obs_server::ObsServer::start(addr, std::sync::Arc::clone(&state))
                .map_err(|e| err(format!("cannot bind obs server on {addr}: {e}")))?;
            let _ = writeln!(out, "# obs: serving on {}", s.local_addr());
            Some(s)
        }
        None => None,
    };
    let live = server.is_some();

    for (i, (name, bytes)) in inputs.iter().enumerate() {
        // The v3 framing carries a temporal event log with meaningful
        // detection latencies; v2 proc-major files do not.
        let temporal = bytes.len() >= 6 && u16::from_le_bytes([bytes[4], bytes[5]]) == 3;
        let t0 = obs::now_us();
        let mut engine = vermem_coherence::StreamVerifier::new(vermem_coherence::StreamConfig {
            window,
            jobs,
            temporal,
            verifier: VmcVerifier::new(),
            recorder,
            hot_path,
        });
        for piece in bytes.chunks(chunk) {
            let c0 = if live { obs::now_us() } else { 0 };
            engine
                .ingest(piece)
                .map_err(|e| err(format!("{name}: {e}")))?;
            if live {
                state.series.record(obs::now_us().saturating_sub(c0));
            }
        }
        engine
            .end_input()
            .map_err(|e| err(format!("{name}: {e}")))?;
        if engine.needs_replay() {
            for piece in bytes.chunks(chunk) {
                engine
                    .ingest_replay(piece)
                    .map_err(|e| err(format!("{name}: {e}")))?;
            }
        }
        let report = engine.finish();
        let elapsed = obs::now_us().saturating_sub(t0).max(1);
        let ops_per_sec = report.events.saturating_mul(1_000_000) / elapsed;
        total_events += report.events;
        total_us += elapsed;
        peak_windows = peak_windows.max(report.metrics.peak_retained_windows);
        if !report.is_coherent() {
            incoherent += 1;
        }
        latencies.extend_from_slice(&report.detect_latencies_us);
        let verdict = match &report.verdict {
            vermem_coherence::StreamVerdict::Coherent => "coherent".to_string(),
            vermem_coherence::StreamVerdict::Incoherent(v) => {
                format!("VIOLATION at address {}", v.addr.0)
            }
            vermem_coherence::StreamVerdict::Unknown { addr } => {
                format!("unknown at address {}", addr.0)
            }
        };
        if live {
            state.series.rotate(obs::now_us());
        }
        state.complete_stream(
            i,
            report.events,
            report.detections.len() as u64,
            &verdict,
            report.is_coherent(),
        );
        if let Some(dir) = &forensics_dir {
            total_bundles += report.forensics.len();
            if !report.forensics.is_empty() {
                let path = dir.join(format!("stream-{i}.forensics.jsonl"));
                let mut doc = String::new();
                for bundle in &report.forensics {
                    doc.push_str(&bundle.to_json());
                    doc.push('\n');
                }
                std::fs::write(&path, doc)
                    .map_err(|e| err(format!("cannot write {}: {e}", path.display())))?;
                let _ = writeln!(
                    out,
                    "# forensics: stream {i} — {} bundle(s) → {}",
                    report.forensics.len(),
                    path.display()
                );
            }
        }
        let _ = writeln!(
            out,
            "# stream {i} ({name}): {verdict} — {} events, {} addrs, {} ops/s, \
             peak {} windows, {} detections",
            report.events,
            report.addresses,
            ops_per_sec,
            report.metrics.peak_retained_windows,
            report.detections.len()
        );
        run.push_section(
            RunReportSection::new(&format!("stream{i}"))
                .with("events", report.events)
                .with("coherent", u64::from(report.is_coherent()))
                .with("sustained_ops_per_sec", ops_per_sec)
                .with(
                    "peak_retained_windows",
                    report.metrics.peak_retained_windows,
                )
                .with("retired_ops", report.metrics.retired_ops)
                .with("retired_bytes", report.metrics.retired_bytes)
                .with("sealed_addresses", report.metrics.sealed_addresses)
                .with("exact_addresses", report.metrics.exact_addresses)
                .with("replayed_addresses", report.metrics.replayed_addresses)
                .with("detections", report.detections.len()),
        );
        if live {
            state.set_snapshot(run.to_json());
        }
    }
    let aggregate_ops = total_events.saturating_mul(1_000_000) / total_us.max(1);
    let p99 = vermem_coherence::stream::percentile(&latencies, 99);
    let _ = writeln!(
        out,
        "# serve: {} stream(s), {} incoherent, {} events, {} ops/s sustained, \
         p99 detect latency {}, peak {} windows (window {})",
        inputs.len(),
        incoherent,
        total_events,
        aggregate_ops,
        p99.map_or_else(|| "-".to_string(), |v| format!("{v} us")),
        peak_windows,
        window.map_or_else(|| "unbounded".to_string(), |w| w.to_string()),
    );
    let mut serve_section = RunReportSection::new("serve")
        .with("streams", inputs.len())
        .with("incoherent", incoherent)
        .with("events", total_events)
        .with("sustained_ops_per_sec", aggregate_ops)
        .with("peak_retained_windows", peak_windows)
        .with("jobs", jobs)
        .with("window", window.unwrap_or(0));
    if let Some(p99) = p99 {
        serve_section = serve_section.with("p99_detect_latency_us", p99);
    }
    if forensics_dir.is_some() {
        serve_section = serve_section.with("forensic_bundles", total_bundles);
    }
    run.push_section(serve_section);
    if live {
        state.set_snapshot(run.to_json());
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(session) = session {
        session.finish(&mut out, run)?;
    }
    Ok(out)
}

fn cmd_sat(args: &Args, stdin: &str) -> Result<String, CliError> {
    args.expect_flags(&[])?;
    let path = args
        .positional
        .first()
        .ok_or_else(|| err("expected a DIMACS file argument (or '-')"))?;
    let text = if path == "-" {
        stdin.to_string()
    } else {
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?
    };
    let cnf = vermem_sat::dimacs::parse_dimacs(&text)
        .map_err(|e| err(format!("DIMACS parse error: {e}")))?;
    let mut solver = vermem_sat::CdclSolver::new(&cnf);
    let mut out = String::new();
    match solver.solve() {
        vermem_sat::SatResult::Sat(model) => {
            let _ = write!(out, "s SATISFIABLE\nv");
            for i in 0..cnf.num_vars() {
                let v = vermem_sat::Var(i);
                let lit = v.lit(model.value(v).unwrap_or(false));
                let _ = write!(out, " {}", lit.to_dimacs());
            }
            let _ = writeln!(out, " 0");
        }
        vermem_sat::SatResult::Unsat => {
            let _ = writeln!(out, "s UNSATISFIABLE");
        }
    }
    let stats = solver.stats();
    let _ = writeln!(out, "c {}", stats.to_report().to_inline());
    Ok(out)
}

fn cmd_litmus() -> Result<String, CliError> {
    // All six declared models, decided by the spec-generic SAT compiler
    // (the axiomatic ground truth every other engine answers to).
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:>4} {:>4} {:>4} {:>10} {:>4} {:>8}",
        "test", "SC", "TSO", "PSO", "Coherence", "RA", "ARM-dob"
    );
    for test in vermem_consistency::litmus::all_litmus_tests() {
        let mut cells = Vec::new();
        for id in ModelId::ALL {
            let got = vermem_consistency::solve_spec_sat(&test.trace, vermem_consistency::spec(id))
                .is_consistent();
            cells.push(if got { "yes" } else { "no" });
        }
        let _ = writeln!(
            out,
            "{:<15} {:>4} {:>4} {:>4} {:>10} {:>4} {:>8}",
            test.name, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str], stdin: &str) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, stdin).expect("command should succeed")
    }

    const COHERENT: &str = "P0: W(0,1) R(0,2)\nP1: W(0,2)\n";
    const VIOLATING: &str = "P0: W(0,1) W(0,2)\nP1: R(0,2) R(0,1)\n";

    #[test]
    fn verify_coherent_trace() {
        let out = run_ok(&["verify", "-"], COHERENT);
        assert!(out.contains("address 0: coherent"));
        assert!(out.contains("execution: coherent"));
    }

    #[test]
    fn verify_detects_violation() {
        let out = run_ok(&["verify", "-"], VIOLATING);
        assert!(out.contains("VIOLATION"));
        assert!(out.contains("NOT coherent"));
    }

    #[test]
    fn verify_strategies() {
        for strat in ["auto", "backtracking", "sat"] {
            let out = run_ok(&["verify", "-", "--strategy", strat], COHERENT);
            assert!(out.contains("coherent"), "{strat}");
        }
        assert!(run(
            &[
                "verify".into(),
                "-".into(),
                "--strategy".into(),
                "bogus".into()
            ],
            COHERENT
        )
        .is_err());
    }

    #[test]
    fn verify_jobs_flag_is_deterministic() {
        let trace = run_ok(&["gen", "--procs", "3", "--ops", "60", "--addrs", "5"], "");
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let baseline = run_ok(&["verify", "-", "--jobs", "1"], &trace);
        for jobs in ["2", "8"] {
            let out = run_ok(&["verify", "-", "--jobs", jobs], &trace);
            assert_eq!(strip(&out), strip(&baseline), "jobs {jobs}");
        }
        assert!(baseline.contains("execution: coherent"));
        assert!(baseline.contains("jobs=1"));
    }

    #[test]
    fn verify_jobs_flag_on_violating_trace() {
        for jobs in ["1", "2", "8"] {
            let out = run_ok(&["verify", "-", "--jobs", jobs], VIOLATING);
            assert!(out.contains("VIOLATION"), "jobs {jobs}");
            assert!(out.contains("NOT coherent"), "jobs {jobs}");
        }
    }

    #[test]
    fn verify_prune_configs_agree() {
        let trace = run_ok(&["gen", "--procs", "3", "--ops", "60", "--addrs", "2"], "");
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let baseline = run_ok(&["verify", "-"], &trace);
        for spec in ["all", "none", "windows", "symmetry,nogoods"] {
            let out = run_ok(&["verify", "-", &format!("--prune={spec}")], &trace);
            assert_eq!(strip(&out), strip(&baseline), "prune {spec}");
        }
        // Verdict parity on a violating trace too.
        for spec in ["all", "none", "windows,symmetry,nogoods"] {
            let out = run_ok(&["verify", "-", &format!("--prune={spec}")], VIOLATING);
            assert!(out.contains("NOT coherent"), "prune {spec}");
        }
    }

    #[test]
    fn verify_tier_configs_agree() {
        // The tier split is accounting + routing only: verdict lines are
        // identical under both pipelines (the `#` report lines differ —
        // that is the point of the ablation).
        let trace = run_ok(&["gen", "--procs", "3", "--ops", "60", "--addrs", "2"], "");
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let baseline = run_ok(&["verify", "-"], &trace);
        assert!(
            baseline.contains("tier: pipeline=closure,exact"),
            "{baseline}"
        );
        for spec in ["closure,exact", "exact"] {
            let out = run_ok(&["verify", "-", &format!("--tier={spec}")], &trace);
            assert_eq!(strip(&out), strip(&baseline), "tier {spec}");
            assert!(out.contains(&format!("tier: pipeline={spec}")), "{out}");
        }
        for spec in ["closure,exact", "exact"] {
            let out = run_ok(&["verify", "-", &format!("--tier={spec}")], VIOLATING);
            assert!(out.contains("NOT coherent"), "tier {spec}");
        }
    }

    #[test]
    fn verify_tier_rejects_unknown_pipeline() {
        for spec in ["bogus", "exact,closure", ""] {
            let e = run(
                &["verify".into(), "-".into(), format!("--tier={spec}")],
                COHERENT,
            )
            .expect_err(&format!("--tier={spec} should fail"));
            assert!(e.0.contains("tier"), "{spec}: {}", e.0);
        }
    }

    #[test]
    fn sim_reports_tier_accounting() {
        let out = run_ok(&["sim", "--cpus", "3", "--instrs", "30", "--verify"], "");
        assert!(out.contains("tier: pipeline=closure,exact"), "{out}");
        let exact = run_ok(
            &[
                "sim", "--cpus", "3", "--instrs", "30", "--verify", "--tier", "exact",
            ],
            "",
        );
        assert!(exact.contains("tier: pipeline=exact"), "{exact}");
    }

    #[test]
    fn verify_prune_rejects_unknown_technique() {
        for spec in ["bogus", "windows,bogus", ""] {
            let e = run(
                &["verify".into(), "-".into(), format!("--prune={spec}")],
                COHERENT,
            )
            .expect_err(&format!("--prune={spec} should fail"));
            assert!(e.0.contains("prune"), "{spec}: {}", e.0);
        }
    }

    #[test]
    fn verify_metrics_include_prune_counters() {
        let out = run_ok(&["verify", "-", "--metrics"], CONTENDED);
        for field in ["window_prunes=", "symmetry_prunes=", "nogood_hits="] {
            assert!(out.contains(field), "expected {field} in:\n{out}");
        }
        // Inline `# search:` line carries them even without --metrics.
        let out = run_ok(&["verify", "-"], CONTENDED);
        assert!(out.contains("window_prunes="), "inline report:\n{out}");
    }

    #[test]
    fn sim_verify_accepts_prune() {
        for spec in ["all", "none"] {
            let out = run_ok(
                &[
                    "sim",
                    "--cpus",
                    "3",
                    "--instrs",
                    "30",
                    "--verify",
                    &format!("--prune={spec}"),
                ],
                "",
            );
            assert!(out.contains("# verification: coherent"), "prune {spec}");
        }
        assert!(run(
            &["sim".into(), "--verify".into(), "--prune=bogus".into()],
            ""
        )
        .is_err());
    }

    #[test]
    fn sc_models() {
        let sb = "P0: W(0,1) R(1,0)\nP1: W(1,1) R(0,0)\n";
        let out = run_ok(&["sc", "-", "--model", "sc"], sb);
        assert!(out.contains("VIOLATION"));
        let out = run_ok(&["sc", "-", "--model", "tso"], sb);
        assert!(out.contains("consistent"));
    }

    #[test]
    fn sc_reports_search_stats_inline() {
        // The kernel-backed engines render SearchStats through the same
        // `# search:` pretty-printer path as `verify`.
        let sb = "P0: W(0,1) R(1,0)\nP1: W(1,1) R(0,0)\n";
        for model in ["sc", "tso", "pso"] {
            let out = run_ok(&["sc", "-", "--model", model], sb);
            assert!(out.contains("# search:"), "model {model}:\n{out}");
            assert!(out.contains("states="), "model {model}:\n{out}");
        }
    }

    #[test]
    fn sc_budget_reports_unknown_with_progress() {
        let contended =
            "P0: W(0,1) W(1,1) R(2,0)\nP1: W(1,2) W(2,1) R(0,0)\nP2: W(2,2) W(0,2) R(1,0)\n";
        let out = run_ok(&["sc", "-", "--model", "tso", "--budget", "1"], contended);
        assert!(out.contains("unknown"), "{out}");
        assert!(out.contains("states"), "{out}");
    }

    #[test]
    fn sc_metrics_emit_run_report() {
        let sb = "P0: W(0,1) R(1,0)\nP1: W(1,1) R(0,0)\n";
        let out = run_ok(&["sc", "-", "--model", "pso", "--metrics"], sb);
        assert!(out.contains("# sc:"), "{out}");
        assert!(out.contains("model=PSO"), "{out}");
        let json = run_ok(&["sc", "-", "--model", "sc", "--metrics=json"], sb);
        assert!(json.contains("\"search\""), "{json}");
    }

    #[test]
    fn sc_rejects_unknown_flags() {
        let e = run(
            &["sc".into(), "-".into(), "--jobs".into(), "2".into()],
            "P0: W(0,1)\n",
        )
        .expect_err("--jobs is not an sc flag");
        assert!(e.0.contains("unknown flag"), "{}", e.0);
    }

    #[test]
    fn sc_axiom_models() {
        // The declared models beyond the serialization-based four: MP is
        // forbidden under RA (the flag rf carries happens-before) but
        // allowed under ARM-dob (W→W is not dob-ordered).
        let mp = "P0: W(0,1) W(1,1)\nP1: R(1,1) R(0,0)\n";
        let out = run_ok(&["sc", "-", "--model", "ra"], mp);
        assert!(out.contains("RA: VIOLATION"), "{out}");
        let out = run_ok(&["sc", "-", "--model", "arm-dob"], mp);
        assert!(out.contains("ARM-dob: consistent"), "{out}");
        let e = run(
            &["sc".into(), "-".into(), "--model".into(), "rmo".into()],
            mp,
        )
        .expect_err("rmo is not a declared model");
        assert!(e.0.contains("unknown model"), "{}", e.0);
    }

    #[test]
    fn sc_engine_selection() {
        let sb = "P0: W(0,1) R(1,0)\nP1: W(1,1) R(0,0)\n";
        // All three engines agree on SB under TSO; the engine line names
        // the decider that ran.
        for engine in ["compiled", "legacy", "sat"] {
            let out = run_ok(&["sc", "-", "--model", "tso", "--engine", engine], sb);
            assert!(out.contains("TSO: consistent"), "{engine}:\n{out}");
            assert!(out.contains(&format!("# engine={engine}")), "{out}");
        }
        // RA has no legacy machine: explicit error, not a silent fallback.
        let e = run(
            &[
                "sc".into(),
                "-".into(),
                "--model".into(),
                "ra".into(),
                "--engine".into(),
                "legacy".into(),
            ],
            sb,
        )
        .expect_err("legacy RA must be rejected");
        assert!(e.0.contains("no implementation"), "{}", e.0);
        let e = run(
            &["sc".into(), "-".into(), "--engine".into(), "brute".into()],
            sb,
        )
        .expect_err("brute is not an engine");
        assert!(e.0.contains("unknown engine"), "{}", e.0);
    }

    #[test]
    fn sc_ra_tier_pipeline() {
        // SB has unique reads-from candidates, so the polynomial RA tier
        // decides it; the `--tier exact` ablation reaches the same verdict
        // through the exact graph search.
        let sb = "P0: W(0,1) R(1,0)\nP1: W(1,1) R(0,0)\n";
        let out = run_ok(&["sc", "-", "--model", "ra"], sb);
        assert!(out.contains("RA: consistent"), "{out}");
        assert!(out.contains("tier=frontline"), "{out}");
        let out = run_ok(&["sc", "-", "--model", "ra", "--tier", "exact"], sb);
        assert!(out.contains("RA: consistent"), "{out}");
        assert!(out.contains("tier=exact"), "{out}");
    }

    #[test]
    fn classify_reports_complexity() {
        let out = run_ok(&["classify", "-"], COHERENT);
        assert!(out.contains("procs=2"));
        assert!(out.contains("address 0"));
    }

    #[test]
    fn explain_violating_trace() {
        let out = run_ok(&["explain", "-"], VIOLATING);
        assert!(out.contains("minimal incoherent core"));
    }

    #[test]
    fn explain_coherent_trace() {
        let out = run_ok(&["explain", "-"], COHERENT);
        assert!(out.contains("nothing to explain"));
    }

    #[test]
    fn gen_emits_parseable_trace() {
        let out = run_ok(&["gen", "--procs", "3", "--ops", "20", "--seed", "5"], "");
        let t = vermem_trace::fmt::parse_trace(&out).expect("generated trace parses");
        assert_eq!(t.num_ops(), 20);
    }

    #[test]
    fn gen_then_verify_round_trip() {
        let trace = run_ok(&["gen", "--procs", "3", "--ops", "30"], "");
        let out = run_ok(&["verify", "-"], &trace);
        assert!(out.contains("execution: coherent"));
    }

    #[test]
    fn inject_then_verify_detects() {
        let trace = run_ok(&["gen", "--procs", "3", "--ops", "30"], "");
        let injected = run_ok(&["inject", "-", "--kind", "corrupt-read"], &trace);
        let out = run_ok(&["verify", "-"], &injected);
        assert!(out.contains("NOT coherent"));
    }

    #[test]
    fn reduce_dimacs() {
        let dimacs = "p cnf 2 2\n1 2 0\n-1 2 0\n";
        for figure in ["4.1", "5.1", "5.2"] {
            let out = run_ok(&["reduce", "-", "--figure", figure], dimacs);
            let t = vermem_trace::fmt::parse_trace(&out).expect("reduction parses");
            assert!(t.num_ops() > 0, "{figure}");
        }
    }

    #[test]
    fn reduce_then_verify_is_equisatisfiable() {
        // (x1)(¬x1): UNSAT → incoherent.
        let out = run_ok(&["reduce", "-"], "p cnf 1 2\n1 0\n-1 0\n");
        let verdict = run_ok(&["verify", "-"], &out);
        assert!(verdict.contains("NOT coherent"));
    }

    #[test]
    fn sim_emits_and_verifies() {
        let out = run_ok(&["sim", "--cpus", "3", "--instrs", "30", "--verify"], "");
        assert!(out.contains("# verification: coherent"));
    }

    #[test]
    fn sim_verify_with_jobs() {
        for jobs in ["1", "4"] {
            let out = run_ok(
                &[
                    "sim", "--cpus", "3", "--instrs", "30", "--verify", "--jobs", jobs,
                ],
                "",
            );
            assert!(out.contains("# verification: coherent"), "jobs {jobs}");
        }
    }

    #[test]
    fn sim_online_and_directory_modes() {
        let out = run_ok(&["sim", "--cpus", "3", "--instrs", "30", "--online"], "");
        assert!(out.contains("# online check: clean"));
        let out = run_ok(
            &[
                "sim",
                "--cpus",
                "3",
                "--instrs",
                "30",
                "--directory",
                "--verify",
            ],
            "",
        );
        assert!(out.contains("# verification: coherent"));
        assert!(run(&["sim".into(), "--tso".into(), "--directory".into()], "").is_err());
    }

    #[test]
    fn serve_synthesizes_and_verifies_streams() {
        let out = run_ok(
            &[
                "serve",
                "--streams",
                "2",
                "--instrs",
                "60",
                "--window",
                "64",
                "--jobs",
                "1",
            ],
            "",
        );
        assert!(out.contains("# stream 0 (sim:1): coherent"), "{out}");
        assert!(out.contains("# stream 1 (sim:2): coherent"), "{out}");
        assert!(out.contains("# serve: 2 stream(s), 0 incoherent"), "{out}");
        assert!(out.contains("ops/s sustained"), "{out}");
    }

    #[test]
    fn serve_surfaces_faulty_streams() {
        // A corrupt-fill fault in every synthesized stream: at least one
        // must verify incoherent, and serve must say so per stream and in
        // the aggregate line.
        let out = run_ok(
            &[
                "serve",
                "--streams",
                "3",
                "--instrs",
                "60",
                "--fault",
                "--window",
                "32",
            ],
            "",
        );
        assert!(out.contains("VIOLATION at address"), "{out}");
        assert!(!out.contains(" 0 incoherent"), "{out}");
    }

    #[test]
    fn serve_reads_stream_files_and_is_window_invariant() {
        // Write one v2 batch file and one faulty v3 event stream, then
        // serve both; verdicts must match batch verification regardless
        // of window and chunk size.
        let cap = vermem_sim::Machine::run(
            &vermem_sim::random_program(&vermem_sim::WorkloadConfig {
                cpus: 3,
                instrs_per_cpu: 20,
                addrs: 3,
                write_fraction: 0.5,
                rmw_fraction: 0.0,
                seed: 11,
            }),
            vermem_sim::MachineConfig {
                seed: 11,
                ..Default::default()
            },
        );
        let v2 = scratch("serve-v2");
        std::fs::write(&v2, vermem_trace::binary::encode_trace(&cap.trace)).unwrap();
        let v3 = scratch("serve-v3");
        std::fs::write(&v3, vermem_sim::event_stream_bytes(&cap).unwrap()).unwrap();
        let v2s = v2.to_string_lossy().to_string();
        let v3s = v3.to_string_lossy().to_string();
        for window in ["16", "unbounded"] {
            for chunk in ["7", "65536"] {
                let out = run_ok(
                    &["serve", &v2s, &v3s, "--window", window, "--chunk", chunk],
                    "",
                );
                assert!(
                    out.contains("# serve: 2 stream(s), 0 incoherent"),
                    "window {window} chunk {chunk}: {out}"
                );
            }
        }
        let _ = std::fs::remove_file(&v2);
        let _ = std::fs::remove_file(&v3);
    }

    #[test]
    fn serve_metrics_report_streaming_receipts() {
        let out = run_ok(
            &["serve", "--streams", "1", "--instrs", "40", "--metrics"],
            "",
        );
        assert!(out.contains("sustained_ops_per_sec"), "{out}");
        assert!(out.contains("peak_retained_windows"), "{out}");
        let e = run(&["serve".into(), "--bogus".into(), "7".into()], "").unwrap_err();
        assert!(e.0.contains("unknown flag"), "{}", e.0);
    }

    #[test]
    fn serve_obs_addr_starts_introspection_server() {
        // Ephemeral port: the bound address is printed on a '# obs:' line
        // and the run's verdict lines are unchanged by the server.
        let out = run_ok(
            &[
                "serve",
                "--streams",
                "1",
                "--instrs",
                "40",
                "--obs-addr",
                "127.0.0.1:0",
            ],
            "",
        );
        assert!(out.contains("# obs: serving on 127.0.0.1:"), "{out}");
        assert!(out.contains("# stream 0 (sim:1): coherent"), "{out}");
        assert!(out.contains("# serve: 1 stream(s), 0 incoherent"), "{out}");
        let e = run(
            &[
                "serve".into(),
                "--streams".into(),
                "1".into(),
                "--obs-addr".into(),
                "not-an-addr".into(),
            ],
            "",
        )
        .unwrap_err();
        assert!(e.0.contains("cannot bind obs server"), "{}", e.0);
    }

    #[test]
    fn serve_forensics_writes_jsonl_bundles() {
        let dir = scratch("forensics");
        let dirs = dir.to_string_lossy().to_string();
        let out = run_ok(
            &[
                "serve",
                "--streams",
                "3",
                "--instrs",
                "60",
                "--fault",
                "--window",
                "32",
                "--forensics",
                &dirs,
            ],
            "",
        );
        assert!(out.contains("VIOLATION at address"), "{out}");
        assert!(out.contains("# forensics: stream "), "{out}");
        let mut bundles = 0usize;
        for entry in std::fs::read_dir(&dir).expect("forensics dir exists") {
            let path = entry.unwrap().path();
            let doc = std::fs::read_to_string(&path).unwrap();
            for line in doc.lines() {
                let json = vermem_util::json::parse_json(line).expect("JSONL line parses");
                assert_eq!(
                    json.get("schema").and_then(|s| s.as_str()),
                    Some(vermem_coherence::FORENSIC_SCHEMA)
                );
                assert!(json.get("latency_us").is_some(), "{line}");
                assert!(json.get("window_ops").and_then(|w| w.as_arr()).is_some());
                bundles += 1;
            }
        }
        assert!(bundles > 0, "no forensic bundles written:\n{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_forensics_does_not_change_verdict_lines() {
        let dir = scratch("forensics-parity");
        let dirs = dir.to_string_lossy().to_string();
        let args_base = ["serve", "--streams", "2", "--instrs", "50", "--fault"];
        let plain = run_ok(&args_base, "");
        let mut with = args_base.to_vec();
        with.extend(["--forensics", &dirs]);
        let recorded = run_ok(&with, "");
        // Verdict lines are timing-free prefixes of the per-stream lines;
        // they must agree exactly with the recorder enabled.
        let verdicts = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.starts_with("# stream "))
                .map(|l| l.split(" — ").next().unwrap().to_string())
                .collect()
        };
        assert_eq!(verdicts(&plain), verdicts(&recorded));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_and_verify_accept_binary_trace_files() {
        // Satellite: one decode path — binary files (v2 batch and v3
        // event-stream framings) work everywhere text traces do.
        let violating = vermem_trace::fmt::parse_trace(VIOLATING).unwrap();
        let v2 = scratch("explain-v2");
        std::fs::write(&v2, vermem_trace::binary::encode_trace(&violating)).unwrap();
        let out = run_ok(&["explain", v2.to_str().unwrap()], "");
        assert!(out.contains("minimal incoherent core"), "{out}");
        let out = run_ok(&["verify", v2.to_str().unwrap()], "");
        assert!(out.contains("NOT coherent"), "{out}");
        let _ = std::fs::remove_file(&v2);

        // v3 temporal framing from a healthy capture round-trips too.
        let cap = vermem_sim::Machine::run(
            &vermem_sim::random_program(&vermem_sim::WorkloadConfig {
                cpus: 3,
                instrs_per_cpu: 15,
                addrs: 2,
                write_fraction: 0.5,
                rmw_fraction: 0.0,
                seed: 9,
            }),
            vermem_sim::MachineConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let v3 = scratch("explain-v3");
        std::fs::write(&v3, vermem_sim::event_stream_bytes(&cap).unwrap()).unwrap();
        let out = run_ok(&["explain", v3.to_str().unwrap()], "");
        assert!(out.contains("nothing to explain"), "{out}");
        let _ = std::fs::remove_file(&v3);
    }

    #[test]
    fn litmus_table() {
        let out = run_ok(&["litmus"], "");
        assert!(out.contains("SB"));
        assert!(out.contains("IRIW"));
        // The six-model table: RA and ARM-dob columns, with IRIW showing
        // the canonical split (RA yes, ARM-dob no).
        assert!(out.contains("ARM-dob"), "{out}");
        let iriw = out
            .lines()
            .find(|l| l.starts_with("IRIW "))
            .expect("IRIW row");
        assert!(iriw.trim_end().ends_with("yes       no"), "{iriw}");
    }

    #[test]
    fn sat_command_solves_dimacs() {
        let out = run_ok(&["sat", "-"], "p cnf 2 2\n1 2 0\n-1 2 0\n");
        assert!(out.contains("s SATISFIABLE"));
        assert!(out.contains("v "));
        let out = run_ok(&["sat", "-"], "p cnf 1 2\n1 0\n-1 0\n");
        assert!(out.contains("s UNSATISFIABLE"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&[], "").is_err());
        assert!(run(&["bogus".into()], "").is_err());
        assert!(run(&["verify".into()], "").is_err()); // missing file
        assert!(run(&["verify".into(), "-".into()], "P9: W(1)\n").is_err()); // bad trace
    }

    #[test]
    fn help_everywhere() {
        assert!(run_ok(&["help"], "").contains("USAGE"));
        assert!(run_ok(&["verify", "--help"], "").contains("USAGE"));
    }

    // ---- observability flags -----------------------------------------

    /// A write-contended trace that forces the backtracking search to do
    /// real work (so search counters and the depth histogram are non-empty).
    const CONTENDED: &str = "P0: W(0,1) R(0,2) W(0,3) R(0,1)\nP1: W(0,2) R(0,3) W(0,1) R(0,2)\n";

    /// Unique scratch path in the system temp dir (no tempfile crate).
    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "vermem-cli-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn metrics_json_last_line_parses() {
        let out = run_ok(&["verify", "-", "--metrics=json", "--jobs", "2"], CONTENDED);
        let last = out.lines().last().expect("output has lines");
        let json = vermem_util::json::parse_json(last).expect("metrics line is valid JSON");
        assert_eq!(
            json.get("schema").and_then(|s| s.as_str()),
            Some(vermem_util::obs::report::RUN_REPORT_SCHEMA)
        );
        let sections = json
            .get("sections")
            .and_then(|s| s.as_arr())
            .expect("sections array");
        let names: Vec<&str> = sections
            .iter()
            .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"verify"), "got sections {names:?}");
        assert!(names.contains(&"search"), "got sections {names:?}");
        assert!(names.contains(&"counters"), "got sections {names:?}");
    }

    #[test]
    fn metrics_text_mode_prefixes_hash() {
        let out = run_ok(&["verify", "-", "--metrics"], CONTENDED);
        assert!(
            out.lines().any(|l| l.starts_with("# counters:")),
            "expected a '# counters: ...' line in:\n{out}"
        );
        assert!(run(
            &["verify".into(), "-".into(), "--metrics=xml".into()],
            COHERENT
        )
        .is_err());
    }

    #[test]
    fn trace_out_writes_monotonic_chrome_trace() {
        let path = scratch("trace");
        let out = run_ok(
            &["sim", "--verify", "--trace-out", path.to_str().unwrap()],
            "",
        );
        assert!(out.contains(" ops,"), "sim output intact:\n{out}");
        let text = std::fs::read_to_string(&path).expect("trace file written");
        let _ = std::fs::remove_file(&path);
        let json = vermem_util::json::parse_json(&text).expect("trace file is valid JSON");
        let events = json
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty(), "expected at least one trace event");
        let ts: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("ts").and_then(|t| t.as_u64()))
            .collect();
        assert_eq!(ts.len(), events.len(), "every event carries ts");
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts monotonic: {ts:?}");
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("sim.run")));
    }

    #[test]
    fn no_obs_flags_emit_nothing() {
        let out = run_ok(&["verify", "-", "--jobs", "2"], COHERENT);
        assert!(!out.contains("\"schema\""), "no JSON report:\n{out}");
        assert!(!out.contains("# counters:"), "no text metrics:\n{out}");
        let out = run_ok(&["sim"], "");
        assert!(!out.contains("\"schema\""), "no JSON report:\n{out}");
    }

    #[test]
    fn serve_hot_path_flag_is_checked() {
        // `--hot-path` itself parses (both spellings of the ablation) ...
        let out = run_ok(
            &[
                "serve",
                "--streams",
                "1",
                "--instrs",
                "20",
                "--hot-path",
                "legacy",
            ],
            "",
        );
        assert!(out.contains("stream"), "{out}");
        // ... bad values are rejected ...
        let e = run(&["serve".into(), "--hot-path".into(), "bogus".into()], "")
            .expect_err("--hot-path bogus must fail");
        assert!(e.0.contains("invalid --hot-path"), "{}", e.0);
        // ... and an unknown flag alongside it still fails the flag check
        // instead of slipping through.
        let e = run(
            &[
                "serve".into(),
                "--hot-path".into(),
                "dense".into(),
                "--hotpath".into(),
                "dense".into(),
            ],
            "",
        )
        .expect_err("--hotpath (typo) must fail");
        assert!(e.0.contains("unknown flag --hotpath"), "{}", e.0);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        for cmd in [
            vec!["sim", "--bogus"],
            vec!["sim", "--bogus", "3"],
            vec!["verify", "-", "--bogus"],
            vec!["sat", "-", "--metrics"],
            // Every remaining command routes through expect_flags too.
            vec!["sc", "-", "--bogus", "1"],
            vec!["classify", "-", "--bogus", "1"],
            vec!["explain", "-", "--bogus", "1"],
            vec!["gen", "--procs", "1", "--ops", "1", "--bogus", "1"],
            vec!["inject", "-", "--kind", "stale-read", "--bogus", "1"],
            vec!["reduce", "-", "--bogus", "1"],
            vec!["serve", "--bogus", "1"],
            vec!["litmus", "--bogus", "1"],
        ] {
            let args: Vec<String> = cmd.iter().map(|s| s.to_string()).collect();
            let e = run(&args, COHERENT).expect_err(&format!("{cmd:?} should fail"));
            // A bare trailing `--bogus` fails at parse time ("requires a
            // value"); a valued one reaches the per-command flag check.
            assert!(
                e.0.contains("unknown flag") || e.0.contains("requires a value"),
                "{cmd:?}: {}",
                e.0
            );
        }
    }
}
