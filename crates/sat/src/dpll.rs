//! A plain DPLL solver (unit propagation + pure-literal elimination +
//! chronological backtracking). Kept as a correctness baseline for
//! differential testing against the CDCL solver, and as the comparison
//! point for the solver benchmarks.

use crate::cnf::{Cnf, Model, SatResult};
use crate::lit::{LBool, Lit, Var};

/// Solve a CNF formula with basic DPLL.
pub fn solve_dpll(cnf: &Cnf) -> SatResult {
    let n = cnf.num_vars() as usize;
    let mut assign = vec![LBool::Undef; n];
    let clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    if clauses.iter().any(|c| c.is_empty()) {
        return SatResult::Unsat;
    }
    if dpll(&clauses, &mut assign) {
        let values = assign.iter().map(|&a| matches!(a, LBool::True)).collect();
        SatResult::Sat(Model::from_values(values))
    } else {
        SatResult::Unsat
    }
}

/// Clause status under a partial assignment.
enum Status {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, rest false.
    Unit(Lit),
    /// Two or more unassigned literals.
    Unresolved,
}

fn clause_status(clause: &[Lit], assign: &[LBool]) -> Status {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &lit in clause {
        match assign[lit.var().index()].of_lit(lit) {
            LBool::True => return Status::Satisfied,
            LBool::False => {}
            LBool::Undef => {
                unassigned = Some(lit);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => Status::Conflict,
        1 => Status::Unit(unassigned.expect("counted")),
        _ => Status::Unresolved,
    }
}

fn dpll(clauses: &[Vec<Lit>], assign: &mut [LBool]) -> bool {
    // Unit propagation to fixpoint; record what we set to undo on failure.
    let mut trail: Vec<Var> = Vec::new();
    let undo = |assign: &mut [LBool], trail: &[Var]| {
        for &v in trail {
            assign[v.index()] = LBool::Undef;
        }
    };
    loop {
        let mut changed = false;
        for clause in clauses {
            match clause_status(clause, assign) {
                Status::Conflict => {
                    undo(assign, &trail);
                    return false;
                }
                Status::Unit(lit) => {
                    assign[lit.var().index()] = LBool::from_bool(lit.is_pos());
                    trail.push(lit.var());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Pure-literal elimination: a variable appearing with only one polarity
    // in not-yet-satisfied clauses can be set to that polarity.
    let mut pos_seen = vec![false; assign.len()];
    let mut neg_seen = vec![false; assign.len()];
    for clause in clauses {
        if matches!(clause_status(clause, assign), Status::Satisfied) {
            continue;
        }
        for &lit in clause {
            if assign[lit.var().index()] == LBool::Undef {
                if lit.is_pos() {
                    pos_seen[lit.var().index()] = true;
                } else {
                    neg_seen[lit.var().index()] = true;
                }
            }
        }
    }
    for v in 0..assign.len() {
        if assign[v] == LBool::Undef && (pos_seen[v] ^ neg_seen[v]) {
            assign[v] = LBool::from_bool(pos_seen[v]);
            trail.push(Var(v as u32));
        }
    }

    // Pick the first unassigned variable occurring in an unresolved clause.
    let mut branch = None;
    'outer: for clause in clauses {
        if let Status::Unresolved = clause_status(clause, assign) {
            for &lit in clause {
                if assign[lit.var().index()] == LBool::Undef {
                    branch = Some(lit.var());
                    break 'outer;
                }
            }
        }
    }

    let v = match branch {
        None => {
            // Every clause satisfied (or none unresolved): SAT.
            let all_ok = clauses
                .iter()
                .all(|c| matches!(clause_status(c, assign), Status::Satisfied));
            if all_ok {
                return true;
            }
            undo(assign, &trail);
            return false;
        }
        Some(v) => v,
    };

    for &value in &[true, false] {
        assign[v.index()] = LBool::from_bool(value);
        if dpll(clauses, assign) {
            return true;
        }
        assign[v.index()] = LBool::Undef;
    }
    undo(assign, &trail);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    #[test]
    fn trivial_cases() {
        assert!(solve_dpll(&Cnf::new()).is_sat());
        assert!(solve_dpll(&cnf(&[&[1]])).is_sat());
        assert!(!solve_dpll(&cnf(&[&[1], &[-1]])).is_sat());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut f = Cnf::new();
        f.add_clause([]);
        assert!(!solve_dpll(&f).is_sat());
    }

    #[test]
    fn model_satisfies_formula() {
        let f = cnf(&[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3]]);
        match solve_dpll(&f) {
            SatResult::Sat(m) => assert_eq!(f.eval(&m), Some(true)),
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        let v = |i: i64, j: i64| 2 * (i - 1) + j;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 1..=3 {
            clauses.push(vec![v(i, 1), v(i, 2)]);
        }
        for j in 1..=2 {
            for i1 in 1..=3 {
                for i2 in (i1 + 1)..=3 {
                    clauses.push(vec![-v(i1, j), -v(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(!solve_dpll(&cnf(&refs)).is_sat());
    }

    #[test]
    fn pure_literal_suffices() {
        // x appears only positively; formula satisfiable by pure-literal rule.
        let f = cnf(&[&[1, 2], &[1, 3]]);
        assert!(solve_dpll(&f).is_sat());
    }
}
