//! CNF formulas: clause collections with a declared variable count, plus a
//! model representation and evaluation.

use crate::lit::{Lit, Var};
use std::fmt;

/// A formula in conjunctive normal form.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty (trivially satisfiable) formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocate `n` fresh variables, returned in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Ensure at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Add a clause (a disjunction of literals). Variables are implicitly
    /// declared as needed. An empty clause makes the formula unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            self.reserve_vars(l.var().0 + 1);
        }
        self.clauses.push(clause);
    }

    /// Add the implication `guards → consequent` as a clause
    /// (`¬g₁ ∨ … ∨ ¬gₙ ∨ consequent`). With no guards this asserts the
    /// consequent outright.
    pub fn add_impl(&mut self, guards: impl IntoIterator<Item = Lit>, consequent: Lit) {
        let lits: Vec<Lit> = guards
            .into_iter()
            .map(|g| !g)
            .chain(std::iter::once(consequent))
            .collect();
        self.add_clause(lits);
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluate under a complete assignment (indexed by variable).
    /// Returns `None` if the model is too short for some variable used.
    pub fn eval(&self, model: &Model) -> Option<bool> {
        for clause in &self.clauses {
            let mut sat = false;
            for &lit in clause {
                if model.value(lit.var())? == lit.is_pos() {
                    sat = true;
                    break;
                }
            }
            if !sat {
                return Some(false);
            }
        }
        Some(true)
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cnf[{} vars, {} clauses]",
            self.num_vars,
            self.clauses.len()
        )?;
        for c in &self.clauses {
            writeln!(f, "  {c:?}")?;
        }
        Ok(())
    }
}

/// A complete truth assignment (a satisfying model).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Build from per-variable values (index = variable number).
    pub fn from_values(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// The value of a variable, or `None` if out of range.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values.get(var.index()).copied()
    }

    /// The truth value of a literal.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v == lit.is_pos())
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values, indexed by variable number.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Model[")?;
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "x{i}={}", if v { 1 } else { 0 })?;
        }
        write!(f, "]")
    }
}

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_allocation() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        assert_eq!((a, b), (Var(0), Var(1)));
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn add_clause_reserves_vars() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(4).pos()]);
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn eval_satisfied_and_falsified() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        cnf.add_clause([a.neg()]);
        let good = Model::from_values(vec![false, true]);
        let bad = Model::from_values(vec![true, true]);
        assert_eq!(cnf.eval(&good), Some(true));
        assert_eq!(cnf.eval(&bad), Some(false));
    }

    #[test]
    fn eval_short_model_is_none() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.pos()]);
        assert_eq!(cnf.eval(&Model::default()), None);
    }

    #[test]
    fn empty_clause_falsifies_everything() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert_eq!(cnf.eval(&Model::default()), Some(false));
    }

    #[test]
    fn add_impl_is_the_guarded_clause() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_impl([a.pos(), b.neg()], c.pos());
        assert_eq!(cnf.clauses(), [vec![a.neg(), b.pos(), c.pos()]]);
        cnf.add_impl([], c.neg());
        assert_eq!(cnf.clauses()[1], vec![c.neg()]);
    }

    #[test]
    fn model_lit_value() {
        let m = Model::from_values(vec![true, false]);
        assert_eq!(m.lit_value(Var(0).pos()), Some(true));
        assert_eq!(m.lit_value(Var(0).neg()), Some(false));
        assert_eq!(m.lit_value(Var(1).neg()), Some(true));
        assert_eq!(m.lit_value(Var(2).pos()), None);
    }
}
