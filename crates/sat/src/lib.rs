//! # vermem-sat
//!
//! A from-scratch SAT-solving substrate for the `vermem` verifier suite.
//!
//! The paper (*The Complexity of Verifying Memory Coherence and
//! Consistency*, Cantin, Lipasti & Smith) proves VMC NP-complete by
//! reduction *from* SAT; in practice one also solves NP-complete VMC
//! instances by reducing *to* SAT. Both directions need a real solver:
//!
//! * [`CdclSolver`] — conflict-driven clause learning with two-watched
//!   literals, first-UIP learning, VSIDS + phase saving, Luby restarts and
//!   learnt-clause database reduction;
//! * [`solve_dpll`] — a plain DPLL baseline for differential testing and
//!   benchmarking;
//! * [`Cnf`] / [`Formula`] — CNF construction and Tseitin encoding;
//! * [`dimacs`] — standard DIMACS CNF I/O;
//! * [`random`] — random and forced-satisfiable k-SAT generators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cnf;
pub mod dimacs;
mod dpll;
pub mod drat;
mod formula;
mod heap;
mod lit;
pub mod random;
pub mod simplify;
mod solver;

pub use cnf::{Cnf, Model, SatResult};
pub use dpll::solve_dpll;
pub use drat::{check_unsat_proof, Proof, ProofCheck};
pub use formula::Formula;
pub use lit::{LBool, Lit, Var};
pub use simplify::{preprocess, solve_with_preprocessing, Simplified};
pub use solver::{solve_cdcl, CdclSolver, SolverStats};
