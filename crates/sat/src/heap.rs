//! Indexed max-heap over variables ordered by activity, for VSIDS decision
//! selection. Supports O(log n) insert/remove-max and O(log n) priority
//! increase of an arbitrary element (required when conflict analysis bumps
//! the activity of a variable already in the heap).

use crate::lit::Var;

/// Max-heap of variables keyed by an external activity array.
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// position[v] = index of v in `heap`, or usize::MAX if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure capacity for variables `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        if self.position.len() < n {
            self.position.resize(n, ABSENT);
        }
    }

    /// True if `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.position.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    /// Number of queued variables.
    #[allow(dead_code)] // part of the heap API, exercised by unit tests
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no variables are queued.
    #[allow(dead_code)] // part of the heap API, exercised by unit tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert `v` (no-op if present). `activity` keys the ordering.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        let i = self.heap.len() - 1;
        self.position[v.index()] = i;
        self.sift_up(i, activity);
    }

    /// Remove and return the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.position[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restore heap order after `v`'s activity increased.
    pub fn increased(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    /// Rebuild the heap after a global activity rescale (order unchanged by
    /// uniform scaling, so this is a no-op kept for clarity) or after
    /// arbitrary key changes.
    pub fn rebuild(&mut self, activity: &[f64]) {
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    fn key(&self, i: usize, activity: &[f64]) -> f64 {
        activity[self.heap[i].index()]
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(i, activity) > self.key(parent, activity) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len() && self.key(l, activity) > self.key(largest, activity) {
                largest = l;
            }
            if r < self.heap.len() && self.key(r, activity) > self.key(largest, activity) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = i;
        self.position[self.heap[j].index()] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![3.0, 1.0, 4.0, 1.5, 9.0];
        let mut h = VarHeap::new();
        for v in 0..5 {
            h.insert(Var(v), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var(0), &activity);
        h.insert(Var(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn increased_restores_order() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for v in 0..3 {
            h.insert(Var(v), &activity);
        }
        activity[0] = 10.0;
        h.increased(Var(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        assert!(!h.contains(Var(0)));
        h.insert(Var(0), &activity);
        assert!(h.contains(Var(0)));
        h.pop_max(&activity);
        assert!(!h.contains(Var(0)));
    }

    #[test]
    fn interleaved_insert_pop() {
        let activity = vec![5.0, 1.0, 3.0];
        let mut h = VarHeap::new();
        h.insert(Var(1), &activity);
        h.insert(Var(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        h.insert(Var(2), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert_eq!(h.pop_max(&activity), Some(Var(1)));
        assert_eq!(h.pop_max(&activity), None);
    }
}
