//! Propositional formula AST and Tseitin CNF encoding.
//!
//! The reductions crate builds SAT instances structurally (variables and
//! clauses over them); this module additionally supports arbitrary boolean
//! circuits for users who want to check satisfiability of non-CNF formulas.

use crate::cnf::{Cnf, Model};
use crate::lit::{Lit, Var};

/// A propositional formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// A constant.
    Const(bool),
    /// A variable.
    Var(Var),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
}

impl Formula {
    /// Variable leaf.
    pub fn var(v: Var) -> Formula {
        Formula::Var(v)
    }

    /// Negate.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Binary/then-some conjunction.
    pub fn and(forms: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(forms.into_iter().collect())
    }

    /// Binary/then-some disjunction.
    pub fn or(forms: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(forms.into_iter().collect())
    }

    /// Implication sugar: `self → rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::or([self.not(), rhs])
    }

    /// Biconditional sugar: `self ↔ rhs`.
    pub fn iff(self, rhs: Formula) -> Formula {
        Formula::and([self.clone().implies(rhs.clone()), rhs.implies(self)])
    }

    /// Highest variable index used, plus one (0 if no variables).
    pub fn num_vars(&self) -> u32 {
        match self {
            Formula::Const(_) => 0,
            Formula::Var(v) => v.0 + 1,
            Formula::Not(f) => f.num_vars(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::num_vars).max().unwrap_or(0)
            }
        }
    }

    /// Evaluate under a model (must cover all variables).
    pub fn eval(&self, model: &Model) -> Option<bool> {
        Some(match self {
            Formula::Const(b) => *b,
            Formula::Var(v) => model.value(*v)?,
            Formula::Not(f) => !f.eval(model)?,
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(model)? {
                        return Some(false);
                    }
                }
                true
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(model)? {
                        return Some(true);
                    }
                }
                false
            }
        })
    }

    /// Tseitin-encode into an equisatisfiable CNF. Original variables keep
    /// their indices; gate variables are allocated above them, so a model of
    /// the CNF restricted to `0..self.num_vars()` is a model of the formula.
    pub fn to_cnf(&self) -> Cnf {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(self.num_vars());
        match self.encode(&mut cnf) {
            Enc::Const(true) => {}
            Enc::Const(false) => cnf.add_clause([]),
            Enc::Lit(root) => cnf.add_clause([root]),
        }
        cnf
    }

    fn encode(&self, cnf: &mut Cnf) -> Enc {
        match self {
            Formula::Const(b) => Enc::Const(*b),
            Formula::Var(v) => Enc::Lit(v.pos()),
            Formula::Not(f) => match f.encode(cnf) {
                Enc::Const(b) => Enc::Const(!b),
                Enc::Lit(l) => Enc::Lit(!l),
            },
            Formula::And(fs) => {
                let mut lits = Vec::with_capacity(fs.len());
                for f in fs {
                    match f.encode(cnf) {
                        Enc::Const(false) => return Enc::Const(false),
                        Enc::Const(true) => {}
                        Enc::Lit(l) => lits.push(l),
                    }
                }
                match lits.len() {
                    0 => Enc::Const(true),
                    1 => Enc::Lit(lits[0]),
                    _ => {
                        let g = cnf.new_var().pos();
                        // g → l_i for each i; (∧ l_i) → g.
                        for &l in &lits {
                            cnf.add_clause([!g, l]);
                        }
                        let mut big: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                        big.push(g);
                        cnf.add_clause(big);
                        Enc::Lit(g)
                    }
                }
            }
            Formula::Or(fs) => {
                let mut lits = Vec::with_capacity(fs.len());
                for f in fs {
                    match f.encode(cnf) {
                        Enc::Const(true) => return Enc::Const(true),
                        Enc::Const(false) => {}
                        Enc::Lit(l) => lits.push(l),
                    }
                }
                match lits.len() {
                    0 => Enc::Const(false),
                    1 => Enc::Lit(lits[0]),
                    _ => {
                        let g = cnf.new_var().pos();
                        // l_i → g for each i; g → (∨ l_i).
                        for &l in &lits {
                            cnf.add_clause([!l, g]);
                        }
                        let mut big = lits.clone();
                        big.push(!g);
                        cnf.add_clause(big);
                        Enc::Lit(g)
                    }
                }
            }
        }
    }
}

enum Enc {
    Const(bool),
    Lit(Lit),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_cdcl;

    fn v(i: u32) -> Formula {
        Formula::Var(Var(i))
    }

    #[test]
    fn tseitin_sat_examples() {
        // (x0 ∧ ¬x1) ∨ x2
        let f = Formula::or([Formula::and([v(0), v(1).not()]), v(2)]);
        let cnf = f.to_cnf();
        let r = solve_cdcl(&cnf);
        let m = r.model().expect("satisfiable");
        assert_eq!(f.eval(m), Some(true));
    }

    #[test]
    fn tseitin_unsat_examples() {
        // x0 ∧ ¬x0
        let f = Formula::and([v(0), v(0).not()]);
        assert!(!solve_cdcl(&f.to_cnf()).is_sat());
        // (x0 ↔ x1) ∧ (x0 ↔ ¬x1)
        let g = Formula::and([v(0).iff(v(1)), v(0).iff(v(1).not())]);
        assert!(!solve_cdcl(&g.to_cnf()).is_sat());
    }

    #[test]
    fn constants_fold() {
        assert!(solve_cdcl(&Formula::Const(true).to_cnf()).is_sat());
        assert!(!solve_cdcl(&Formula::Const(false).to_cnf()).is_sat());
        // x ∨ true == true
        let f = Formula::or([v(0), Formula::Const(true)]);
        assert_eq!(f.to_cnf().num_clauses(), 0);
    }

    #[test]
    fn implication_and_iff() {
        // (x0 → x1) ∧ x0 ∧ ¬x1 is unsat.
        let f = Formula::and([v(0).implies(v(1)), v(0), v(1).not()]);
        assert!(!solve_cdcl(&f.to_cnf()).is_sat());
    }

    #[test]
    fn exhaustive_equivalence_small() {
        // For a small circuit, CNF satisfiability restricted to original
        // vars must match brute-force evaluation.
        let f = Formula::and([
            Formula::or([v(0), v(1), v(2).not()]),
            Formula::or([v(0).not(), v(2)]),
            v(1).iff(v(2)),
        ]);
        let n = f.num_vars();
        let mut truth_sat = false;
        for bits in 0..(1u32 << n) {
            let model = Model::from_values((0..n).map(|i| bits >> i & 1 == 1).collect());
            if f.eval(&model) == Some(true) {
                truth_sat = true;
            }
        }
        let cnf_result = solve_cdcl(&f.to_cnf());
        assert_eq!(cnf_result.is_sat(), truth_sat);
        if let Some(m) = cnf_result.model() {
            // Restriction of the CNF model to original vars satisfies f.
            let restricted = Model::from_values((0..n as usize).map(|i| m.values()[i]).collect());
            assert_eq!(f.eval(&restricted), Some(true));
        }
    }

    #[test]
    fn empty_connectives() {
        assert!(solve_cdcl(&Formula::And(vec![]).to_cnf()).is_sat());
        assert!(!solve_cdcl(&Formula::Or(vec![]).to_cnf()).is_sat());
    }
}
