//! Conflict-driven clause learning (CDCL) SAT solver.
//!
//! A from-scratch MiniSat-style solver: two-watched-literal propagation,
//! first-UIP conflict analysis with local clause minimization, VSIDS
//! decision heuristic with phase saving, Luby restarts, and activity-based
//! learnt-clause database reduction.

use crate::cnf::{Cnf, Model, SatResult};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};

const NO_REASON: u32 = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

/// Runtime counters, exposed for benchmarking and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt.
    pub learned: u64,
    /// Learnt clauses deleted by database reduction.
    pub removed: u64,
}

impl SolverStats {
    /// Render as a `sat` section of the unified run report (the one
    /// shared pretty-printer in [`vermem_util::obs::report`]).
    pub fn to_report(&self) -> vermem_util::obs::report::RunReportSection {
        vermem_util::obs::report::RunReportSection::new("sat")
            .with("decisions", self.decisions)
            .with("propagations", self.propagations)
            .with("conflicts", self.conflicts)
            .with("restarts", self.restarts)
            .with("learned", self.learned)
            .with("removed", self.removed)
    }
}

/// A CDCL SAT solver instance. Clauses are added up front (or between
/// `solve` calls at decision level zero); `solve` is incremental in the
/// sense that learnt clauses persist across calls.
pub struct CdclSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // indexed by literal; clause refs watching ¬lit
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    cla_inc: f64,
    seen: Vec<bool>,
    ok: bool,
    num_vars: u32,
    num_learnt: usize,
    proof: Option<Vec<Vec<Lit>>>,
    stats: SolverStats,
}

impl CdclSolver {
    /// Create a solver for the given formula.
    pub fn new(cnf: &Cnf) -> Self {
        let n = cnf.num_vars() as usize;
        let mut s = CdclSolver {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![LBool::Undef; n],
            level: vec![0; n],
            reason: vec![NO_REASON; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            heap: VarHeap::new(),
            phase: vec![false; n],
            cla_inc: 1.0,
            seen: vec![false; n],
            ok: true,
            num_vars: cnf.num_vars(),
            num_learnt: 0,
            proof: None,
            stats: SolverStats::default(),
        };
        s.heap.grow_to(n);
        for v in 0..n {
            s.heap.insert(Var(v as u32), &s.activity);
        }
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
            if !s.ok {
                break;
            }
        }
        s
    }

    /// Current statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Record every learnt clause so an UNSAT answer can be independently
    /// validated with [`crate::drat::check_unsat_proof`]. Enable before
    /// calling [`CdclSolver::solve`].
    pub fn enable_proof_logging(&mut self) {
        self.proof.get_or_insert_with(Vec::new);
    }

    /// Take the recorded proof (learnt clauses in derivation order; ends
    /// with the empty clause on UNSAT). `None` if logging was not enabled.
    pub fn take_proof(&mut self) -> Option<Vec<Vec<Lit>>> {
        self.proof.take()
    }

    fn log_lemma(&mut self, lemma: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.push(lemma.to_vec());
        }
    }

    #[inline]
    fn value(&self, lit: Lit) -> LBool {
        self.assign[lit.var().index()].of_lit(lit)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add an original clause at decision level zero. Performs the standard
    /// normalizations: drop duplicate literals, drop satisfied clauses, drop
    /// tautologies, strip level-zero-false literals.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        // Tautology: x and ¬x adjacent after sorting by packed index.
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return;
        }
        let mut out = Vec::with_capacity(clause.len());
        for lit in clause {
            debug_assert!(lit.var().0 < self.num_vars, "literal beyond declared vars");
            match self.value(lit) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => {}     // drop falsified literal
                LBool::Undef => out.push(lit),
            }
        }
        match out.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(out[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach(out, false);
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let w0 = !lits[0];
        let w1 = !lits[1];
        if learnt {
            self.num_learnt += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        self.watches[w0.index()].push(cref);
        self.watches[w1.index()].push(cref);
        cref
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assign[v] = LBool::from_bool(lit.is_pos());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the conflicting clause ref, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = Vec::with_capacity(ws.len());
            let mut conflict = None;

            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                i += 1;
                let clause = &mut self.clauses[cref as usize];
                if clause.deleted {
                    continue;
                }
                // Normalize: the falsified watched literal (¬p) at slot 1.
                if clause.lits[0] == !p {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], !p);
                let first = clause.lits[0];
                if self.assign[first.var().index()].of_lit(first) == LBool::True {
                    kept.push(cref);
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..clause.lits.len() {
                    let lk = clause.lits[k];
                    if self.assign[lk.var().index()].of_lit(lk) != LBool::False {
                        clause.lits.swap(1, k);
                        let new_watch = !clause.lits[1];
                        self.watches[new_watch.index()].push(cref);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                kept.push(cref);
                if self.assign[first.var().index()].of_lit(first) == LBool::False {
                    conflict = Some(cref);
                    kept.extend_from_slice(&ws[i..]);
                    break;
                }
                self.enqueue(first, cref);
            }

            ws.clear();
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = kept;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.heap.rebuild(&self.activity);
        }
        self.heap.increased(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let inc = self.cla_inc;
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc = inc * 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // slot for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            // For reason clauses the implied literal sits at slot 0 and is
            // skipped; the initial conflict clause is processed in full.
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next seen literal from the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, NO_REASON);
        }

        // Local minimization: a non-asserting literal is redundant if its
        // reason clause's other literals are all seen or at level zero.
        let mut keep = vec![true; learnt.len()];
        for (i, &lit) in learnt.iter().enumerate().skip(1) {
            let r = self.reason[lit.var().index()];
            if r == NO_REASON {
                continue;
            }
            let redundant = self.clauses[r as usize]
                .lits
                .iter()
                .filter(|&&q| q != !lit)
                .all(|&q| self.seen[q.var().index()] || self.level[q.var().index()] == 0);
            if redundant {
                keep[i] = false;
            }
        }
        let mut minimized = Vec::with_capacity(learnt.len());
        for (i, &lit) in learnt.iter().enumerate() {
            if keep[i] {
                minimized.push(lit);
            }
        }

        // Clear seen marks.
        for &lit in &learnt {
            self.seen[lit.var().index()] = false;
        }
        // The asserting literal's var was already cleared in the loop, and
        // literals popped from `learnt` by minimization were cleared above
        // since we iterate the unminimized clause.

        // Compute backtrack level: second-highest level in the clause, and
        // place a literal of that level at slot 1 (watching invariant).
        let bt_level = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, bt_level)
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.phase[v.index()] = lit.is_pos();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = NO_REASON;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut learnts: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&c| {
                let cl = &self.clauses[c as usize];
                cl.learnt && !cl.deleted && cl.lits.len() > 2
            })
            .collect();
        learnts.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnts
            .iter()
            .map(|&c| {
                let lit0 = self.clauses[c as usize].lits[0];
                self.reason[lit0.var().index()] == c
                    && self.assign[lit0.var().index()] != LBool::Undef
            })
            .collect();
        let target = learnts.len() / 2;
        let mut removed = 0;
        for (i, &cref) in learnts.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[i] {
                continue;
            }
            self.detach(cref);
            removed += 1;
        }
        self.stats.removed += removed as u64;
    }

    fn detach(&mut self, cref: u32) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            (!c.lits[0], !c.lits[1])
        };
        self.watches[w0.index()].retain(|&c| c != cref);
        self.watches[w1.index()].retain(|&c| c != cref);
        let c = &mut self.clauses[cref as usize];
        if c.learnt {
            self.num_learnt -= 1;
        }
        c.deleted = true;
        c.lits = Vec::new();
        c.lits.shrink_to_fit();
    }

    /// Luby restart sequence: 1,1,2,1,1,2,4,... (MiniSat's formulation).
    fn luby(mut x: u64) -> u64 {
        let (mut size, mut seq) = (1u64, 0u64);
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1 << seq
    }

    /// Solve to completion.
    ///
    /// With observability enabled, the call is wrapped in a `sat.solve`
    /// span and the *delta* of [`SolverStats`] accumulated by this call
    /// is batch-flushed into the metrics registry (the solver is
    /// incremental, so flushing deltas keeps repeated `solve` calls
    /// additive in the registry).
    pub fn solve(&mut self) -> SatResult {
        let mut span = vermem_util::span!("sat.solve");
        let before = self.stats;
        let result = self
            .solve_limited(u64::MAX)
            .expect("unlimited solve always completes");
        if span.is_recording() {
            use vermem_util::obs;
            let d = SolverStats {
                decisions: self.stats.decisions - before.decisions,
                propagations: self.stats.propagations - before.propagations,
                conflicts: self.stats.conflicts - before.conflicts,
                restarts: self.stats.restarts - before.restarts,
                learned: self.stats.learned - before.learned,
                removed: self.stats.removed - before.removed,
            };
            span.arg("decisions", d.decisions);
            span.arg("conflicts", d.conflicts);
            obs::counter_add("sat.decisions", d.decisions);
            obs::counter_add("sat.propagations", d.propagations);
            obs::counter_add("sat.conflicts", d.conflicts);
            obs::counter_add("sat.restarts", d.restarts);
            obs::counter_add("sat.learned", d.learned);
            obs::counter_add("sat.removed", d.removed);
        }
        result
    }

    /// Solve with a conflict budget; returns `None` if the budget is
    /// exhausted before an answer is reached.
    pub fn solve_limited(&mut self, max_conflicts: u64) -> Option<SatResult> {
        if !self.ok {
            // The input already conflicts at level zero: the empty clause
            // follows from the formula by unit propagation alone.
            self.log_lemma(&[]);
            return Some(SatResult::Unsat);
        }
        if self.propagate().is_some() {
            self.ok = false;
            self.log_lemma(&[]);
            return Some(SatResult::Unsat);
        }

        let mut restart_round: u64 = 0;
        let mut conflicts_this_round: u64 = 0;
        let mut restart_limit = 100 * Self::luby(0);
        let mut max_learnts = (self.clauses.len() as f64 * 0.4).max(1000.0);
        let mut total_conflicts: u64 = 0;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                total_conflicts += 1;
                conflicts_this_round += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.log_lemma(&[]);
                    return Some(SatResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.log_lemma(&learnt);
                self.cancel_until(bt);
                self.stats.learned += 1;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let lit0 = learnt[0];
                    let cref = self.attach(learnt, true);
                    self.bump_clause(cref);
                    self.enqueue(lit0, cref);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;

                if total_conflicts >= max_conflicts {
                    self.cancel_until(0);
                    return None;
                }
                if conflicts_this_round >= restart_limit {
                    restart_round += 1;
                    conflicts_this_round = 0;
                    restart_limit = 100 * Self::luby(restart_round);
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
                if self.num_learnt as f64 > max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    max_learnts *= 1.1;
                }
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model = Model::from_values(
                            (0..self.num_vars as usize)
                                .map(|v| match self.assign[v] {
                                    LBool::True => true,
                                    LBool::False => false,
                                    LBool::Undef => self.phase[v],
                                })
                                .collect(),
                        );
                        self.cancel_until(0);
                        return Some(SatResult::Sat(model));
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(v.lit(self.phase[v.index()]), NO_REASON);
                    }
                }
            }
        }
    }
}

/// Solve a CNF formula with the CDCL solver.
pub fn solve_cdcl(cnf: &Cnf) -> SatResult {
    CdclSolver::new(cnf).solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(code: i64) -> Lit {
        Lit::from_dimacs(code)
    }

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| lit(x)));
        }
        f
    }

    fn assert_sat(f: &Cnf) {
        match solve_cdcl(f) {
            SatResult::Sat(m) => assert_eq!(f.eval(&m), Some(true), "model must satisfy"),
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    fn assert_unsat(f: &Cnf) {
        assert_eq!(solve_cdcl(f), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        assert_sat(&Cnf::new());
    }

    #[test]
    fn single_unit_clause() {
        assert_sat(&cnf(&[&[1]]));
    }

    #[test]
    fn contradictory_units_unsat() {
        assert_unsat(&cnf(&[&[1], &[-1]]));
    }

    #[test]
    fn empty_clause_unsat() {
        let mut f = Cnf::new();
        f.add_clause([]);
        assert_unsat(&f);
    }

    #[test]
    fn simple_implication_chain() {
        // x1, x1→x2, x2→x3, check x3 forced true.
        let f = cnf(&[&[1], &[-1, 2], &[-2, 3]]);
        match solve_cdcl(&f) {
            SatResult::Sat(m) => {
                assert_eq!(m.value(Var(2)), Some(true));
            }
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn all_binary_clauses_unsat() {
        // (a∨b)(a∨¬b)(¬a∨b)(¬a∨¬b) is unsat.
        assert_unsat(&cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. i∈{1..3}, j∈{1,2}.
        // var(i,j) = 2(i-1)+j
        let v = |i: i64, j: i64| 2 * (i - 1) + j;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 1..=3 {
            clauses.push(vec![v(i, 1), v(i, 2)]);
        }
        for j in 1..=2 {
            for i1 in 1..=3 {
                for i2 in (i1 + 1)..=3 {
                    clauses.push(vec![-v(i1, j), -v(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert_unsat(&cnf(&refs));
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let holes = 3i64;
        let v = |i: i64, j: i64| holes * (i - 1) + j;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 1..=holes + 1 {
            clauses.push((1..=holes).map(|j| v(i, j)).collect());
        }
        for j in 1..=holes {
            for i1 in 1..=holes + 1 {
                for i2 in (i1 + 1)..=holes + 1 {
                    clauses.push(vec![-v(i1, j), -v(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert_unsat(&cnf(&refs));
    }

    #[test]
    fn tautological_clause_ignored() {
        let f = cnf(&[&[1, -1], &[2]]);
        assert_sat(&f);
    }

    #[test]
    fn duplicate_literals_deduped() {
        assert_sat(&cnf(&[&[1, 1, 1], &[-1, -1, 2]]));
    }

    #[test]
    fn conflict_budget_returns_none_or_answer() {
        // A formula needing some search; budget of 0 conflicts may bail.
        let f = cnf(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[-1, 2, 3]]);
        let mut s = CdclSolver::new(&f);
        match s.solve_limited(u64::MAX) {
            Some(SatResult::Sat(m)) => assert_eq!(f.eval(&m), Some(true)),
            Some(SatResult::Unsat) => panic!("formula is satisfiable"),
            None => unreachable!(),
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(CdclSolver::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_populated() {
        let f = cnf(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]]);
        let mut s = CdclSolver::new(&f);
        let r = s.solve();
        assert!(r.is_sat());
        assert!(s.stats().propagations > 0);
    }
}
