//! DIMACS CNF reading and writing.

use crate::cnf::Cnf;
use crate::lit::Lit;
use std::fmt::Write as _;

/// A DIMACS parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parse a DIMACS CNF file. The `p cnf <vars> <clauses>` header is required;
/// comment lines (`c ...`) are skipped; clauses may span lines and are
/// terminated by `0`.
pub fn parse_dimacs(input: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new();
    let mut header: Option<(u32, usize)> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if header.is_some() {
                return Err(DimacsError {
                    line: lineno,
                    message: "duplicate header".into(),
                });
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: lineno,
                    message: format!("malformed header 'p{rest}'"),
                });
            }
            let vars = parts[1].parse::<u32>().map_err(|_| DimacsError {
                line: lineno,
                message: format!("invalid variable count '{}'", parts[1]),
            })?;
            let clauses = parts[2].parse::<usize>().map_err(|_| DimacsError {
                line: lineno,
                message: format!("invalid clause count '{}'", parts[2]),
            })?;
            header = Some((vars, clauses));
            cnf.reserve_vars(vars);
            continue;
        }
        if header.is_none() {
            return Err(DimacsError {
                line: lineno,
                message: "clause before header".into(),
            });
        }
        for token in line.split_whitespace() {
            let code = token.parse::<i64>().map_err(|_| DimacsError {
                line: lineno,
                message: format!("invalid literal '{token}'"),
            })?;
            if code == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(code));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError {
            line: input.lines().count(),
            message: "unterminated clause (missing trailing 0)".into(),
        });
    }
    if let Some((_, expected)) = header {
        if cnf.num_clauses() != expected {
            return Err(DimacsError {
                line: input.lines().count(),
                message: format!(
                    "header declared {expected} clauses, found {}",
                    cnf.num_clauses()
                ),
            });
        }
    }
    Ok(cnf)
}

/// Render a formula in DIMACS CNF format. Inverse of [`parse_dimacs`].
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for &lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(
            cnf.clauses()[0],
            vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]
        );
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 4 3\n1 2 0\n-3 4 0\n-1 -2 -4 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(write_dimacs(&cnf), text);
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn errors() {
        assert!(parse_dimacs("1 2 0\n").is_err()); // clause before header
        assert!(parse_dimacs("p cnf 2\n").is_err()); // malformed header
        assert!(parse_dimacs("p cnf 2 1\n1 2\n").is_err()); // unterminated
        assert!(parse_dimacs("p cnf 2 2\n1 0\n").is_err()); // count mismatch
        assert!(parse_dimacs("p cnf 2 1\n1 x 0\n").is_err()); // bad literal
        assert!(parse_dimacs("p cnf 1 0\np cnf 1 0\n").is_err()); // dup header
    }

    #[test]
    fn empty_clause_parses() {
        let cnf = parse_dimacs("p cnf 1 1\n0\n").unwrap();
        assert_eq!(cnf.clauses()[0].len(), 0);
    }
}
