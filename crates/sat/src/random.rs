//! Random k-SAT instance generation, for solver benchmarking and for
//! driving the reduction experiments at scale.

use crate::cnf::Cnf;
use crate::lit::Var;
use vermem_util::rng::{SliceRandom, StdRng};

/// Configuration for random k-SAT generation.
#[derive(Clone, Copy, Debug)]
pub struct RandomSatConfig {
    /// Number of variables.
    pub num_vars: u32,
    /// Number of clauses.
    pub num_clauses: usize,
    /// Literals per clause (distinct variables within a clause).
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSatConfig {
    /// Random 3-SAT at the given clause/variable ratio. Ratio ≈ 4.26 is the
    /// classic satisfiability phase-transition point.
    pub fn three_sat(num_vars: u32, ratio: f64, seed: u64) -> Self {
        RandomSatConfig {
            num_vars,
            num_clauses: (num_vars as f64 * ratio).round() as usize,
            k: 3,
            seed,
        }
    }
}

/// Generate a uniformly random k-SAT instance: each clause picks `k`
/// distinct variables and independent random polarities.
pub fn gen_random_ksat(cfg: &RandomSatConfig) -> Cnf {
    assert!(
        cfg.k as u64 <= cfg.num_vars as u64,
        "k must not exceed variable count"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cnf = Cnf::new();
    cnf.reserve_vars(cfg.num_vars);
    let vars: Vec<u32> = (0..cfg.num_vars).collect();
    for _ in 0..cfg.num_clauses {
        let chosen: Vec<u32> = vars.choose_multiple(&mut rng, cfg.k).copied().collect();
        cnf.add_clause(chosen.into_iter().map(|v| Var(v).lit(rng.gen_bool(0.5))));
    }
    cnf
}

/// Generate a *forced-satisfiable* random k-SAT instance: a hidden random
/// assignment is drawn first and every clause is required to contain at
/// least one literal true under it. Useful for benchmarking the SAT path
/// of reductions without hitting UNSAT blow-ups.
pub fn gen_forced_sat(cfg: &RandomSatConfig) -> Cnf {
    assert!(
        cfg.k as u64 <= cfg.num_vars as u64,
        "k must not exceed variable count"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hidden: Vec<bool> = (0..cfg.num_vars).map(|_| rng.gen_bool(0.5)).collect();
    let mut cnf = Cnf::new();
    cnf.reserve_vars(cfg.num_vars);
    let vars: Vec<u32> = (0..cfg.num_vars).collect();
    for _ in 0..cfg.num_clauses {
        loop {
            let chosen: Vec<u32> = vars.choose_multiple(&mut rng, cfg.k).copied().collect();
            let lits: Vec<_> = chosen
                .iter()
                .map(|&v| Var(v).lit(rng.gen_bool(0.5)))
                .collect();
            let satisfied = lits.iter().any(|&l| hidden[l.var().index()] == l.is_pos());
            if satisfied {
                cnf.add_clause(lits);
                break;
            }
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Model;
    use crate::solver::solve_cdcl;

    #[test]
    fn generates_requested_shape() {
        let cfg = RandomSatConfig {
            num_vars: 20,
            num_clauses: 50,
            k: 3,
            seed: 1,
        };
        let cnf = gen_random_ksat(&cfg);
        assert_eq!(cnf.num_vars(), 20);
        assert_eq!(cnf.num_clauses(), 50);
        assert!(cnf.clauses().iter().all(|c| c.len() == 3));
        // Distinct variables within each clause.
        for c in cnf.clauses() {
            let mut vars: Vec<u32> = c.iter().map(|l| l.var().0).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn forced_sat_is_satisfiable() {
        for seed in 0..5 {
            let cfg = RandomSatConfig::three_sat(30, 4.2, seed);
            let cnf = gen_forced_sat(&cfg);
            let r = solve_cdcl(&cnf);
            let m = r.model().expect("forced-sat instance must be satisfiable");
            assert_eq!(cnf.eval(m), Some(true));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomSatConfig {
            num_vars: 10,
            num_clauses: 20,
            k: 3,
            seed: 42,
        };
        assert_eq!(
            gen_random_ksat(&cfg).clauses(),
            gen_random_ksat(&cfg).clauses()
        );
    }

    #[test]
    fn hidden_model_satisfies_forced_instances() {
        // Re-derive the hidden assignment and check it satisfies.
        let cfg = RandomSatConfig {
            num_vars: 15,
            num_clauses: 40,
            k: 3,
            seed: 7,
        };
        let cnf = gen_forced_sat(&cfg);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hidden: Vec<bool> = (0..cfg.num_vars).map(|_| rng.gen_bool(0.5)).collect();
        assert_eq!(cnf.eval(&Model::from_values(hidden)), Some(true));
    }
}
