//! CNF preprocessing: unit propagation, clause subsumption and
//! self-subsuming resolution (strengthening) — the classic cheap
//! simplifications run before search. Preserves satisfiability *and*
//! models over the original variables, so a model of the simplified
//! formula (extended by the learned units) satisfies the original.

use crate::cnf::Cnf;
use crate::lit::Lit;
use std::collections::{BTreeMap, BTreeSet};

/// Result of preprocessing.
pub struct Simplified {
    /// The simplified formula (same variable numbering).
    pub cnf: Cnf,
    /// Literals fixed at toplevel by unit propagation.
    pub fixed: Vec<Lit>,
    /// True if preprocessing already proved unsatisfiability.
    pub unsat: bool,
    /// Clauses removed by subsumption.
    pub subsumed: usize,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: usize,
}

/// Preprocess a formula: run toplevel unit propagation to fixpoint, delete
/// subsumed clauses, and strengthen clauses by self-subsuming resolution,
/// iterating until no rule applies.
///
/// ```
/// use vermem_sat::{preprocess, Cnf, Lit};
/// let mut f = Cnf::new();
/// f.add_clause([Lit::from_dimacs(1)]);
/// f.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(2)]);
/// let s = preprocess(&f);
/// assert!(!s.unsat);
/// assert_eq!(s.fixed.len(), 2); // both variables forced
/// ```
pub fn preprocess(cnf: &Cnf) -> Simplified {
    let mut clauses: Vec<BTreeSet<Lit>> = cnf
        .clauses()
        .iter()
        .map(|c| c.iter().copied().collect())
        .collect();
    // Drop tautologies immediately.
    clauses.retain(|c| !c.iter().any(|&l| c.contains(&!l)));

    // A pre-existing empty clause is already a refutation.
    if clauses.iter().any(BTreeSet::is_empty) {
        return Simplified {
            cnf: Cnf::new(),
            fixed: Vec::new(),
            unsat: true,
            subsumed: 0,
            strengthened: 0,
        };
    }

    let mut fixed: BTreeMap<u32, Lit> = BTreeMap::new();
    let mut subsumed = 0usize;
    let mut strengthened = 0usize;

    loop {
        let mut changed = false;

        // 1. Toplevel unit propagation.
        loop {
            let unit = clauses
                .iter()
                .find(|c| c.len() == 1)
                .map(|c| *c.iter().next().unwrap());
            let Some(u) = unit else { break };
            match fixed.get(&u.var().0) {
                Some(&prev) if prev != u => {
                    return Simplified {
                        cnf: Cnf::new(),
                        fixed: fixed.into_values().collect(),
                        unsat: true,
                        subsumed,
                        strengthened,
                    };
                }
                _ => {}
            }
            fixed.insert(u.var().0, u);
            let mut next = Vec::with_capacity(clauses.len());
            for mut c in clauses.drain(..) {
                if c.contains(&u) {
                    continue; // satisfied
                }
                if c.remove(&!u) && c.is_empty() {
                    return Simplified {
                        cnf: Cnf::new(),
                        fixed: fixed.into_values().collect(),
                        unsat: true,
                        subsumed,
                        strengthened,
                    };
                }
                next.push(c);
            }
            clauses = next;
            changed = true;
        }

        // 2. Subsumption: drop any clause that is a superset of another.
        clauses.sort_by_key(BTreeSet::len);
        let mut kept: Vec<BTreeSet<Lit>> = Vec::with_capacity(clauses.len());
        'outer: for c in clauses.drain(..) {
            for k in &kept {
                if k.is_subset(&c) {
                    subsumed += 1;
                    changed = true;
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        clauses = kept;

        // 3. Self-subsuming resolution: if C = A ∪ {l} and D ⊇ A ∪ {¬l}
        //    with D \ {¬l} ⊇ A, then D can be strengthened to D \ {¬l}.
        //    (Equivalently: resolving C with D on l yields a clause that
        //    subsumes D.)
        let snapshot: Vec<BTreeSet<Lit>> = clauses.clone();
        for d in clauses.iter_mut() {
            let lits: Vec<Lit> = d.iter().copied().collect();
            for &l in &lits {
                // Find a clause C with ¬l whose remainder is inside D \ {l}.
                let strengthens = snapshot.iter().any(|c| {
                    c.contains(&!l)
                        && c.len() <= d.len()
                        && c.iter().all(|&x| x == !l || (x != l && d.contains(&x)))
                });
                if strengthens {
                    d.remove(&l);
                    strengthened += 1;
                    changed = true;
                    break; // re-examined on the next outer iteration
                }
            }
        }

        if !changed {
            break;
        }
    }

    let mut out = Cnf::new();
    out.reserve_vars(cnf.num_vars());
    for u in fixed.values() {
        out.add_clause([*u]);
    }
    for c in &clauses {
        out.add_clause(c.iter().copied());
    }
    Simplified {
        cnf: out,
        fixed: fixed.into_values().collect(),
        unsat: false,
        subsumed,
        strengthened,
    }
}

/// Preprocess, then run the CDCL solver on the residue. Equivalent to
/// [`crate::solve_cdcl`] but often faster on redundant encodings; the
/// returned model (if any) covers the original variables.
pub fn solve_with_preprocessing(cnf: &Cnf) -> crate::SatResult {
    let s = preprocess(cnf);
    if s.unsat {
        return crate::SatResult::Unsat;
    }
    crate::solve_cdcl(&s.cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;
    use crate::solver::solve_cdcl;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    #[test]
    fn unit_propagation_fixes_literals() {
        let s = preprocess(&cnf(&[&[1], &[-1, 2], &[-2, 3]]));
        assert!(!s.unsat);
        assert_eq!(s.fixed.len(), 3); // x1, x2, x3 all forced true
        assert!(s.fixed.contains(&Var(2).pos()));
    }

    #[test]
    fn detects_toplevel_conflict() {
        assert!(preprocess(&cnf(&[&[1], &[-1]])).unsat);
        assert!(preprocess(&cnf(&[&[1], &[-1, 2], &[-1, -2]])).unsat);
    }

    #[test]
    fn subsumption_removes_supersets() {
        let s = preprocess(&cnf(&[&[1, 2], &[1, 2, 3], &[1, 2, 4]]));
        assert_eq!(s.subsumed, 2);
        assert_eq!(s.cnf.num_clauses(), 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): resolving on a gives (b ∨ c) ⊂ second?
        // No — strengthening drops ¬a? C=(a∨b), D=(¬a∨b∨c): C\{a}={b}⊆D,
        // so D strengthens to (b∨c).
        let s = preprocess(&cnf(&[&[1, 2], &[-1, 2, 3]]));
        assert!(
            s.strengthened >= 1,
            "expected strengthening, got {}",
            s.strengthened
        );
        // All clauses now have ≤ 2 literals.
        assert!(s.cnf.clauses().iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn preserves_satisfiability_on_random_instances() {
        use crate::random::{gen_random_ksat, RandomSatConfig};
        for seed in 0..60 {
            let f = gen_random_ksat(&RandomSatConfig::three_sat(12, 4.26, 7_000 + seed));
            let s = preprocess(&f);
            let before = solve_cdcl(&f).is_sat();
            let after = if s.unsat {
                false
            } else {
                solve_cdcl(&s.cnf).is_sat()
            };
            assert_eq!(before, after, "seed {seed}");
            // Models of the simplified formula satisfy the original.
            if let (false, Some(m)) = (s.unsat, solve_cdcl(&s.cnf).model()) {
                assert_eq!(f.eval(m), Some(true), "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_and_trivial_inputs() {
        let s = preprocess(&Cnf::new());
        assert!(!s.unsat);
        assert_eq!(s.cnf.num_clauses(), 0);
        let mut f = Cnf::new();
        f.add_clause([]);
        assert!(preprocess(&f).unsat);
    }

    #[test]
    fn solve_with_preprocessing_agrees_with_plain_cdcl() {
        use crate::random::{gen_random_ksat, RandomSatConfig};
        for seed in 0..40 {
            let f = gen_random_ksat(&RandomSatConfig::three_sat(15, 4.26, 9_000 + seed));
            let plain = solve_cdcl(&f).is_sat();
            let pre = super::solve_with_preprocessing(&f);
            assert_eq!(plain, pre.is_sat(), "seed {seed}");
            if let Some(m) = pre.model() {
                assert_eq!(f.eval(m), Some(true), "seed {seed}");
            }
        }
    }

    #[test]
    fn tautologies_are_dropped() {
        let s = preprocess(&cnf(&[&[1, -1], &[2]]));
        assert!(!s.unsat);
        // Only the unit for x2 remains.
        assert_eq!(s.cnf.num_clauses(), 1);
    }
}
