//! Clausal proof logging and checking (DRAT-style, RUP lemmas).
//!
//! A CDCL "unsatisfiable" answer is a claim; a **clausal proof** makes it
//! independently checkable. The solver (with proof logging enabled) emits
//! every learnt clause in derivation order, ending with the empty clause.
//! [`check_unsat_proof`] then validates each lemma by **reverse unit
//! propagation** (RUP): asserting the negation of the lemma and unit-
//! propagating over the original formula plus previously-checked lemmas
//! must yield a conflict. First-UIP learnt clauses (including locally
//! minimized ones) are always RUP, so every proof this solver emits checks.
//!
//! The checker shares no code with the solver's propagation engine — it is
//! a deliberately simple counter-based propagator — so a bug would have to
//! exist twice, independently, to slip through.

use crate::cnf::Cnf;
use crate::lit::{LBool, Lit};

/// A clausal proof: learnt clauses in derivation order. An empty clause
/// (empty `Vec`) terminates a refutation.
pub type Proof = Vec<Vec<Lit>>;

/// Outcome of proof checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofCheck {
    /// Every lemma is RUP and the proof derives the empty clause.
    Valid,
    /// Lemma `index` is not RUP with respect to the formula and the
    /// preceding lemmas.
    LemmaNotRup {
        /// Index of the failing lemma within the proof.
        index: usize,
    },
    /// The proof never derives the empty clause, so it refutes nothing.
    NoEmptyClause,
}

/// Check a refutation proof for `cnf`. Runs in O(total-literals) per lemma
/// in the worst case.
pub fn check_unsat_proof(cnf: &Cnf, proof: &Proof) -> ProofCheck {
    let mut clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    let mut derived_empty = clauses.iter().any(Vec::is_empty);
    let num_vars = cnf.num_vars().max(
        proof
            .iter()
            .flatten()
            .map(|l| l.var().0 + 1)
            .max()
            .unwrap_or(0),
    ) as usize;

    for (index, lemma) in proof.iter().enumerate() {
        if derived_empty {
            break; // already refuted; trailing lemmas are irrelevant
        }
        if !is_rup(&clauses, num_vars, lemma) {
            return ProofCheck::LemmaNotRup { index };
        }
        if lemma.is_empty() {
            derived_empty = true;
        }
        clauses.push(lemma.clone());
    }
    if derived_empty {
        ProofCheck::Valid
    } else {
        ProofCheck::NoEmptyClause
    }
}

/// Reverse unit propagation: does asserting ¬lemma propagate to a conflict?
fn is_rup(clauses: &[Vec<Lit>], num_vars: usize, lemma: &[Lit]) -> bool {
    let mut assign = vec![LBool::Undef; num_vars];
    let mut queue: Vec<Lit> = Vec::new();
    for &l in lemma {
        // Assert the negation of each lemma literal.
        let nl = !l;
        match assign[nl.var().index()].of_lit(nl) {
            LBool::False => return true, // ¬lemma is itself contradictory
            LBool::True => {}
            LBool::Undef => {
                assign[nl.var().index()] = LBool::from_bool(nl.is_pos());
                queue.push(nl);
            }
        }
    }

    // Naive propagation to fixpoint: scan all clauses repeatedly. Simple
    // and obviously correct — the point of an independent checker.
    loop {
        let mut progressed = false;
        for clause in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut count = 0;
            let mut satisfied = false;
            for &lit in clause {
                match assign[lit.var().index()].of_lit(lit) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => {
                        unassigned = Some(lit);
                        count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match (count, unassigned) {
                (0, _) => return true, // conflict reached
                (1, Some(lit)) => {
                    assign[lit.var().index()] = LBool::from_bool(lit.is_pos());
                    progressed = true;
                }
                _ => {}
            }
        }
        if !progressed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::SatResult;
    use crate::solver::CdclSolver;

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let mut f = Cnf::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&x| Lit::from_dimacs(x)));
        }
        f
    }

    fn prove_unsat(f: &Cnf) -> Proof {
        let mut s = CdclSolver::new(f);
        s.enable_proof_logging();
        assert_eq!(s.solve(), SatResult::Unsat);
        s.take_proof().expect("logging enabled")
    }

    #[test]
    fn trivial_refutation_checks() {
        let f = cnf(&[&[1], &[-1]]);
        let proof = prove_unsat(&f);
        assert_eq!(check_unsat_proof(&f, &proof), ProofCheck::Valid);
    }

    #[test]
    fn binary_square_refutation_checks() {
        let f = cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        let proof = prove_unsat(&f);
        assert_eq!(check_unsat_proof(&f, &proof), ProofCheck::Valid);
    }

    #[test]
    fn pigeonhole_refutations_check() {
        for holes in [2i64, 3] {
            let v = |i: i64, j: i64| holes * (i - 1) + j;
            let mut clauses: Vec<Vec<i64>> = Vec::new();
            for i in 1..=holes + 1 {
                clauses.push((1..=holes).map(|j| v(i, j)).collect());
            }
            for j in 1..=holes {
                for i1 in 1..=holes + 1 {
                    for i2 in (i1 + 1)..=holes + 1 {
                        clauses.push(vec![-v(i1, j), -v(i2, j)]);
                    }
                }
            }
            let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
            let f = cnf(&refs);
            let proof = prove_unsat(&f);
            assert_eq!(
                check_unsat_proof(&f, &proof),
                ProofCheck::Valid,
                "holes={holes}"
            );
        }
    }

    #[test]
    fn random_unsat_instances_produce_valid_proofs() {
        use crate::random::{gen_random_ksat, RandomSatConfig};
        let mut checked = 0;
        for seed in 0..40 {
            let f = gen_random_ksat(&RandomSatConfig::three_sat(18, 5.2, 40_000 + seed));
            let mut s = CdclSolver::new(&f);
            s.enable_proof_logging();
            if s.solve() == SatResult::Unsat {
                let proof = s.take_proof().expect("logging enabled");
                assert_eq!(
                    check_unsat_proof(&f, &proof),
                    ProofCheck::Valid,
                    "seed {seed}"
                );
                checked += 1;
            }
        }
        assert!(
            checked > 5,
            "expected several UNSAT instances, got {checked}"
        );
    }

    #[test]
    fn bogus_proofs_are_rejected() {
        let f = cnf(&[&[1, 2], &[-1, 2]]);
        // Claiming the empty clause directly is not RUP here (f is SAT).
        let bogus: Proof = vec![vec![]];
        assert_eq!(
            check_unsat_proof(&f, &bogus),
            ProofCheck::LemmaNotRup { index: 0 }
        );
        // A proof without the empty clause refutes nothing.
        let partial: Proof = vec![vec![Lit::from_dimacs(2)]];
        assert_eq!(check_unsat_proof(&f, &partial), ProofCheck::NoEmptyClause);
    }

    #[test]
    fn sat_answers_log_no_refutation() {
        let f = cnf(&[&[1, 2]]);
        let mut s = CdclSolver::new(&f);
        s.enable_proof_logging();
        assert!(matches!(s.solve(), SatResult::Sat(_)));
        let proof = s.take_proof().expect("logging enabled");
        assert!(!proof.iter().any(Vec::is_empty), "no empty clause on SAT");
    }
}
