//! Boolean variables and literals.
//!
//! Literals use the MiniSat packed encoding: literal index `2·v` is the
//! positive literal of variable `v`, `2·v + 1` its negation. This makes
//! watch-list indexing and negation branch-free.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Var {
    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)] // paired with `pos`, not a negation of Var
    #[inline]
    pub fn neg(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.pos()
        } else {
            self.neg()
        }
    }

    /// Index for dense per-variable arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Lit {
    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if this is a positive (unnegated) literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Index for dense per-literal arrays (watch lists).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }

    /// Build from a DIMACS-style signed integer (non-zero; negative means
    /// negated; magnitude is 1-based).
    pub fn from_dimacs(code: i64) -> Lit {
        debug_assert!(code != 0);
        let v = Var(code.unsigned_abs() as u32 - 1);
        v.lit(code > 0)
    }

    /// Convert to a DIMACS-style signed integer.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().0 as i64 + 1;
        if self.is_pos() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Truth value of a literal given its variable's assignment.
    #[inline]
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_pos()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }

    /// From a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_pos());
        assert!(!v.neg().is_pos());
        assert_eq!(v.pos().index(), 14);
        assert_eq!(v.neg().index(), 15);
    }

    #[test]
    fn negation_is_involution() {
        let l = Var(3).pos();
        assert_eq!(!!l, l);
        assert_eq!(!l, Var(3).neg());
    }

    #[test]
    fn dimacs_round_trip() {
        for code in [-5i64, -1, 1, 5] {
            assert_eq!(Lit::from_dimacs(code).to_dimacs(), code);
        }
        assert_eq!(Lit::from_dimacs(1), Var(0).pos());
        assert_eq!(Lit::from_dimacs(-3), Var(2).neg());
    }

    #[test]
    fn lbool_of_lit() {
        assert_eq!(LBool::True.of_lit(Var(0).pos()), LBool::True);
        assert_eq!(LBool::True.of_lit(Var(0).neg()), LBool::False);
        assert_eq!(LBool::False.of_lit(Var(0).pos()), LBool::False);
        assert_eq!(LBool::False.of_lit(Var(0).neg()), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Var(0).pos()), LBool::Undef);
    }

    #[test]
    fn var_lit_sign_constructor() {
        assert_eq!(Var(2).lit(true), Var(2).pos());
        assert_eq!(Var(2).lit(false), Var(2).neg());
    }
}
