//! Differential testing of the CDCL solver against the DPLL baseline and
//! brute-force enumeration on random small formulas.

use vermem_sat::{solve_cdcl, solve_dpll, Cnf, Lit, Model, Var};
use vermem_util::prop::PropConfig;
use vermem_util::rng::{SliceRandom, StdRng};
use vermem_util::{prop_assert_eq, prop_check};

/// Brute-force satisfiability for small variable counts.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force only for small instances");
    (0..(1u32 << n)).any(|bits| {
        let model = Model::from_values((0..n).map(|i| bits >> i & 1 == 1).collect());
        cnf.eval(&model) == Some(true)
    })
}

/// Random CNF over `max_vars` variables with up to `size` clauses of ≤ 3
/// literals (distinct-variable choice is not enforced, matching the old
/// proptest strategy).
fn arb_cnf(rng: &mut StdRng, max_vars: u32, size: usize) -> Cnf {
    let mut cnf = Cnf::new();
    cnf.reserve_vars(max_vars);
    let vars: Vec<u32> = (0..max_vars).collect();
    for _ in 0..size {
        let len = rng.gen_range(0..=3usize);
        let lits: Vec<Lit> = vars
            .choose_multiple(rng, len)
            .map(|&v| Var(v).lit(rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

#[test]
fn cdcl_agrees_with_brute_force() {
    prop_check!(
        PropConfig::with_cases(256),
        |rng, size| arb_cnf(rng, 8, size),
        |cnf: &Cnf| {
            let expected = brute_force_sat(cnf);
            let result = solve_cdcl(cnf);
            prop_assert_eq!(result.is_sat(), expected);
            if let Some(m) = result.model() {
                prop_assert_eq!(cnf.eval(m), Some(true));
            }
            Ok(())
        }
    );
}

#[test]
fn dpll_agrees_with_cdcl() {
    prop_check!(
        PropConfig::with_cases(256).max_size(30),
        |rng, size| arb_cnf(rng, 10, size),
        |cnf: &Cnf| {
            let cdcl = solve_cdcl(cnf);
            let dpll = solve_dpll(cnf);
            prop_assert_eq!(cdcl.is_sat(), dpll.is_sat());
            if let Some(m) = dpll.model() {
                prop_assert_eq!(cnf.eval(m), Some(true));
            }
            Ok(())
        }
    );
}

#[test]
fn random_3sat_models_verify() {
    prop_check!(
        PropConfig::with_cases(256),
        |rng, _size| rng.gen_range(0..500u64),
        |&seed: &u64| {
            let cfg = vermem_sat::random::RandomSatConfig::three_sat(25, 3.0, seed);
            let cnf = vermem_sat::random::gen_random_ksat(&cfg);
            if let Some(m) = solve_cdcl(&cnf).model() {
                prop_assert_eq!(cnf.eval(m), Some(true));
            }
            Ok(())
        }
    );
}

#[test]
fn phase_transition_instances_both_directions() {
    // Near the 3-SAT phase transition both SAT and UNSAT instances occur;
    // CDCL and DPLL must agree on all of them.
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for seed in 0..30 {
        let cfg = vermem_sat::random::RandomSatConfig::three_sat(30, 4.26, seed);
        let cnf = vermem_sat::random::gen_random_ksat(&cfg);
        let cdcl = solve_cdcl(&cnf);
        let dpll = solve_dpll(&cnf);
        assert_eq!(cdcl.is_sat(), dpll.is_sat(), "seed {seed}");
        if cdcl.is_sat() {
            sat_seen += 1;
        } else {
            unsat_seen += 1;
        }
    }
    assert!(sat_seen > 0, "expected some satisfiable instances");
    assert!(unsat_seen > 0, "expected some unsatisfiable instances");
}

#[test]
fn unit_chain_forces_model() {
    // x0, x0→x1, ..., x(n-1)→xn: all true.
    let n = 50u32;
    let mut cnf = Cnf::new();
    cnf.reserve_vars(n);
    cnf.add_clause([Var(0).pos()]);
    for i in 0..n - 1 {
        cnf.add_clause([Var(i).neg(), Var(i + 1).pos()]);
    }
    let r = solve_cdcl(&cnf);
    let m = r.model().expect("satisfiable");
    for i in 0..n {
        assert_eq!(m.value(Var(i)), Some(true));
    }
}

#[test]
fn dimacs_round_trip_preserves_satisfiability() {
    for seed in 0..10 {
        let cfg = vermem_sat::random::RandomSatConfig::three_sat(20, 4.0, seed);
        let cnf = vermem_sat::random::gen_random_ksat(&cfg);
        let text = vermem_sat::dimacs::write_dimacs(&cnf);
        let parsed = vermem_sat::dimacs::parse_dimacs(&text).expect("round trip");
        assert_eq!(solve_cdcl(&cnf).is_sat(), solve_cdcl(&parsed).is_sat());
    }
}

#[test]
fn lit_api_consistency() {
    let l = Lit::from_dimacs(5);
    assert_eq!(l.var(), Var(4));
    assert!(l.is_pos());
}
