//! Differential suite for the shared exact-search kernel: every
//! operational engine (SC backtracking, TSO, PSO) must agree with the
//! axiomatic SAT oracle on every trace family, under every kernel knob
//! combination — and budget-limited runs must be deterministic.

use vermem_consistency::{
    litmus::all_litmus_tests, solve_model_sat, verify_axiom, verify_model_operational, AxiomConfig,
    Engine, KernelConfig, MemoryModel, ModelId, SearchStats,
};
use vermem_trace::gen::{gen_sc_trace, inject_violation, GenConfig, ViolationKind};
use vermem_trace::{Op, Trace, TraceBuilder};
use vermem_util::rng::StdRng;

/// The three operational engines (CoherenceOnly has no machine; its
/// dispatch in `verify_model_operational` *is* the SAT oracle, so a
/// differential there would be a tautology).
const OPERATIONAL: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

/// Kernel knob grid: default, feasibility off, legacy (alloc-per-probe)
/// memo keys, and both ablations together.
fn knob_grid() -> [KernelConfig; 4] {
    std::array::from_fn(|bits| KernelConfig {
        feasibility: bits & 1 == 0,
        legacy_keys: bits & 2 != 0,
        ..Default::default()
    })
}

/// Assert the full kernel-parity contract on one trace:
/// * every operational engine matches `solve_model_sat` for its model,
///   under every knob combination;
/// * the two memo-key representations visit identical state counts.
fn assert_kernel_parity(trace: &Trace, ctx: &str) {
    for model in OPERATIONAL {
        let oracle = solve_model_sat(trace, model).is_consistent();
        let mut states_by_keys: [Option<u64>; 2] = [None, None];
        for cfg in knob_grid() {
            let (verdict, stats) = verify_model_operational(trace, model, &cfg);
            assert!(
                !matches!(
                    verdict,
                    vermem_consistency::ConsistencyVerdict::Unknown { .. }
                ),
                "{ctx}: {model} unbudgeted run returned Unknown under {cfg:?}"
            );
            assert_eq!(
                verdict.is_consistent(),
                oracle,
                "{ctx}: {model} operational/axiomatic drift under {cfg:?}"
            );
            // With feasibility fixed, the fast and legacy key paths must
            // walk the exact same state space.
            if cfg.feasibility {
                let slot = &mut states_by_keys[usize::from(cfg.legacy_keys)];
                match slot {
                    None => *slot = Some(stats.states),
                    Some(prev) => assert_eq!(*prev, stats.states, "{ctx}: {model} nondeterminism"),
                }
            }
        }
        if let [Some(fast), Some(legacy)] = states_by_keys {
            assert_eq!(
                fast, legacy,
                "{ctx}: {model} fast/legacy memo keys disagree on states visited"
            );
        }
    }
}

/// Budget-hit determinism: two identical tiny-budget runs must return the
/// same verdict class *and* bit-identical stats.
fn assert_budget_determinism(trace: &Trace, ctx: &str) {
    for model in OPERATIONAL {
        for budget in [1u64, 3, 16] {
            let cfg = KernelConfig::with_budget(budget);
            let (v1, s1): (_, SearchStats) = verify_model_operational(trace, model, &cfg);
            let (v2, s2) = verify_model_operational(trace, model, &cfg);
            assert_eq!(
                v1.is_consistent(),
                v2.is_consistent(),
                "{ctx}: {model} budget={budget} verdict class drift"
            );
            assert_eq!(
                v1.unknown_stats().is_some(),
                v2.unknown_stats().is_some(),
                "{ctx}: {model} budget={budget} Unknown-ness drift"
            );
            assert_eq!(s1, s2, "{ctx}: {model} budget={budget} stats drift");
            // A budget-exhausted answer must still report real progress.
            if v1.unknown_stats().is_some() {
                assert!(s1.states > budget, "{ctx}: {model} stopped before the cap");
            }
        }
    }
}

/// Family 3: small random traces mixing reads, writes and RMWs (the same
/// shape the cross-validation suite uses, but driven through the kernel
/// knob grid).
fn arb_trace(rng: &mut StdRng) -> Trace {
    let procs = rng.gen_range(1..=3usize);
    let mut b = TraceBuilder::new();
    for _ in 0..procs {
        let len = rng.gen_range(0..=4usize);
        let ops: Vec<Op> = (0..len)
            .map(|_| {
                let kind = rng.gen_range(0..5u8);
                let a = rng.gen_range(0..2u32);
                let v = rng.gen_range(0..3u64);
                let w = rng.gen_range(0..3u64);
                match kind {
                    0 | 1 => Op::read(a, v),
                    2 | 3 => Op::write(a, v),
                    _ => Op::rmw(a, v, w),
                }
            })
            .collect();
        b = b.proc(ops);
    }
    b.build()
}

#[test]
fn litmus_traces_keep_kernel_parity() {
    for test in all_litmus_tests() {
        assert_kernel_parity(&test.trace, test.name);
    }
}

#[test]
fn generated_sc_traces_keep_kernel_parity() {
    // Family 1: SC-by-construction workloads (consistent under every model).
    for seed in 0..6u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 18,
            addrs: 3,
            value_reuse: 0.5,
            seed: 40_000 + seed,
            ..Default::default()
        });
        assert_kernel_parity(&t, &format!("gen seed {seed}"));
    }
}

#[test]
fn fault_injected_traces_keep_kernel_parity() {
    // Family 2: SC traces corrupted by each injector kind — the violating
    // side of the differential (several of these are incoherent, some are
    // masked and stay consistent; either way the engines must agree).
    let kinds = [
        ViolationKind::CorruptReadValue,
        ViolationKind::StaleRead,
        ViolationKind::LostWrite,
        ViolationKind::ReorderAdjacent,
    ];
    let mut mutated_traces = 0u32;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..4u64 {
            let (t, _) = gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: 16,
                addrs: 2,
                value_reuse: 0.6,
                seed: 50_000 + seed,
                ..Default::default()
            });
            if let Some((bad, _inj)) = inject_violation(&t, kind, 9_000 + seed) {
                assert_kernel_parity(&bad, &format!("fault {k} seed {seed}"));
                mutated_traces += 1;
            }
        }
    }
    assert!(
        mutated_traces >= 8,
        "too few injected traces: {mutated_traces}"
    );
}

#[test]
fn random_traces_keep_kernel_parity() {
    // Family 3: unconstrained random traces.
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
    for case in 0..48u32 {
        let t = arb_trace(&mut rng);
        assert_kernel_parity(&t, &format!("random case {case}"));
    }
}

#[test]
fn budget_exhaustion_parity_compiled_vs_legacy() {
    // Satellite of the axiom refactor: on the E-5.2 blow-up family (the
    // all-RMW 3SAT reduction of Figure 5.2, over-constrained at ratio
    // 5.0) the compiled machines must exhaust a budget *identically* to
    // the verbatim legacy machines — same `Unknown`, same stats, at the
    // same `max_states` — so budget-limited production behaviour is
    // unchanged by the refactor.
    use vermem_reductions::reduce_3sat_rmw;
    use vermem_sat::random::{gen_random_ksat, RandomSatConfig};

    let cnf = gen_random_ksat(&RandomSatConfig::three_sat(3, 5.0, 93));
    let trace = reduce_3sat_rmw(&cnf).trace;
    let mut exhausted = 0u32;
    for id in [ModelId::Sc, ModelId::Tso, ModelId::Pso] {
        for budget in [16u64, 64, 256] {
            let kernel = KernelConfig::with_budget(budget);
            let compiled = verify_axiom(
                &trace,
                id,
                &AxiomConfig {
                    engine: Engine::Compiled,
                    kernel,
                    ..AxiomConfig::default()
                },
            );
            let legacy = verify_axiom(
                &trace,
                id,
                &AxiomConfig {
                    engine: Engine::Legacy,
                    kernel,
                    ..AxiomConfig::default()
                },
            );
            assert_eq!(
                compiled.verdict,
                legacy.verdict,
                "{} budget={budget}: compiled/legacy verdict drift",
                id.name()
            );
            assert_eq!(
                compiled.stats,
                legacy.stats,
                "{} budget={budget}: compiled/legacy stats drift",
                id.name()
            );
            if compiled.verdict.unknown_stats().is_some() {
                exhausted += 1;
                assert!(compiled.stats.states > budget, "stopped before the cap");
            }
        }
    }
    // The family must actually blow the small budgets, or this test
    // proves nothing.
    assert!(exhausted >= 3, "only {exhausted} budget exhaustions");
}

#[test]
fn budget_hits_are_deterministic() {
    // Contended traces that actually blow tiny budgets.
    let (t, _) = gen_sc_trace(&GenConfig {
        procs: 4,
        total_ops: 24,
        addrs: 2,
        value_reuse: 0.7,
        seed: 77,
        ..Default::default()
    });
    assert_budget_determinism(&t, "gen contended");
    for test in all_litmus_tests().iter().filter(|t| t.name == "IRIW") {
        assert_budget_determinism(&test.trace, test.name);
    }
}
