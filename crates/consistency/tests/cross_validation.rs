//! Cross-validation of the consistency stack: the VSCC pipeline, the
//! direct SC solvers, the model hierarchy, and the operational TSO machine
//! semantics must all tell one coherent story on random traces.

use proptest::prelude::*;
use vermem_consistency::{
    solve_model_sat, solve_pso_operational, solve_sc_backtracking, solve_tso_operational,
    verify_vscc, MemoryModel, PsoConfig, SettledBy, TsoConfig, VscConfig,
};
use vermem_trace::{Op, Trace, TraceBuilder};

fn arb_trace() -> impl Strategy<Value = Trace> {
    let op = (0u8..5, 0u32..2, 0u64..3, 0u64..3).prop_map(|(kind, a, v, w)| match kind {
        0 | 1 => Op::read(a, v),
        2 | 3 => Op::write(a, v),
        _ => Op::rmw(a, v, w),
    });
    let history = prop::collection::vec(op, 0..=4);
    prop::collection::vec(history, 1..=3).prop_map(|hists| {
        let mut b = TraceBuilder::new();
        for h in hists {
            b = b.proc(h);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The VSCC pipeline's final verdict equals the direct SC decision.
    #[test]
    fn vscc_pipeline_agrees_with_direct_sc(trace in arb_trace()) {
        let direct = solve_sc_backtracking(&trace, &VscConfig::default());
        let report = verify_vscc(&trace);
        // When coherence fails, SC fails too (coherence is necessary).
        prop_assert_eq!(
            report.verdict.is_consistent(),
            direct.is_consistent(),
            "pipeline settled by {:?}",
            report.settled_by
        );
        // A fast merge success must mean the trace really is SC.
        if report.settled_by == SettledBy::FastMerge {
            prop_assert!(direct.is_consistent());
        }
    }

    // Model hierarchy: SC ⊆ TSO ⊆ PSO ⊆ CoherenceOnly.
    #[test]
    fn model_hierarchy_is_monotone(trace in arb_trace()) {
        let sc = solve_model_sat(&trace, MemoryModel::Sc).is_consistent();
        let tso = solve_model_sat(&trace, MemoryModel::Tso).is_consistent();
        let pso = solve_model_sat(&trace, MemoryModel::Pso).is_consistent();
        let coh = solve_model_sat(&trace, MemoryModel::CoherenceOnly).is_consistent();
        prop_assert!(!sc || tso);
        prop_assert!(!tso || pso);
        prop_assert!(!pso || coh);
        // Coherence-only consistency equals per-address coherence.
        prop_assert_eq!(
            coh,
            vermem_coherence::verify_execution(&trace).is_coherent()
        );
    }

    // Operational and axiomatic TSO agree.
    #[test]
    fn operational_tso_equals_axiomatic_tso(trace in arb_trace()) {
        let operational =
            solve_tso_operational(&trace, &TsoConfig::default()).is_consistent();
        let axiomatic = solve_model_sat(&trace, MemoryModel::Tso).is_consistent();
        prop_assert_eq!(operational, axiomatic);
    }

    // Operational and axiomatic PSO agree.
    #[test]
    fn operational_pso_equals_axiomatic_pso(trace in arb_trace()) {
        let operational =
            solve_pso_operational(&trace, &PsoConfig::default()).is_consistent();
        let axiomatic = solve_model_sat(&trace, MemoryModel::Pso).is_consistent();
        prop_assert_eq!(operational, axiomatic);
    }

    // SC backtracking and SC-via-SAT agree (redundant engines).
    #[test]
    fn sc_engines_agree(trace in arb_trace()) {
        let bt = solve_sc_backtracking(&trace, &VscConfig::default()).is_consistent();
        let sat = solve_model_sat(&trace, MemoryModel::Sc).is_consistent();
        prop_assert_eq!(bt, sat);
    }
}

#[test]
fn coherence_only_matches_per_address_coherence_on_vscc_instances() {
    // Figure 6.2 instances are coherent by construction, so they must be
    // CoherenceOnly-consistent regardless of the formula.
    for seed in 0..6 {
        let f = vermem_sat::random::gen_random_ksat(
            &vermem_sat::random::RandomSatConfig::three_sat(3, 4.0, 88_000 + seed),
        );
        let red = vermem_reductions::reduce_sat_to_vscc(&f);
        assert!(
            solve_model_sat(&red.trace, MemoryModel::CoherenceOnly).is_consistent(),
            "seed {seed}"
        );
    }
}
