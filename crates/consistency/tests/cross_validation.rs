//! Cross-validation of the consistency stack: the VSCC pipeline, the
//! direct SC solvers, the model hierarchy, and the operational TSO machine
//! semantics must all tell one coherent story on random traces.

use vermem_consistency::{
    solve_model_sat, solve_pso_operational, solve_sc_backtracking, solve_tso_operational,
    verify_vscc, KernelConfig, MemoryModel, SettledBy,
};
use vermem_trace::{Op, Trace, TraceBuilder};
use vermem_util::prop::PropConfig;
use vermem_util::rng::StdRng;
use vermem_util::{prop_assert, prop_assert_eq, prop_check};

/// Random trace with 1–3 processes of up to 4 ops over 2 addresses and a
/// 3-value universe (small enough that every solver in the stack finishes).
fn arb_trace(rng: &mut StdRng, size: usize) -> Trace {
    let procs = rng.gen_range(1..=3usize);
    let max_ops = size.min(4);
    let mut b = TraceBuilder::new();
    for _ in 0..procs {
        let len = rng.gen_range(0..=max_ops);
        let ops: Vec<Op> = (0..len)
            .map(|_| {
                let kind = rng.gen_range(0..5u8);
                let a = rng.gen_range(0..2u32);
                let v = rng.gen_range(0..3u64);
                let w = rng.gen_range(0..3u64);
                match kind {
                    0 | 1 => Op::read(a, v),
                    2 | 3 => Op::write(a, v),
                    _ => Op::rmw(a, v, w),
                }
            })
            .collect();
        b = b.proc(ops);
    }
    b.build()
}

#[test]
fn vscc_pipeline_agrees_with_direct_sc() {
    // The VSCC pipeline's final verdict equals the direct SC decision.
    prop_check!(PropConfig::with_cases(96), arb_trace, |trace: &Trace| {
        let direct = solve_sc_backtracking(trace, &KernelConfig::default());
        let report = verify_vscc(trace);
        // When coherence fails, SC fails too (coherence is necessary).
        prop_assert_eq!(
            report.verdict.is_consistent(),
            direct.is_consistent(),
            "pipeline settled by {:?}",
            report.settled_by
        );
        // A fast merge success must mean the trace really is SC.
        if report.settled_by == SettledBy::FastMerge {
            prop_assert!(direct.is_consistent());
        }
        Ok(())
    });
}

#[test]
fn model_hierarchy_is_monotone() {
    // Model hierarchy: SC ⊆ TSO ⊆ PSO ⊆ CoherenceOnly.
    prop_check!(PropConfig::with_cases(96), arb_trace, |trace: &Trace| {
        let sc = solve_model_sat(trace, MemoryModel::Sc).is_consistent();
        let tso = solve_model_sat(trace, MemoryModel::Tso).is_consistent();
        let pso = solve_model_sat(trace, MemoryModel::Pso).is_consistent();
        let coh = solve_model_sat(trace, MemoryModel::CoherenceOnly).is_consistent();
        prop_assert!(!sc || tso);
        prop_assert!(!tso || pso);
        prop_assert!(!pso || coh);
        // Coherence-only consistency equals per-address coherence.
        prop_assert_eq!(coh, vermem_coherence::verify_execution(trace).is_coherent());
        Ok(())
    });
}

#[test]
fn operational_tso_equals_axiomatic_tso() {
    prop_check!(PropConfig::with_cases(96), arb_trace, |trace: &Trace| {
        let operational = solve_tso_operational(trace, &KernelConfig::default()).is_consistent();
        let axiomatic = solve_model_sat(trace, MemoryModel::Tso).is_consistent();
        prop_assert_eq!(operational, axiomatic);
        Ok(())
    });
}

#[test]
fn operational_pso_equals_axiomatic_pso() {
    prop_check!(PropConfig::with_cases(96), arb_trace, |trace: &Trace| {
        let operational = solve_pso_operational(trace, &KernelConfig::default()).is_consistent();
        let axiomatic = solve_model_sat(trace, MemoryModel::Pso).is_consistent();
        prop_assert_eq!(operational, axiomatic);
        Ok(())
    });
}

#[test]
fn sc_engines_agree() {
    // SC backtracking and SC-via-SAT agree (redundant engines).
    prop_check!(PropConfig::with_cases(96), arb_trace, |trace: &Trace| {
        let bt = solve_sc_backtracking(trace, &KernelConfig::default()).is_consistent();
        let sat = solve_model_sat(trace, MemoryModel::Sc).is_consistent();
        prop_assert_eq!(bt, sat);
        Ok(())
    });
}

#[test]
fn coherence_only_matches_per_address_coherence_on_vscc_instances() {
    // Figure 6.2 instances are coherent by construction, so they must be
    // CoherenceOnly-consistent regardless of the formula.
    for seed in 0..6 {
        let f = vermem_sat::random::gen_random_ksat(
            &vermem_sat::random::RandomSatConfig::three_sat(3, 4.0, 88_000 + seed),
        );
        let red = vermem_reductions::reduce_sat_to_vscc(&f);
        assert!(
            solve_model_sat(&red.trace, MemoryModel::CoherenceOnly).is_consistent(),
            "seed {seed}"
        );
    }
}
