//! Differential suite for the axiom framework: every declared model must
//! give the same answer through the operational compiler, the SAT
//! compiler, and (for the four base models) the verbatim pre-refactor
//! legacy engines — across the litmus suite, generated workloads,
//! fault-injected traces and unconstrained random traces. The RA fast
//! tier must never mask the exact verdict, and must actually decide
//! healthy unique-value workloads.

use vermem_coherence::TierConfig;
use vermem_consistency::axiom::ra_fast::{self, FastOutcome};
use vermem_consistency::{
    litmus::all_litmus_tests, verify_axiom, AxiomConfig, Engine, KernelConfig, ModelId,
};
use vermem_trace::gen::{gen_sc_trace, inject_violation, GenConfig, ViolationKind};
use vermem_trace::{Op, Trace, TraceBuilder};
use vermem_util::rng::StdRng;

const BASE: [ModelId; 3] = [ModelId::Sc, ModelId::Tso, ModelId::Pso];

fn config(engine: Engine) -> AxiomConfig {
    AxiomConfig {
        engine,
        ..AxiomConfig::default()
    }
}

/// Compiled (tiered and exact-only), SAT, and legacy-where-it-exists all
/// agree on consistency for every declared model.
fn assert_engine_agreement(trace: &Trace, ctx: &str) {
    for id in ModelId::ALL {
        let sat = verify_axiom(trace, id, &config(Engine::Sat)).verdict;
        let tiered = verify_axiom(trace, id, &config(Engine::Compiled)).verdict;
        let exact = verify_axiom(
            trace,
            id,
            &AxiomConfig {
                engine: Engine::Compiled,
                tier: TierConfig::exact_only(),
                ..AxiomConfig::default()
            },
        )
        .verdict;
        assert_eq!(
            tiered.is_consistent(),
            sat.is_consistent(),
            "{ctx}: {} compiled/sat drift",
            id.name()
        );
        assert_eq!(
            exact.is_consistent(),
            sat.is_consistent(),
            "{ctx}: {} exact-only/sat drift",
            id.name()
        );
        if Engine::Legacy.supports(id) {
            let legacy = verify_axiom(trace, id, &config(Engine::Legacy)).verdict;
            assert_eq!(
                legacy.is_consistent(),
                sat.is_consistent(),
                "{ctx}: {} legacy/sat drift",
                id.name()
            );
        }
    }
}

/// The refactor's bit-identity contract: for the three machine-backed base
/// models the compiled engine must return the *same verdict value*
/// (schedule included) and the same [`vermem_consistency::SearchStats`] as
/// the verbatim legacy machines, under every kernel knob combination.
fn assert_bit_identical_to_legacy(trace: &Trace, ctx: &str) {
    for id in BASE {
        for bits in 0..4u8 {
            let kernel = KernelConfig {
                feasibility: bits & 1 == 0,
                legacy_keys: bits & 2 != 0,
                ..KernelConfig::default()
            };
            let compiled = verify_axiom(
                trace,
                id,
                &AxiomConfig {
                    engine: Engine::Compiled,
                    kernel,
                    ..AxiomConfig::default()
                },
            );
            let legacy = verify_axiom(
                trace,
                id,
                &AxiomConfig {
                    engine: Engine::Legacy,
                    kernel,
                    ..AxiomConfig::default()
                },
            );
            assert_eq!(
                compiled.verdict,
                legacy.verdict,
                "{ctx}: {} compiled/legacy verdict drift under {kernel:?}",
                id.name()
            );
            assert_eq!(
                compiled.stats,
                legacy.stats,
                "{ctx}: {} compiled/legacy stats drift under {kernel:?}",
                id.name()
            );
        }
    }
}

fn arb_trace(rng: &mut StdRng) -> Trace {
    let procs = rng.gen_range(1..=3usize);
    let mut b = TraceBuilder::new();
    for _ in 0..procs {
        let len = rng.gen_range(0..=4usize);
        let ops: Vec<Op> = (0..len)
            .map(|_| {
                let kind = rng.gen_range(0..5u8);
                let a = rng.gen_range(0..2u32);
                let v = rng.gen_range(0..3u64);
                let w = rng.gen_range(0..3u64);
                match kind {
                    0 | 1 => Op::read(a, v),
                    2 | 3 => Op::write(a, v),
                    _ => Op::rmw(a, v, w),
                }
            })
            .collect();
        b = b.proc(ops);
    }
    b.build()
}

#[test]
fn litmus_expectations_hold_on_every_engine() {
    for test in all_litmus_tests() {
        for (&id, &allowed) in &test.expected_axiom {
            for engine in [Engine::Compiled, Engine::Sat, Engine::Legacy] {
                if !engine.supports(id) {
                    continue;
                }
                let report = verify_axiom(&test.trace, id, &config(engine));
                assert_eq!(
                    report.verdict.is_consistent(),
                    allowed,
                    "{} under {} via {}: expected allowed={}",
                    test.name,
                    id.name(),
                    engine.name(),
                    allowed
                );
            }
        }
    }
}

#[test]
fn litmus_traces_keep_engine_agreement() {
    for test in all_litmus_tests() {
        assert_engine_agreement(&test.trace, test.name);
        assert_bit_identical_to_legacy(&test.trace, test.name);
    }
}

#[test]
fn generated_traces_keep_engine_agreement() {
    for seed in 0..5u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 12,
            addrs: 2,
            value_reuse: 0.5,
            seed: 60_000 + seed,
            ..Default::default()
        });
        assert_engine_agreement(&t, &format!("gen seed {seed}"));
        assert_bit_identical_to_legacy(&t, &format!("gen seed {seed}"));
    }
}

#[test]
fn fault_injected_traces_keep_engine_agreement() {
    let kinds = [
        ViolationKind::CorruptReadValue,
        ViolationKind::StaleRead,
        ViolationKind::LostWrite,
        ViolationKind::ReorderAdjacent,
    ];
    let mut mutated = 0u32;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..3u64 {
            let (t, _) = gen_sc_trace(&GenConfig {
                procs: 3,
                total_ops: 12,
                addrs: 2,
                value_reuse: 0.6,
                seed: 61_000 + seed,
                ..Default::default()
            });
            if let Some((bad, _)) = inject_violation(&t, kind, 9_500 + seed) {
                assert_engine_agreement(&bad, &format!("fault {k} seed {seed}"));
                assert_bit_identical_to_legacy(&bad, &format!("fault {k} seed {seed}"));
                mutated += 1;
            }
        }
    }
    assert!(mutated >= 6, "too few injected traces: {mutated}");
}

#[test]
fn random_traces_keep_engine_agreement() {
    let mut rng = StdRng::seed_from_u64(0xAC51_0D1F);
    for case in 0..40u32 {
        let t = arb_trace(&mut rng);
        assert_engine_agreement(&t, &format!("random case {case}"));
        assert_bit_identical_to_legacy(&t, &format!("random case {case}"));
    }
}

#[test]
fn ra_frontline_never_masks_the_exact_verdict() {
    // Wherever the polynomial RA tier decides, the exact graph search and
    // the SAT compiler must agree with it — on litmus *and* random traces.
    let mut rng = StdRng::seed_from_u64(0xFA57_11E5);
    let mut traces: Vec<(String, Trace)> = all_litmus_tests()
        .into_iter()
        .map(|t| (t.name.to_string(), t.trace))
        .collect();
    for case in 0..40u32 {
        traces.push((format!("random {case}"), arb_trace(&mut rng)));
    }
    let mut decided = 0u32;
    for (name, t) in &traces {
        let exact = verify_axiom(
            t,
            ModelId::Ra,
            &AxiomConfig {
                tier: TierConfig::exact_only(),
                ..AxiomConfig::default()
            },
        )
        .verdict;
        if let FastOutcome::Decided(fast) = ra_fast::try_decide(t) {
            decided += 1;
            assert_eq!(
                fast.is_consistent(),
                exact.is_consistent(),
                "{name}: RA fast tier masks the exact verdict"
            );
        }
        // Through the public tiered entry point as well.
        let tiered = verify_axiom(t, ModelId::Ra, &AxiomConfig::default()).verdict;
        assert_eq!(
            tiered.is_consistent(),
            exact.is_consistent(),
            "{name}: tiered RA drifts from exact-only"
        );
    }
    assert!(decided >= 10, "fast tier decided only {decided} traces");
}

#[test]
fn ra_fast_tier_decides_healthy_unique_value_traces() {
    // The decision-rate contract behind the verify.sh gate: on healthy
    // generated traces with no value reuse every read has a unique writer
    // candidate, so the polynomial tier must decide ≥ 90% of them.
    let total = 30u32;
    let mut decided = 0u32;
    for seed in 0..u64::from(total) {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 16,
            addrs: 3,
            value_reuse: 0.0,
            seed: 62_000 + seed,
            ..Default::default()
        });
        match ra_fast::try_decide(&t) {
            FastOutcome::Decided(v) => {
                assert!(v.is_consistent(), "healthy SC trace refuted under RA");
                decided += 1;
            }
            FastOutcome::Escalate => {}
        }
    }
    assert!(
        decided * 10 >= total * 9,
        "RA fast tier decided only {decided}/{total} healthy traces"
    );
}

#[test]
fn graph_models_respect_budgets_deterministically() {
    // The graph-backed models (RA, ARM-dob) honour the same budget
    // contract as the buffer machines: explicit Unknown with real
    // progress, bit-identical across repeated runs.
    let (t, _) = gen_sc_trace(&GenConfig {
        procs: 3,
        total_ops: 14,
        addrs: 2,
        value_reuse: 0.7,
        seed: 63_001,
        ..Default::default()
    });
    for id in [ModelId::Ra, ModelId::ArmDob] {
        for budget in [1u64, 4, 32] {
            let cfg = AxiomConfig {
                kernel: KernelConfig::with_budget(budget),
                tier: TierConfig::exact_only(),
                ..AxiomConfig::default()
            };
            let r1 = verify_axiom(&t, id, &cfg);
            let r2 = verify_axiom(&t, id, &cfg);
            assert_eq!(r1.verdict, r2.verdict, "{} budget={budget}", id.name());
            assert_eq!(r1.stats, r2.stats, "{} budget={budget}", id.name());
            if r1.verdict.unknown_stats().is_some() {
                assert!(r1.stats.states > budget, "{} stopped early", id.name());
            }
        }
    }
}
