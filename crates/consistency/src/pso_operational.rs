//! An **operational** PSO checker, mirroring
//! [`crate::tso_operational`]: exhaustive search over machine states of an
//! idealized Partial-Store-Order multiprocessor.
//!
//! PSO's store buffer keeps stores to the *same* address in FIFO order but
//! lets stores to different addresses drain in any order — modelled here as
//! one FIFO queue per (processor, address slot). Loads take the memory
//! value and stall on a buffered store to their address (no forwarding, as
//! in the TSO machine); atomic RMWs drain the whole buffer and take effect
//! immediately. Differential tests pin this operational semantics to the
//! axiomatic [`crate::MemoryModel::Pso`] (write→write and write→read to
//! different addresses relaxed). The search — memoized DFS with budgets,
//! cancellation, statistics and observability — is
//! [`vermem_coherence::kernel`]; this module only defines the machine.

use crate::machine::{outcome_to_verdict, MachineBase};
use crate::verdict::ConsistencyVerdict;
use crate::vsc::precheck_sc;
use std::collections::VecDeque;
use vermem_coherence::kernel::{run_search, KernelConfig, KernelOutcome, TransitionSystem};
use vermem_coherence::SearchStats;
use vermem_trace::{Op, OpRef, Schedule, Trace, Value};
use vermem_util::pool::CancelToken;

/// Decide operational-PSO reachability of `trace`. The witness is the
/// commit order (loads at issue, stores at drain).
pub fn solve_pso_operational(trace: &Trace, cfg: &KernelConfig) -> ConsistencyVerdict {
    solve_pso_operational_with_stats(trace, cfg, None).0
}

/// [`solve_pso_operational`] with kernel [`SearchStats`] and cooperative
/// cancellation.
pub fn solve_pso_operational_with_stats(
    trace: &Trace,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    if let Some(v) = precheck_sc(trace) {
        return (ConsistencyVerdict::Violating(v), SearchStats::default());
    }
    let nprocs = trace.num_procs();
    let nslots = trace.addresses().len();
    let mut sys = PsoMachine {
        base: MachineBase::new(trace),
        queues: vec![vec![VecDeque::new(); nslots]; nprocs],
        buffered: vec![0; nprocs],
    };
    let (outcome, stats) = run_search(&mut sys, cfg, cancel);
    if let KernelOutcome::Accepted(commits) = &outcome {
        let witness = Schedule::from_refs(commits.iter().copied());
        debug_assert!(
            crate::models::check_model_schedule(trace, crate::MemoryModel::Pso, &witness).is_ok(),
            "operational PSO produced an invalid commit order"
        );
    }
    (outcome_to_verdict(outcome, stats), stats)
}

/// The PSO store-buffer machine: one FIFO queue of `(value, program index)`
/// per (process, slot), plus a per-process buffered-store count for O(1)
/// RMW empty-buffer checks.
struct PsoMachine {
    base: MachineBase,
    queues: Vec<Vec<VecDeque<(Value, u32)>>>,
    buffered: Vec<u32>,
}

/// One state-changing PSO move, with undo state captured at enumeration.
#[derive(Clone, Copy)]
enum PsoMove {
    /// Drain the head of `p`'s queue for `slot` (the captured entry);
    /// `saved` is the memory value it overwrites.
    Drain {
        p: u16,
        slot: u32,
        value: Value,
        index: u32,
        saved: Value,
    },
    /// Issue process `p`'s next instruction (a `Write` entering its
    /// per-address queue, or an enabled `Rmw`; `saved` is meaningful only
    /// for the latter). Loads commit through kernel absorption.
    Issue { p: u16, saved: Value },
}

impl TransitionSystem for PsoMachine {
    type Move = PsoMove;

    fn total_commits(&self) -> usize {
        self.base.total
    }

    fn accepting(&self) -> bool {
        // Every commit implies every store drained: buffers are empty here.
        debug_assert!(self.buffered.iter().all(|&n| n == 0));
        self.base.finals_ok()
    }

    fn absorb(&mut self, commits: &mut Vec<OpRef>) {
        for p in 0..self.base.frontier.len() {
            while let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Read { addr, value } => {
                        let s = self.base.slot(addr);
                        if self.queues[p][s as usize].is_empty()
                            && self.base.memory[s as usize] == value
                        {
                            commits.push(self.base.op_ref(p));
                            self.base.frontier[p] += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    fn retract_read(&mut self, r: OpRef) {
        let p = r.proc.0 as usize;
        self.base.frontier[p] -= 1;
        debug_assert_eq!(self.base.frontier[p], r.index);
    }

    fn infeasible(&self) -> bool {
        self.base.demand_infeasible()
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        self.base.key_base(key);
        for qs in &self.queues {
            let nonempty = qs.iter().filter(|q| !q.is_empty()).count();
            key.push(nonempty as u64);
            for (slot, q) in qs.iter().enumerate() {
                if q.is_empty() {
                    continue;
                }
                key.push(((slot as u64) << 32) | q.len() as u64);
                for &(value, index) in q {
                    key.push(value.0);
                    key.push(u64::from(index));
                }
            }
        }
    }

    fn enabled_moves(&self, moves: &mut Vec<PsoMove>) {
        let demanded = self.base.demanded();
        for p in 0..self.base.frontier.len() {
            // Drains: the head of any non-empty per-address queue, in
            // ascending slot order.
            for (slot, q) in self.queues[p].iter().enumerate() {
                if let Some(&(value, index)) = q.front() {
                    moves.push(PsoMove::Drain {
                        p: p as u16,
                        slot: slot as u32,
                        value,
                        index,
                        saved: self.base.memory[slot],
                    });
                }
            }
            if let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Write { .. } => moves.push(PsoMove::Issue {
                        p: p as u16,
                        saved: Value::INITIAL, // unused for writes
                    }),
                    Op::Rmw { addr, read, .. } => {
                        // Atomics drain the whole buffer first, then take
                        // effect immediately.
                        let s = self.base.slot(addr);
                        if self.buffered[p] == 0 && self.base.memory[s as usize] == read {
                            moves.push(PsoMove::Issue {
                                p: p as u16,
                                saved: self.base.memory[s as usize],
                            });
                        }
                    }
                    Op::Read { .. } => {} // absorption only
                }
            }
        }
        // Memory-effecting moves that supply a demanded value first.
        moves.sort_by_key(|m| {
            let hot = match *m {
                PsoMove::Drain { slot, value, .. } => demanded.contains(&(slot, value)),
                PsoMove::Issue { p, .. } => match self.base.next_op(p as usize) {
                    Some(Op::Rmw { addr, write, .. }) => {
                        demanded.contains(&(self.base.slot(addr), write))
                    }
                    _ => false,
                },
            };
            std::cmp::Reverse(hot)
        });
    }

    fn apply(&mut self, mv: PsoMove) -> Option<OpRef> {
        match mv {
            PsoMove::Drain {
                p,
                slot,
                value,
                index,
                ..
            } => {
                let popped = self.queues[p as usize][slot as usize].pop_front();
                debug_assert_eq!(popped, Some((value, index)));
                self.buffered[p as usize] -= 1;
                self.base.memory[slot as usize] = value;
                self.base.take_supply(slot, value);
                Some(OpRef::new(p, index))
            }
            PsoMove::Issue { p, .. } => {
                let p = p as usize;
                let op = self.base.next_op(p).expect("enabled");
                let index = self.base.frontier[p];
                self.base.frontier[p] += 1;
                match op {
                    Op::Write { addr, value } => {
                        let s = self.base.slot(addr);
                        self.queues[p][s as usize].push_back((value, index));
                        self.buffered[p] += 1;
                        None // commits at drain
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.memory[s as usize] = write;
                        self.base.take_supply(s, write);
                        Some(OpRef::new(p as u16, index))
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }

    fn undo(&mut self, mv: PsoMove) {
        match mv {
            PsoMove::Drain {
                p,
                slot,
                value,
                index,
                saved,
            } => {
                self.base.put_supply(slot, value);
                self.base.memory[slot as usize] = saved;
                self.queues[p as usize][slot as usize].push_front((value, index));
                self.buffered[p as usize] += 1;
            }
            PsoMove::Issue { p, saved } => {
                let p = p as usize;
                self.base.frontier[p] -= 1;
                match self.base.next_op(p).expect("applied") {
                    Op::Write { addr, .. } => {
                        let s = self.base.slot(addr);
                        self.queues[p][s as usize].pop_back();
                        self.buffered[p] -= 1;
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.put_supply(s, write);
                        self.base.memory[s as usize] = saved;
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MemoryModel;
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    fn operational(t: &Trace) -> bool {
        solve_pso_operational(t, &KernelConfig::default()).is_consistent()
    }

    fn axiomatic(t: &Trace) -> bool {
        solve_model_sat(t, MemoryModel::Pso).is_consistent()
    }

    #[test]
    fn message_passing_reordering_reachable_under_pso() {
        // MP relaxed outcome requires W→W reordering: PSO yes, TSO no.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(operational(&t));
        assert!(axiomatic(&t));
        assert!(!solve_model_sat(&t, MemoryModel::Tso).is_consistent());
    }

    #[test]
    fn load_buffering_stays_unreachable() {
        let t = TraceBuilder::new()
            .proc([Op::read(1u32, 1u64), Op::write(0u32, 1u64)])
            .proc([Op::read(0u32, 1u64), Op::write(1u32, 1u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn same_address_store_order_preserved() {
        // CoWW: program-ordered same-address stores cannot commit reversed.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn tiny_budget_answers_unknown_with_stats() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::write(1u32, 1u64),
                Op::read(2u32, 0u64),
            ])
            .proc([
                Op::write(1u32, 2u64),
                Op::write(2u32, 1u64),
                Op::read(0u32, 0u64),
            ])
            .proc([
                Op::write(2u32, 2u64),
                Op::write(0u32, 2u64),
                Op::read(1u32, 0u64),
            ])
            .build();
        match solve_pso_operational(&t, &KernelConfig::with_budget(1)) {
            ConsistencyVerdict::Unknown { stats } => assert!(stats.states >= 1),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn litmus_suite_matches_axiomatic_model() {
        for test in crate::litmus::all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Pso];
            assert_eq!(
                operational(&test.trace),
                expected,
                "operational PSO disagrees on {}",
                test.name
            );
        }
    }

    #[test]
    fn agrees_with_axiomatic_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(700_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..5) {
                            0 | 1 => Op::read(a, v),
                            2 | 3 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            assert_eq!(
                operational(&t),
                axiomatic(&t),
                "operational vs axiomatic PSO divergence on seed {seed}: {t:?}"
            );
        }
    }
}
