//! An **operational** PSO checker, mirroring
//! [`crate::tso_operational`]: exhaustive search over machine states of an
//! idealized Partial-Store-Order multiprocessor.
//!
//! PSO's store buffer keeps stores to the *same* address in FIFO order but
//! lets stores to different addresses drain in any order — modelled as one
//! FIFO queue per (processor, address slot). Loads take the memory value
//! and stall on a buffered store to their address (no forwarding, as in
//! the TSO machine); atomic RMWs drain the whole buffer and take effect
//! immediately. Since the axiom refactor the machine is *compiled* from
//! [`crate::axiom::PSO_SPEC`] — the relaxed store→store entries in its
//! enforcement table select the per-slot-FIFO buffer lowering — and this
//! module only keeps the entry points. Differential tests pin the
//! compiled semantics to the axiomatic [`crate::MemoryModel::Pso`]
//! (write→write and write→read to different addresses relaxed) and to the
//! verbatim pre-refactor machine in `crate::legacy`.

use crate::axiom::{solve_compiled_with_stats, ModelId};
use crate::verdict::ConsistencyVerdict;
use vermem_coherence::kernel::KernelConfig;
use vermem_coherence::SearchStats;
use vermem_trace::Trace;
use vermem_util::pool::CancelToken;

/// Decide operational-PSO reachability of `trace`. The witness is the
/// commit order (loads at issue, stores at drain).
pub fn solve_pso_operational(trace: &Trace, cfg: &KernelConfig) -> ConsistencyVerdict {
    solve_pso_operational_with_stats(trace, cfg, None).0
}

/// [`solve_pso_operational`] with kernel [`SearchStats`] and cooperative
/// cancellation.
pub fn solve_pso_operational_with_stats(
    trace: &Trace,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    solve_compiled_with_stats(trace, ModelId::Pso, cfg, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MemoryModel;
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    fn operational(t: &Trace) -> bool {
        solve_pso_operational(t, &KernelConfig::default()).is_consistent()
    }

    fn axiomatic(t: &Trace) -> bool {
        solve_model_sat(t, MemoryModel::Pso).is_consistent()
    }

    #[test]
    fn message_passing_reordering_reachable_under_pso() {
        // MP relaxed outcome requires W→W reordering: PSO yes, TSO no.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(operational(&t));
        assert!(axiomatic(&t));
        assert!(!solve_model_sat(&t, MemoryModel::Tso).is_consistent());
    }

    #[test]
    fn load_buffering_stays_unreachable() {
        let t = TraceBuilder::new()
            .proc([Op::read(1u32, 1u64), Op::write(0u32, 1u64)])
            .proc([Op::read(0u32, 1u64), Op::write(1u32, 1u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn same_address_store_order_preserved() {
        // CoWW: program-ordered same-address stores cannot commit reversed.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn tiny_budget_answers_unknown_with_stats() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::write(1u32, 1u64),
                Op::read(2u32, 0u64),
            ])
            .proc([
                Op::write(1u32, 2u64),
                Op::write(2u32, 1u64),
                Op::read(0u32, 0u64),
            ])
            .proc([
                Op::write(2u32, 2u64),
                Op::write(0u32, 2u64),
                Op::read(1u32, 0u64),
            ])
            .build();
        match solve_pso_operational(&t, &KernelConfig::with_budget(1)) {
            ConsistencyVerdict::Unknown { stats } => assert!(stats.states >= 1),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn litmus_suite_matches_axiomatic_model() {
        for test in crate::litmus::all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Pso];
            assert_eq!(
                operational(&test.trace),
                expected,
                "operational PSO disagrees on {}",
                test.name
            );
        }
    }

    #[test]
    fn agrees_with_axiomatic_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(700_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..5) {
                            0 | 1 => Op::read(a, v),
                            2 | 3 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            assert_eq!(
                operational(&t),
                axiomatic(&t),
                "operational vs axiomatic PSO divergence on seed {seed}: {t:?}"
            );
        }
    }
}
