//! An **operational** PSO checker, mirroring
//! [`crate::tso_operational`]: exhaustive search over machine states of an
//! idealized Partial-Store-Order multiprocessor.
//!
//! PSO's store buffer keeps stores to the *same* address in FIFO order but
//! lets stores to different addresses drain in any order — modelled here as
//! one FIFO queue per (processor, address). Loads take the memory value and
//! stall on a buffered store to their address (no forwarding, as in the TSO
//! machine); atomic RMWs drain the whole buffer and take effect
//! immediately. Differential tests pin this operational semantics to the
//! axiomatic [`crate::MemoryModel::Pso`] (write→write and write→read to
//! different addresses relaxed).

use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use crate::vsc::precheck_sc;
use std::collections::{BTreeMap, HashSet, VecDeque};
use vermem_trace::{Addr, Op, Schedule, Trace, Value};

/// Budget for the operational search.
#[derive(Clone, Copy, Debug, Default)]
pub struct PsoConfig {
    /// Maximum distinct states to visit before answering
    /// [`ConsistencyVerdict::Unknown`]. `None` = unlimited.
    pub max_states: Option<u64>,
}

type Buffers = Vec<BTreeMap<Addr, VecDeque<(Value, u32)>>>;

/// Decide operational-PSO reachability of `trace`. The witness is the
/// commit order (loads at issue, stores at drain).
pub fn solve_pso_operational(trace: &Trace, cfg: &PsoConfig) -> ConsistencyVerdict {
    if let Some(v) = precheck_sc(trace) {
        return ConsistencyVerdict::Violating(v);
    }

    let per_proc: Vec<Vec<Op>> = trace
        .histories()
        .iter()
        .map(|h| h.iter().collect())
        .collect();
    let total: usize = per_proc.iter().map(Vec::len).sum();

    let mut memory: BTreeMap<Addr, Value> = BTreeMap::new();
    for addr in trace.addresses() {
        memory.insert(addr, trace.initial(addr));
    }

    let mut search = PsoSearch {
        trace,
        per_proc: &per_proc,
        total,
        visited: HashSet::new(),
        commits: Vec::with_capacity(total),
        states: 0,
        max_states: cfg.max_states,
        budget_hit: false,
    };
    let mut frontier = vec![0u32; per_proc.len()];
    let mut buffers: Buffers = vec![BTreeMap::new(); per_proc.len()];
    let found = search.dfs(&mut frontier, &mut buffers, &mut memory);
    let budget_hit = search.budget_hit;
    let commits = std::mem::take(&mut search.commits);

    if found {
        let witness: Schedule = commits
            .into_iter()
            .map(|(p, i)| vermem_trace::OpRef::new(p as u16, i))
            .collect();
        debug_assert!(
            crate::models::check_model_schedule(trace, crate::MemoryModel::Pso, &witness).is_ok(),
            "operational PSO produced an invalid commit order"
        );
        ConsistencyVerdict::Consistent(witness)
    } else if budget_hit {
        ConsistencyVerdict::Unknown
    } else {
        ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        })
    }
}

type StateKey = (Vec<u32>, Vec<Vec<(u32, u64, u32)>>, Vec<(u32, u64)>);

struct PsoSearch<'a> {
    trace: &'a Trace,
    per_proc: &'a [Vec<Op>],
    total: usize,
    visited: HashSet<StateKey>,
    commits: Vec<(usize, u32)>,
    states: u64,
    max_states: Option<u64>,
    budget_hit: bool,
}

impl PsoSearch<'_> {
    fn state_key(frontier: &[u32], buffers: &Buffers, memory: &BTreeMap<Addr, Value>) -> StateKey {
        (
            frontier.to_vec(),
            buffers
                .iter()
                .map(|qs| {
                    qs.iter()
                        .flat_map(|(&a, q)| q.iter().map(move |&(v, i)| (a.0, v.0, i)))
                        .collect()
                })
                .collect(),
            memory.iter().map(|(&a, &v)| (a.0, v.0)).collect(),
        )
    }

    fn buffers_empty(buffers: &Buffers, p: usize) -> bool {
        buffers[p].values().all(VecDeque::is_empty)
    }

    fn dfs(
        &mut self,
        frontier: &mut Vec<u32>,
        buffers: &mut Buffers,
        memory: &mut BTreeMap<Addr, Value>,
    ) -> bool {
        if self.commits.len() == self.total
            && (0..buffers.len()).all(|p| Self::buffers_empty(buffers, p))
        {
            return self
                .trace
                .final_values()
                .iter()
                .all(|(addr, v)| memory.get(addr) == Some(v));
        }

        let key = Self::state_key(frontier, buffers, memory);
        if !self.visited.insert(key) {
            return false;
        }
        self.states += 1;
        if let Some(max) = self.max_states {
            if self.states > max {
                self.budget_hit = true;
                return false;
            }
        }

        for p in 0..frontier.len() {
            // Move 1: drain the head of any per-address queue.
            let drainable: Vec<Addr> = buffers[p]
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(&a, _)| a)
                .collect();
            for addr in drainable {
                let (value, index) = *buffers[p]
                    .get(&addr)
                    .and_then(VecDeque::front)
                    .expect("non-empty");
                let saved = memory.get(&addr).copied();
                buffers[p].get_mut(&addr).expect("present").pop_front();
                memory.insert(addr, value);
                self.commits.push((p, index));
                if self.dfs(frontier, buffers, memory) {
                    return true;
                }
                self.commits.pop();
                match saved {
                    Some(v) => memory.insert(addr, v),
                    None => memory.remove(&addr),
                };
                buffers[p]
                    .get_mut(&addr)
                    .expect("present")
                    .push_front((value, index));
            }

            // Move 2: issue the next instruction.
            let Some(&op) = self.per_proc[p].get(frontier[p] as usize) else {
                continue;
            };
            let index = frontier[p];
            match op {
                Op::Read { addr, value } => {
                    let blocked = buffers[p].get(&addr).is_some_and(|q| !q.is_empty());
                    let current = memory.get(&addr).copied().unwrap_or(Value::INITIAL);
                    if !blocked && current == value {
                        frontier[p] += 1;
                        self.commits.push((p, index));
                        if self.dfs(frontier, buffers, memory) {
                            return true;
                        }
                        self.commits.pop();
                        frontier[p] -= 1;
                    }
                }
                Op::Write { addr, value } => {
                    frontier[p] += 1;
                    buffers[p]
                        .entry(addr)
                        .or_default()
                        .push_back((value, index));
                    if self.dfs(frontier, buffers, memory) {
                        return true;
                    }
                    buffers[p].get_mut(&addr).expect("pushed").pop_back();
                    frontier[p] -= 1;
                }
                Op::Rmw { addr, read, write } => {
                    if Self::buffers_empty(buffers, p) {
                        let current = memory.get(&addr).copied().unwrap_or(Value::INITIAL);
                        if current == read {
                            let saved = memory.insert(addr, write);
                            frontier[p] += 1;
                            self.commits.push((p, index));
                            if self.dfs(frontier, buffers, memory) {
                                return true;
                            }
                            self.commits.pop();
                            frontier[p] -= 1;
                            match saved {
                                Some(v) => memory.insert(addr, v),
                                None => memory.remove(&addr),
                            };
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MemoryModel;
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    fn operational(t: &Trace) -> bool {
        solve_pso_operational(t, &PsoConfig::default()).is_consistent()
    }

    fn axiomatic(t: &Trace) -> bool {
        solve_model_sat(t, MemoryModel::Pso).is_consistent()
    }

    #[test]
    fn message_passing_reordering_reachable_under_pso() {
        // MP relaxed outcome requires W→W reordering: PSO yes, TSO no.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(operational(&t));
        assert!(axiomatic(&t));
        assert!(!solve_model_sat(&t, MemoryModel::Tso).is_consistent());
    }

    #[test]
    fn load_buffering_stays_unreachable() {
        let t = TraceBuilder::new()
            .proc([Op::read(1u32, 1u64), Op::write(0u32, 1u64)])
            .proc([Op::read(0u32, 1u64), Op::write(1u32, 1u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn same_address_store_order_preserved() {
        // CoWW: program-ordered same-address stores cannot commit reversed.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn litmus_suite_matches_axiomatic_model() {
        for test in crate::litmus::all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Pso];
            assert_eq!(
                operational(&test.trace),
                expected,
                "operational PSO disagrees on {}",
                test.name
            );
        }
    }

    #[test]
    fn agrees_with_axiomatic_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(700_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..5) {
                            0 | 1 => Op::read(a, v),
                            2 | 3 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            assert_eq!(
                operational(&t),
                axiomatic(&t),
                "operational vs axiomatic PSO divergence on seed {seed}: {t:?}"
            );
        }
    }
}
