//! Lazy Release Consistency support (§6.2, Figure 6.1).
//!
//! LRC *relaxes the coherence requirement itself*, so it cannot be expressed
//! as a program-order relaxation over a single serialization (the
//! [`crate::models`] framework). What LRC does guarantee — and what the
//! paper's Figure 6.1 construction exploits — is that operations protected
//! by acquire/release synchronization on a common lock appear serialized.
//!
//! This module models traces with explicit synchronization and implements
//! the checker for the *fully synchronized* shape the reduction produces:
//! when every memory operation is individually bracketed by an
//! acquire/release of one common lock, LRC adherence of the execution is
//! exactly per-address coherence of the underlying memory operations, which
//! we decide with `vermem-coherence`. The Figure 6.1 construction itself
//! lives in `vermem-reductions`.

use vermem_coherence::ExecutionVerdict;
use vermem_trace::{Op, Trace};

/// A lock identifier for acquire/release operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// An operation in a synchronized history: a memory operation or an
/// acquire/release of a lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncOp {
    /// Acquire a lock.
    Acquire(LockId),
    /// Release a lock.
    Release(LockId),
    /// An ordinary memory operation.
    Mem(Op),
}

/// A per-process history with synchronization operations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncHistory {
    ops: Vec<SyncOp>,
}

impl SyncHistory {
    /// Build from a sequence.
    pub fn from_ops(ops: impl IntoIterator<Item = SyncOp>) -> Self {
        SyncHistory {
            ops: ops.into_iter().collect(),
        }
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[SyncOp] {
        &self.ops
    }

    /// Append an operation.
    pub fn push(&mut self, op: SyncOp) {
        self.ops.push(op);
    }

    /// Wrap a memory operation in `Acquire(lock) … Release(lock)` and append
    /// the triple (the Figure 6.1 pattern).
    pub fn push_synchronized(&mut self, lock: LockId, op: Op) {
        self.ops.push(SyncOp::Acquire(lock));
        self.ops.push(SyncOp::Mem(op));
        self.ops.push(SyncOp::Release(lock));
    }
}

/// A synchronized execution trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncTrace {
    histories: Vec<SyncHistory>,
}

impl SyncTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a process history.
    pub fn push_history(&mut self, history: SyncHistory) {
        self.histories.push(history);
    }

    /// The process histories.
    pub fn histories(&self) -> &[SyncHistory] {
        &self.histories
    }

    /// True if every memory operation is immediately bracketed by an
    /// acquire/release pair of the single lock `lock` — the shape the
    /// Figure 6.1 reduction emits, under which LRC forces serialization.
    pub fn is_fully_synchronized(&self, lock: LockId) -> bool {
        for h in &self.histories {
            let ops = h.ops();
            if ops.len() % 3 != 0 {
                return false;
            }
            for chunk in ops.chunks(3) {
                match chunk {
                    [SyncOp::Acquire(a), SyncOp::Mem(_), SyncOp::Release(r)]
                        if *a == lock && *r == lock => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// The underlying memory trace with synchronization stripped.
    pub fn strip_sync(&self) -> Trace {
        Trace::from_histories(self.histories.iter().map(|h| {
            h.ops()
                .iter()
                .filter_map(|op| match op {
                    SyncOp::Mem(m) => Some(*m),
                    _ => None,
                })
                .collect()
        }))
    }
}

/// Why an LRC check could not run or failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LrcError {
    /// The trace is not in the fully-synchronized shape this checker
    /// supports (general LRC verification is NP-hard by §6.2 and requires a
    /// full happens-before machinery out of scope here).
    NotFullySynchronized,
}

impl std::fmt::Display for LrcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LrcError::NotFullySynchronized => {
                write!(f, "trace is not fully synchronized on a single lock")
            }
        }
    }
}

impl std::error::Error for LrcError {}

/// Decide LRC adherence of a fully synchronized trace: under LRC, critical
/// sections of one lock are serialized, so the memory operations must admit
/// per-address coherent schedules — exactly coherence of the stripped
/// trace.
pub fn verify_lrc_fully_synchronized(
    trace: &SyncTrace,
    lock: LockId,
) -> Result<ExecutionVerdict, LrcError> {
    if !trace.is_fully_synchronized(lock) {
        return Err(LrcError::NotFullySynchronized);
    }
    Ok(vermem_coherence::verify_execution(&trace.strip_sync()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LockId = LockId(0);

    fn synced(hists: Vec<Vec<Op>>) -> SyncTrace {
        let mut t = SyncTrace::new();
        for ops in hists {
            let mut h = SyncHistory::default();
            for op in ops {
                h.push_synchronized(L, op);
            }
            t.push_history(h);
        }
        t
    }

    #[test]
    fn fully_synchronized_shape_detected() {
        let t = synced(vec![vec![Op::w(1u64)], vec![Op::r(1u64)]]);
        assert!(t.is_fully_synchronized(L));
        assert!(!t.is_fully_synchronized(LockId(9)));

        let mut loose = SyncTrace::new();
        loose.push_history(SyncHistory::from_ops([SyncOp::Mem(Op::w(1u64))]));
        assert!(!loose.is_fully_synchronized(L));
    }

    #[test]
    fn strip_sync_preserves_program_order() {
        let t = synced(vec![vec![Op::w(1u64), Op::r(1u64)]]);
        let stripped = t.strip_sync();
        assert_eq!(stripped.histories()[0].ops(), &[Op::w(1u64), Op::r(1u64)]);
    }

    #[test]
    fn lrc_check_is_coherence_of_stripped_trace() {
        let good = synced(vec![vec![Op::w(1u64)], vec![Op::r(1u64)]]);
        assert!(verify_lrc_fully_synchronized(&good, L)
            .unwrap()
            .is_coherent());

        let bad = synced(vec![vec![Op::w(1u64)], vec![Op::r(9u64)]]);
        assert!(!verify_lrc_fully_synchronized(&bad, L)
            .unwrap()
            .is_coherent());
    }

    #[test]
    fn unsynchronized_trace_rejected() {
        let mut t = SyncTrace::new();
        t.push_history(SyncHistory::from_ops([
            SyncOp::Acquire(L),
            SyncOp::Mem(Op::w(1u64)),
            // missing release
        ]));
        assert_eq!(
            verify_lrc_fully_synchronized(&t, L).unwrap_err(),
            LrcError::NotFullySynchronized
        );
    }
}
