//! Verifying Sequential Consistency (VSC, Definition 6.1): exact decision
//! by memoized backtracking over global interleavings.
//!
//! The search generalizes the single-address VMC search: state is the
//! per-process frontier plus the current value of every touched address;
//! reads that match their address's current value are absorbed greedily
//! (the same exchange argument as for coherence applies per address).
//! VSC is NP-complete (Gibbons & Korach; also by restriction from VMC,
//! §6.1), so worst-case exponential behaviour is unavoidable.
//!
//! Since the axiom refactor this module holds only the per-address
//! precheck and the SC entry points; the machine itself is *compiled*
//! from [`crate::axiom::SC_SPEC`] by [`crate::axiom`]'s operational
//! compiler onto [`vermem_coherence::kernel`] — the same engine that runs
//! the production VMC search. The pre-refactor hand-written machine
//! survives verbatim in `crate::legacy` as the ablation baseline, and
//! the differential suite pins the two bit-identical.

use crate::axiom::{solve_compiled_with_stats, ModelId};
use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use vermem_coherence::kernel::KernelConfig;
use vermem_coherence::SearchStats;
use vermem_trace::Trace;
use vermem_util::pool::CancelToken;

/// Static prechecks: per-address unreadable values / unproducible finals.
pub fn precheck_sc(trace: &Trace) -> Option<ConsistencyViolation> {
    for addr in trace.addresses() {
        if let Some(v) = vermem_coherence::backtrack::precheck(trace, addr) {
            return Some(ConsistencyViolation {
                class: ViolationClass::PerAddressCoherence(v),
            });
        }
    }
    None
}

/// Decide sequential consistency of `trace` by exhaustive memoized search.
pub fn solve_sc_backtracking(trace: &Trace, cfg: &KernelConfig) -> ConsistencyVerdict {
    solve_sc_backtracking_with_stats(trace, cfg, None).0
}

/// [`solve_sc_backtracking`] with kernel [`SearchStats`] and cooperative
/// cancellation.
pub fn solve_sc_backtracking_with_stats(
    trace: &Trace,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    solve_compiled_with_stats(trace, ModelId::Sc, cfg, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{check_sc_schedule, Op, OpRef, Schedule, TraceBuilder, Value};

    fn solve(t: &Trace) -> ConsistencyVerdict {
        solve_sc_backtracking(t, &KernelConfig::default())
    }

    #[test]
    fn empty_is_sc() {
        assert!(solve(&Trace::new()).is_consistent());
    }

    #[test]
    fn message_passing_pass_outcome_is_sc() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 1u64)])
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("SC");
        check_sc_schedule(&t, s).unwrap();
    }

    #[test]
    fn message_passing_violation_not_sc() {
        // R(y)=1 but then R(x)=0: forbidden under SC (and TSO).
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve(&t).is_violating());
    }

    #[test]
    fn store_buffering_violation_not_sc() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve(&t).is_violating());
    }

    #[test]
    fn iriw_violation_not_sc() {
        // IRIW: writers W(x,1), W(y,1); readers see them in opposite orders.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(1u32, 1u64)])
            .proc([Op::read(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve(&t).is_violating());
    }

    #[test]
    fn final_values_respected() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("orderable");
        assert_eq!(
            t.op(*s.refs().last().unwrap()).unwrap().written_value(),
            Some(Value(1))
        );
    }

    #[test]
    fn per_address_precheck_fires() {
        let t = TraceBuilder::new().proc([Op::read(3u32, 7u64)]).build();
        match solve(&t) {
            ConsistencyVerdict::Violating(v) => {
                assert!(matches!(v.class, ViolationClass::PerAddressCoherence(_)))
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn tiny_budget_answers_unknown_with_stats() {
        // A contended instance the one-state budget cannot settle.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::write(1u32, 2u64), Op::write(0u32, 2u64)])
            .proc([Op::read(0u32, 2u64), Op::read(1u32, 2u64)])
            .final_value(0u32, 1u64)
            .final_value(1u32, 1u64)
            .build();
        match solve_sc_backtracking(&t, &KernelConfig::with_budget(1)) {
            ConsistencyVerdict::Unknown { stats } => assert!(stats.states >= 1),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn generated_sc_traces_verify() {
        for seed in 0..10 {
            let (t, _) = vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
                procs: 3,
                total_ops: 24,
                addrs: 3,
                seed,
                ..Default::default()
            });
            let v = solve(&t);
            let s = v
                .schedule()
                .unwrap_or_else(|| panic!("seed {seed} must be SC"));
            check_sc_schedule(&t, s).unwrap();
        }
    }

    #[test]
    fn agrees_with_brute_force_on_tiny_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..80u64 {
            let mut rng = StdRng::seed_from_u64(40_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=3);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..2u64);
                        match rng.gen_range(0..3) {
                            0 => Op::read(a, v),
                            1 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..2u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let expected = brute_force_sc(&t);
            assert_eq!(solve(&t).is_consistent(), expected, "seed {seed}: {t:?}");
        }
    }

    #[test]
    fn feasibility_knob_never_changes_verdicts() {
        use vermem_util::rng::StdRng;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(41_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        if rng.gen_range(0..2) == 0 {
                            Op::read(a, v)
                        } else {
                            Op::write(a, v)
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let on = solve_sc_backtracking(&t, &KernelConfig::default());
            let off = solve_sc_backtracking(
                &t,
                &KernelConfig {
                    feasibility: false,
                    ..Default::default()
                },
            );
            assert_eq!(on.is_consistent(), off.is_consistent(), "seed {seed}");
            assert_eq!(on.is_violating(), off.is_violating(), "seed {seed}");
        }
    }

    fn brute_force_sc(trace: &Trace) -> bool {
        fn rec(trace: &Trace, frontier: &mut Vec<u32>, acc: &mut Vec<OpRef>, total: usize) -> bool {
            if acc.len() == total {
                return check_sc_schedule(trace, &Schedule::from_refs(acc.iter().copied())).is_ok();
            }
            for p in 0..frontier.len() {
                if (frontier[p] as usize) < trace.histories()[p].len() {
                    acc.push(OpRef::new(p as u16, frontier[p]));
                    frontier[p] += 1;
                    if rec(trace, frontier, acc, total) {
                        return true;
                    }
                    frontier[p] -= 1;
                    acc.pop();
                }
            }
            false
        }
        let mut frontier = vec![0u32; trace.num_procs()];
        rec(trace, &mut frontier, &mut Vec::new(), trace.num_ops())
    }
}
