//! Verifying Sequential Consistency (VSC, Definition 6.1): exact decision
//! by memoized backtracking over global interleavings.
//!
//! The search generalizes the single-address VMC search: state is the
//! per-process frontier plus the current value of every touched address;
//! reads that match their address's current value are absorbed greedily
//! (the same exchange argument as for coherence applies per address).
//! VSC is NP-complete (Gibbons & Korach; also by restriction from VMC,
//! §6.1), so worst-case exponential behaviour is unavoidable.

use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use std::collections::{BTreeMap, HashMap, HashSet};
use vermem_trace::{check_sc_schedule, Addr, Op, OpRef, Schedule, Trace, Value};

/// Budget for the VSC search.
#[derive(Clone, Copy, Debug, Default)]
pub struct VscConfig {
    /// Maximum distinct states to visit before answering
    /// [`ConsistencyVerdict::Unknown`]. `None` = unlimited.
    pub max_states: Option<u64>,
}

/// Static prechecks: per-address unreadable values / unproducible finals.
pub fn precheck_sc(trace: &Trace) -> Option<ConsistencyViolation> {
    for addr in trace.addresses() {
        if let Some(v) = vermem_coherence::backtrack::precheck(trace, addr) {
            return Some(ConsistencyViolation {
                class: ViolationClass::PerAddressCoherence(v),
            });
        }
    }
    None
}

/// Decide sequential consistency of `trace` by exhaustive memoized search.
pub fn solve_sc_backtracking(trace: &Trace, cfg: &VscConfig) -> ConsistencyVerdict {
    if let Some(v) = precheck_sc(trace) {
        return ConsistencyVerdict::Violating(v);
    }

    let per_proc: Vec<Vec<(OpRef, Op)>> = trace
        .histories()
        .iter()
        .enumerate()
        .map(|(p, h)| {
            h.iter()
                .enumerate()
                .map(|(i, op)| (OpRef::new(p as u16, i as u32), op))
                .collect()
        })
        .collect();
    let total: usize = per_proc.iter().map(|v| v.len()).sum();

    let mut remaining_writes: HashMap<(Addr, Value), u32> = HashMap::new();
    for ops in &per_proc {
        for (_, op) in ops {
            if let Some(v) = op.written_value() {
                *remaining_writes.entry((op.addr(), v)).or_insert(0) += 1;
            }
        }
    }

    let mut memory: BTreeMap<Addr, Value> = BTreeMap::new();
    for addr in trace.addresses() {
        memory.insert(addr, trace.initial(addr));
    }

    let mut search = ScSearch {
        trace,
        per_proc: &per_proc,
        total,
        visited: HashSet::new(),
        schedule: Vec::with_capacity(total),
        max_states: cfg.max_states,
        states: 0,
        budget_hit: false,
    };
    let mut frontier = vec![0u32; per_proc.len()];
    let found = search.dfs(&mut frontier, &mut memory, &mut remaining_writes);
    let budget_hit = search.budget_hit;
    let schedule = std::mem::take(&mut search.schedule);

    if found {
        let witness = Schedule::from_refs(schedule);
        debug_assert!(
            check_sc_schedule(trace, &witness).is_ok(),
            "VSC solver produced invalid witness"
        );
        ConsistencyVerdict::Consistent(witness)
    } else if budget_hit {
        ConsistencyVerdict::Unknown
    } else {
        ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        })
    }
}

struct ScSearch<'a> {
    trace: &'a Trace,
    per_proc: &'a [Vec<(OpRef, Op)>],
    total: usize,
    visited: HashSet<(Vec<u32>, Vec<Value>)>,
    schedule: Vec<OpRef>,
    max_states: Option<u64>,
    states: u64,
    budget_hit: bool,
}

impl ScSearch<'_> {
    fn dfs(
        &mut self,
        frontier: &mut Vec<u32>,
        memory: &mut BTreeMap<Addr, Value>,
        remaining_writes: &mut HashMap<(Addr, Value), u32>,
    ) -> bool {
        // Greedy absorption of reads matching their address's current value.
        let absorbed_base = self.schedule.len();
        loop {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // frontier is mutated by index
            for p in 0..frontier.len() {
                while let Some(&(r, op)) = self.per_proc[p].get(frontier[p] as usize) {
                    match op {
                        Op::Read { addr, value } if memory[&addr] == value => {
                            self.schedule.push(r);
                            frontier[p] += 1;
                            progressed = true;
                        }
                        _ => break,
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let undo = |s: &mut Self, frontier: &mut Vec<u32>| {
            while s.schedule.len() > absorbed_base {
                let r = s.schedule.pop().expect("non-empty");
                frontier[r.proc.0 as usize] -= 1;
            }
        };

        if self.schedule.len() == self.total {
            let finals_ok = self
                .trace
                .final_values()
                .iter()
                .all(|(addr, v)| memory.get(addr) == Some(v));
            if finals_ok {
                return true;
            }
            undo(self, frontier);
            return false;
        }

        let key = (
            frontier.clone(),
            memory.values().copied().collect::<Vec<_>>(),
        );
        if !self.visited.insert(key) {
            undo(self, frontier);
            return false;
        }
        self.states += 1;
        if let Some(max) = self.max_states {
            if self.states > max {
                self.budget_hit = true;
                undo(self, frontier);
                return false;
            }
        }

        // Dead-end: a blocked read needing a value with no remaining writes.
        for (p, &f) in frontier.iter().enumerate() {
            if let Some(&(_, op)) = self.per_proc[p].get(f as usize) {
                if let Some(need) = op.read_value() {
                    let addr = op.addr();
                    if memory[&addr] != need
                        && remaining_writes.get(&(addr, need)).copied().unwrap_or(0) == 0
                    {
                        undo(self, frontier);
                        return false;
                    }
                }
            }
        }

        // Branch over enabled write-capable ops, demanded values first.
        let mut demanded: HashSet<(Addr, Value)> = HashSet::new();
        for (p, &f) in frontier.iter().enumerate() {
            if let Some(&(_, op)) = self.per_proc[p].get(f as usize) {
                if let Some(need) = op.read_value() {
                    if memory[&op.addr()] != need {
                        demanded.insert((op.addr(), need));
                    }
                }
            }
        }
        let mut moves: Vec<(bool, usize, OpRef, Op)> = Vec::new();
        for (p, &f) in frontier.iter().enumerate() {
            if let Some(&(r, op)) = self.per_proc[p].get(f as usize) {
                let enabled = match op {
                    Op::Write { .. } => true,
                    Op::Rmw { addr, read, .. } => memory[&addr] == read,
                    Op::Read { .. } => false,
                };
                if enabled {
                    let hot = op
                        .written_value()
                        .is_some_and(|v| demanded.contains(&(op.addr(), v)));
                    moves.push((hot, p, r, op));
                }
            }
        }
        moves.sort_by_key(|&(hot, ..)| std::cmp::Reverse(hot));

        for (_, p, r, op) in moves {
            let addr = op.addr();
            let written = op.written_value().expect("write-capable");
            let saved = memory[&addr];
            self.schedule.push(r);
            frontier[p] += 1;
            memory.insert(addr, written);
            *remaining_writes.get_mut(&(addr, written)).expect("counted") -= 1;

            if self.dfs(frontier, memory, remaining_writes) {
                return true;
            }

            *remaining_writes.get_mut(&(addr, written)).expect("counted") += 1;
            memory.insert(addr, saved);
            frontier[p] -= 1;
            self.schedule.pop();
        }

        undo(self, frontier);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{Op, TraceBuilder};

    fn solve(t: &Trace) -> ConsistencyVerdict {
        solve_sc_backtracking(t, &VscConfig::default())
    }

    #[test]
    fn empty_is_sc() {
        assert!(solve(&Trace::new()).is_consistent());
    }

    #[test]
    fn message_passing_pass_outcome_is_sc() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 1u64)])
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("SC");
        check_sc_schedule(&t, s).unwrap();
    }

    #[test]
    fn message_passing_violation_not_sc() {
        // R(y)=1 but then R(x)=0: forbidden under SC (and TSO).
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve(&t).is_violating());
    }

    #[test]
    fn store_buffering_violation_not_sc() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve(&t).is_violating());
    }

    #[test]
    fn iriw_violation_not_sc() {
        // IRIW: writers W(x,1), W(y,1); readers see them in opposite orders.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(1u32, 1u64)])
            .proc([Op::read(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve(&t).is_violating());
    }

    #[test]
    fn final_values_respected() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = solve(&t);
        let s = v.schedule().expect("orderable");
        assert_eq!(
            t.op(*s.refs().last().unwrap()).unwrap().written_value(),
            Some(Value(1))
        );
    }

    #[test]
    fn per_address_precheck_fires() {
        let t = TraceBuilder::new().proc([Op::read(3u32, 7u64)]).build();
        match solve(&t) {
            ConsistencyVerdict::Violating(v) => {
                assert!(matches!(v.class, ViolationClass::PerAddressCoherence(_)))
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn generated_sc_traces_verify() {
        for seed in 0..10 {
            let (t, _) = vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
                procs: 3,
                total_ops: 24,
                addrs: 3,
                seed,
                ..Default::default()
            });
            let v = solve(&t);
            let s = v
                .schedule()
                .unwrap_or_else(|| panic!("seed {seed} must be SC"));
            check_sc_schedule(&t, s).unwrap();
        }
    }

    #[test]
    fn agrees_with_brute_force_on_tiny_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..80u64 {
            let mut rng = StdRng::seed_from_u64(40_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=3);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..2u64);
                        match rng.gen_range(0..3) {
                            0 => Op::read(a, v),
                            1 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..2u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let expected = brute_force_sc(&t);
            assert_eq!(solve(&t).is_consistent(), expected, "seed {seed}: {t:?}");
        }
    }

    fn brute_force_sc(trace: &Trace) -> bool {
        fn rec(trace: &Trace, frontier: &mut Vec<u32>, acc: &mut Vec<OpRef>, total: usize) -> bool {
            if acc.len() == total {
                return check_sc_schedule(trace, &Schedule::from_refs(acc.iter().copied())).is_ok();
            }
            for p in 0..frontier.len() {
                if (frontier[p] as usize) < trace.histories()[p].len() {
                    acc.push(OpRef::new(p as u16, frontier[p]));
                    frontier[p] += 1;
                    if rec(trace, frontier, acc, total) {
                        return true;
                    }
                    frontier[p] -= 1;
                    acc.pop();
                }
            }
            false
        }
        let mut frontier = vec![0u32; trace.num_procs()];
        rec(trace, &mut frontier, &mut Vec::new(), trace.num_ops())
    }
}
