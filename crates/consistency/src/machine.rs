//! Shared machinery for the operational consistency machines.
//!
//! The VSC interleaving machine ([`crate::vsc`]) and the TSO/PSO
//! store-buffer machines ([`crate::tso_operational`],
//! [`crate::pso_operational`]) are all instances of the exact-search kernel
//! ([`vermem_coherence::kernel`]): each implements
//! [`vermem_coherence::TransitionSystem`] and inherits the kernel's memo,
//! budget, cancellation, statistics and observability stack. What they
//! share *besides* the kernel — the per-process instruction frontiers, the
//! dense slot-indexed memory, the value-availability supply map and the
//! canonical key prefix — lives here.
//!
//! ## Supply-map semantics
//!
//! `supply[(slot, v)]` counts the *future memory-write events* of value `v`
//! to `slot`: write-capable operations that have not yet taken global
//! effect. Each machine decrements at the moment the write hits memory —
//! at issue for the VSC machine and for RMWs, at drain for buffered stores
//! — so a buffered-but-undrained store still counts as supply. This makes
//! the shared feasibility refutation sound for all three models: a frontier
//! read (or final-value constraint) demanding `(slot, v)` while
//! `memory[slot] != v` and `supply[(slot, v)] == 0` can never be satisfied,
//! because memory can never hold `v` again.

use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use vermem_coherence::kernel::{encode_frontier, frontier_packs, KernelOutcome};
use vermem_coherence::SearchStats;
use vermem_trace::{Addr, Op, OpRef, Schedule, Trace, Value};
use vermem_util::hash::FxHashMap;

/// State shared by every operational consistency machine: program text,
/// frontiers, dense memory, supply accounting and final-value constraints.
pub(crate) struct MachineBase {
    /// Program text, per process.
    pub per_proc: Vec<Vec<Op>>,
    /// Next program index to issue, per process.
    pub frontier: Vec<u32>,
    /// Touched addresses, sorted; index = *slot*.
    pub addrs: Vec<Addr>,
    /// Current memory value, by slot.
    pub memory: Vec<Value>,
    /// Remaining future memory-writes of `(slot, value)` (see module docs).
    pub supply: FxHashMap<(u32, Value), u32>,
    /// Final-value constraints as `(slot, value)`.
    pub finals: Vec<(u32, Value)>,
    /// A final-value constraint names an address no operation touches: the
    /// machines (like their pre-kernel ancestors) can never accept.
    pub finals_unmatched: bool,
    /// Total number of operations (= commits in a complete run).
    pub total: usize,
    /// Whether the frontier packs into a single key word.
    pub packed: bool,
}

impl MachineBase {
    pub(crate) fn new(trace: &Trace) -> MachineBase {
        let per_proc: Vec<Vec<Op>> = trace
            .histories()
            .iter()
            .map(|h| h.iter().collect())
            .collect();
        let total = per_proc.iter().map(Vec::len).sum();
        let addrs = trace.addresses(); // sorted + deduped
        let memory: Vec<Value> = addrs.iter().map(|&a| trace.initial(a)).collect();

        let mut supply: FxHashMap<(u32, Value), u32> = FxHashMap::default();
        for ops in &per_proc {
            for op in ops {
                if let Some(v) = op.written_value() {
                    let slot = addrs.binary_search(&op.addr()).expect("touched") as u32;
                    *supply.entry((slot, v)).or_insert(0) += 1;
                }
            }
        }

        let mut finals = Vec::new();
        let mut finals_unmatched = false;
        for (&a, &v) in trace.final_values() {
            match addrs.binary_search(&a) {
                Ok(slot) => finals.push((slot as u32, v)),
                Err(_) => finals_unmatched = true,
            }
        }

        let packed = frontier_packs(per_proc.iter().map(Vec::len));
        MachineBase {
            frontier: vec![0; per_proc.len()],
            per_proc,
            addrs,
            memory,
            supply,
            finals,
            finals_unmatched,
            total,
            packed,
        }
    }

    /// Slot of a touched address.
    #[inline]
    pub(crate) fn slot(&self, addr: Addr) -> u32 {
        self.addrs.binary_search(&addr).expect("touched address") as u32
    }

    /// The next unissued operation of process `p`, if any.
    #[inline]
    pub(crate) fn next_op(&self, p: usize) -> Option<Op> {
        self.per_proc[p].get(self.frontier[p] as usize).copied()
    }

    /// Reference to the next unissued operation of process `p`.
    #[inline]
    pub(crate) fn op_ref(&self, p: usize) -> OpRef {
        OpRef::new(p as u16, self.frontier[p])
    }

    /// Are the final-value constraints satisfied by current memory?
    pub(crate) fn finals_ok(&self) -> bool {
        !self.finals_unmatched
            && self
                .finals
                .iter()
                .all(|&(s, v)| self.memory[s as usize] == v)
    }

    #[inline]
    pub(crate) fn supply_of(&self, slot: u32, v: Value) -> u32 {
        self.supply.get(&(slot, v)).copied().unwrap_or(0)
    }

    /// Account one write of `(slot, v)` taking global effect.
    #[inline]
    pub(crate) fn take_supply(&mut self, slot: u32, v: Value) {
        *self.supply.get_mut(&(slot, v)).expect("counted") -= 1;
    }

    /// Undo [`MachineBase::take_supply`].
    #[inline]
    pub(crate) fn put_supply(&mut self, slot: u32, v: Value) {
        *self.supply.get_mut(&(slot, v)).expect("counted") += 1;
    }

    /// Sound value-availability refutation, shared by all three models: a
    /// frontier read or final-value constraint demands `(slot, v)` while
    /// memory differs and no future memory-write of `v` remains.
    ///
    /// (An RMW's own write counts toward supply even though it cannot feed
    /// its own read — that only ever *withholds* a prune, never makes one
    /// unsound.)
    pub(crate) fn demand_infeasible(&self) -> bool {
        for p in 0..self.frontier.len() {
            if let Some(op) = self.next_op(p) {
                if let Some(need) = op.read_value() {
                    let s = self.slot(op.addr());
                    if self.memory[s as usize] != need && self.supply_of(s, need) == 0 {
                        return true;
                    }
                }
            }
        }
        self.finals
            .iter()
            .any(|&(s, v)| self.memory[s as usize] != v && self.supply_of(s, v) == 0)
    }

    /// The `(slot, value)` pairs some frontier read is waiting for — used
    /// by the machines to explore supplying moves first.
    pub(crate) fn demanded(&self) -> Vec<(u32, Value)> {
        let mut out = Vec::new();
        for p in 0..self.frontier.len() {
            if let Some(op) = self.next_op(p) {
                if let Some(need) = op.read_value() {
                    let s = self.slot(op.addr());
                    if self.memory[s as usize] != need {
                        out.push((s, need));
                    }
                }
            }
        }
        out
    }

    /// Canonical key prefix common to all machines: the frontier (packed
    /// when the instance shape allows) followed by the fixed-width memory
    /// image. Machines append their buffer state, length-prefixed.
    pub(crate) fn key_base(&self, key: &mut Vec<u64>) {
        encode_frontier(&self.frontier, self.packed, key);
        key.extend(self.memory.iter().map(|v| v.0));
    }
}

/// Map a kernel outcome onto the consistency-verdict vocabulary. `stats`
/// accompany inconclusive outcomes so budget-limited callers can report
/// how far the search got.
pub(crate) fn outcome_to_verdict(outcome: KernelOutcome, stats: SearchStats) -> ConsistencyVerdict {
    match outcome {
        KernelOutcome::Accepted(commits) => {
            ConsistencyVerdict::Consistent(Schedule::from_refs(commits))
        }
        KernelOutcome::Refuted => ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        }),
        KernelOutcome::BudgetExhausted | KernelOutcome::Cancelled => {
            ConsistencyVerdict::Unknown { stats }
        }
    }
}
