//! Classic litmus tests with expected outcomes per memory model.
//!
//! Each test encodes an *observed outcome* as a trace (read values are the
//! observation); "allowed" under a model means a valid schedule for that
//! model exists. The expectations follow the standard litmus literature
//! (adapted to this crate's relaxed-order single-serialization semantics,
//! which matches the usual axiomatic classifications for these tests).

use crate::models::MemoryModel;
use std::collections::BTreeMap;
use vermem_trace::{Op, Trace, TraceBuilder};

/// A named litmus test with per-model expectations.
pub struct LitmusTest {
    /// Conventional short name (SB, MP, LB, IRIW, ...).
    pub name: &'static str,
    /// What the test observes.
    pub description: &'static str,
    /// The observed-outcome trace.
    pub trace: Trace,
    /// For each model: is the observed outcome allowed?
    pub expected: BTreeMap<MemoryModel, bool>,
}

fn expect(sc: bool, tso: bool, pso: bool, coh: bool) -> BTreeMap<MemoryModel, bool> {
    let mut m = BTreeMap::new();
    m.insert(MemoryModel::Sc, sc);
    m.insert(MemoryModel::Tso, tso);
    m.insert(MemoryModel::Pso, pso);
    m.insert(MemoryModel::CoherenceOnly, coh);
    m
}

/// The full built-in litmus suite.
pub fn all_litmus_tests() -> Vec<LitmusTest> {
    let x = 0u32;
    let y = 1u32;
    vec![
        LitmusTest {
            name: "SB",
            description: "store buffering: both reads miss the other CPU's store",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::write(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, true, true, true),
        },
        LitmusTest {
            name: "SB+rmws",
            description: "store buffering with atomic RMWs: the RMWs restore order",
            trace: TraceBuilder::new()
                .proc([Op::rmw(x, 0u64, 1u64), Op::read(y, 0u64)])
                .proc([Op::rmw(y, 0u64, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "MP",
            description: "message passing: flag observed set but payload stale",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, true, true),
        },
        LitmusTest {
            name: "MP+rmws",
            description: "message passing with RMW flag publish/observe",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::rmw(y, 0u64, 1u64)])
                .proc([Op::rmw(y, 1u64, 2u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "LB",
            description: "load buffering: both loads see the other CPU's later store",
            trace: TraceBuilder::new()
                .proc([Op::read(y, 1u64), Op::write(x, 1u64)])
                .proc([Op::read(x, 1u64), Op::write(y, 1u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "IRIW",
            description: "independent reads of independent writes observed in opposite orders",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64)])
                .proc([Op::write(y, 1u64)])
                .proc([Op::read(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "2+2W",
            description: "two writers each writing both locations; finals cross",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 2u64)])
                .proc([Op::write(y, 1u64), Op::write(x, 2u64)])
                .final_value(x, 1u64)
                .final_value(y, 1u64)
                .build(),
            expected: expect(false, false, true, true),
        },
        LitmusTest {
            name: "CoRR",
            description: "coherence read-read: one CPU sees a location's value regress",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(x, 2u64)])
                .proc([Op::read(x, 2u64), Op::read(x, 1u64)])
                .build(),
            expected: expect(false, false, false, false),
        },
        LitmusTest {
            name: "CoWW",
            description: "coherence write-write: program-ordered writes commit reversed",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(x, 2u64)])
                .final_value(x, 1u64)
                .build(),
            expected: expect(false, false, false, false),
        },
        LitmusTest {
            name: "CoRW1",
            description: "coherence read-write: a load observes the CPU's own later store",
            trace: TraceBuilder::new()
                .proc([Op::read(x, 1u64), Op::write(x, 1u64)])
                .build(),
            expected: expect(false, false, false, false),
        },
        LitmusTest {
            name: "WRC",
            description: "write-to-read causality: P2 misses a write P1 already observed",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64)])
                .proc([Op::read(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "R",
            description: "store ordered after a racing write, load misses the first store",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::write(y, 2u64), Op::read(x, 0u64)])
                .final_value(y, 2u64)
                .build(),
            expected: expect(false, true, true, true),
        },
        LitmusTest {
            name: "S",
            description: "write reordered below a later write observed remotely",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 2u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::write(x, 1u64)])
                .final_value(x, 2u64)
                .final_value(y, 1u64)
                .build(),
            expected: expect(false, false, true, true),
        },
        LitmusTest {
            name: "CoRW2",
            description: "coherence read-write: a load observes a store that must follow the CPU's own later store",
            trace: TraceBuilder::new()
                .proc([Op::read(x, 2u64), Op::write(x, 1u64)])
                .proc([Op::write(x, 2u64)])
                .final_value(x, 2u64)
                .build(),
            expected: expect(false, false, false, false),
        },
        // --- no-store-forwarding pins -------------------------------------
        // The crate's TSO/PSO machines have *no* store-to-load forwarding:
        // a CPU's load stalls on its own buffered store until it drains.
        // Each case below reads the CPU's own store before observing the
        // classic relaxed outcome. Real forwarding hardware (x86-TSO,
        // SPARC) still allows the relaxed outcome — the own-read is served
        // from the buffer — but the forwarding-free semantics modelled here
        // (and by the axiomatic single-serialization oracle, where the
        // same-address W→R edge is always enforced) forbid it: the own-read
        // forces the store to drain before the CPU proceeds.
        LitmusTest {
            name: "SB+own-reads",
            description: "store buffering where each CPU first reads back its own store; \
                          allowed on forwarding hardware, forbidden without forwarding",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::write(y, 1u64), Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "MP+own-read",
            description: "message passing where the writer reads back the payload before \
                          raising the flag; forwarding PSO allows the stale read, \
                          forwarding-free PSO does not",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "IRIW+own-reads",
            description: "IRIW where each writer reads back its own store: the own-reads \
                          force both stores to drain before the writers retire",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(x, 1u64)])
                .proc([Op::write(y, 1u64), Op::read(y, 1u64)])
                .proc([Op::read(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            expected: expect(false, false, false, true),
        },
        LitmusTest {
            name: "MP+final",
            description: "message passing where the payload is later overwritten",
            trace: TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 1u64), Op::write(x, 2u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 1u64)])
                .final_value(x, 2u64)
                .final_value(y, 1u64)
                .build(),
            expected: expect(true, true, true, true),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat_vsc::solve_model_sat;
    use crate::vsc::solve_sc_backtracking;
    use vermem_coherence::KernelConfig;

    #[test]
    fn litmus_suite_matches_expectations() {
        for test in all_litmus_tests() {
            for (&model, &allowed) in &test.expected {
                let got = solve_model_sat(&test.trace, model).is_consistent();
                assert_eq!(
                    got, allowed,
                    "{} under {}: expected allowed={}, got {}",
                    test.name, model, allowed, got
                );
            }
        }
    }

    #[test]
    fn sc_expectations_agree_with_backtracking() {
        for test in all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Sc];
            let got = solve_sc_backtracking(&test.trace, &KernelConfig::default()).is_consistent();
            assert_eq!(got, expected, "{} under SC (backtracking)", test.name);
        }
    }

    #[test]
    fn suite_is_nontrivial() {
        let tests = all_litmus_tests();
        assert!(tests.len() >= 10);
        // Some test distinguishes every adjacent model pair.
        let pairs = [
            (MemoryModel::Sc, MemoryModel::Tso),
            (MemoryModel::Tso, MemoryModel::Pso),
            (MemoryModel::Pso, MemoryModel::CoherenceOnly),
        ];
        for (strong, weak) in pairs {
            assert!(
                tests
                    .iter()
                    .any(|t| !t.expected[&strong] && t.expected[&weak]),
                "no test separates {strong} from {weak}"
            );
        }
    }
}
