//! Classic litmus tests with expected outcomes per memory model.
//!
//! Each test encodes an *observed outcome* as a trace (read values are the
//! observation); "allowed" under a model means a valid schedule for that
//! model exists. The expectations follow the standard litmus literature
//! (adapted to this crate's relaxed-order single-serialization semantics,
//! which matches the usual axiomatic classifications for these tests).
//!
//! Since the axiom refactor every test carries expectations for *all six*
//! declared models ([`ModelId`]): the four serialization-based models plus
//! Release–Acquire and ARM-dob. The RA and ARM-dob columns are
//! hand-derived from the declarative axioms ([`crate::axiom::RA_SPEC`],
//! [`crate::axiom::ARM_DOB_SPEC`]) and pinned against both compilers by
//! the differential suite — so a change to either compiler that flips a
//! classic litmus outcome is caught here, not in production.

use crate::axiom::ModelId;
use crate::models::MemoryModel;
use std::collections::BTreeMap;
use vermem_trace::{Op, Trace, TraceBuilder};

/// A named litmus test with per-model expectations.
pub struct LitmusTest {
    /// Conventional short name (SB, MP, LB, IRIW, ...).
    pub name: &'static str,
    /// What the test observes.
    pub description: &'static str,
    /// The observed-outcome trace.
    pub trace: Trace,
    /// For each serialization-based model: is the observed outcome
    /// allowed? (The [`ModelId`] superset lives in [`expected_axiom`];
    /// this map is kept for the many call sites indexed by
    /// [`MemoryModel`].)
    ///
    /// [`expected_axiom`]: LitmusTest::expected_axiom
    pub expected: BTreeMap<MemoryModel, bool>,
    /// For each declared model — including RA and ARM-dob: is the observed
    /// outcome allowed?
    pub expected_axiom: BTreeMap<ModelId, bool>,
}

/// Build a test with its six-model expectation row
/// (`[sc, tso, pso, coh, ra, dob]`). The base-four map is derived from the
/// same row, so the two views can never drift apart.
fn case(
    name: &'static str,
    description: &'static str,
    trace: Trace,
    allowed: [bool; 6],
) -> LitmusTest {
    let [sc, tso, pso, coh, ra, dob] = allowed;
    // Strength sanity: anything SC allows, every weaker model allows; and
    // everything any model allows, coherence-only allows.
    debug_assert!(
        !sc || (tso && ra && dob),
        "{name}: SC-allowed must propagate"
    );
    debug_assert!(!tso || pso, "{name}: TSO-allowed must propagate to PSO");
    debug_assert!(
        coh || (!pso && !ra && !dob),
        "{name}: coherence-only is the weakest model"
    );
    let mut expected = BTreeMap::new();
    expected.insert(MemoryModel::Sc, sc);
    expected.insert(MemoryModel::Tso, tso);
    expected.insert(MemoryModel::Pso, pso);
    expected.insert(MemoryModel::CoherenceOnly, coh);
    let mut expected_axiom = BTreeMap::new();
    expected_axiom.insert(ModelId::Sc, sc);
    expected_axiom.insert(ModelId::Tso, tso);
    expected_axiom.insert(ModelId::Pso, pso);
    expected_axiom.insert(ModelId::CoherenceOnly, coh);
    expected_axiom.insert(ModelId::Ra, ra);
    expected_axiom.insert(ModelId::ArmDob, dob);
    LitmusTest {
        name,
        description,
        trace,
        expected,
        expected_axiom,
    }
}

/// The full built-in litmus suite.
pub fn all_litmus_tests() -> Vec<LitmusTest> {
    let x = 0u32;
    let y = 1u32;
    vec![
        case(
            "SB",
            "store buffering: both reads miss the other CPU's store",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::write(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // RA: no cross-process rf, so nothing happens-before the
            // stale reads. ARM-dob: the W→R pairs are cross-address with a
            // write source, hence not dob-ordered.
            [false, true, true, true, true, true],
        ),
        case(
            "SB+rmws",
            "store buffering with atomic RMWs: the RMWs restore order",
            TraceBuilder::new()
                .proc([Op::rmw(x, 0u64, 1u64), Op::read(y, 0u64)])
                .proc([Op::rmw(y, 0u64, 1u64), Op::read(x, 0u64)])
                .build(),
            // RA still allows it (RMWs are not SC fences in RA), but the
            // RMW sources are read-capable, so dob orders rmw→R and the
            // fre edges close an external-coherence cycle.
            [false, false, false, true, true, false],
        ),
        case(
            "MP",
            "message passing: flag observed set but payload stale",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // RA: the flag rf makes the payload write happen-before the
            // stale read — forbidden. ARM-dob: W→W is not dob-ordered, so
            // the cycle never closes (classic ARM "MP without barriers").
            [false, false, true, true, false, true],
        ),
        case(
            "MP+rmws",
            "message passing with RMW flag publish/observe",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::rmw(y, 0u64, 1u64)])
                .proc([Op::rmw(y, 1u64, 2u64), Op::read(x, 0u64)])
                .build(),
            // RA: rf between the flag RMWs carries happens-before —
            // forbidden. ARM-dob: the payload write → flag RMW edge has a
            // *write* source (not dob), so external coherence stays acyclic.
            [false, false, false, true, false, true],
        ),
        case(
            "LB",
            "load buffering: both loads see the other CPU's later store",
            TraceBuilder::new()
                .proc([Op::read(y, 1u64), Op::write(x, 1u64)])
                .proc([Op::read(x, 1u64), Op::write(y, 1u64)])
                .build(),
            // po ∪ rf is cyclic: forbidden under RA causality, and the
            // read-sourced po edges are dob, closing the ARM cycle too.
            [false, false, false, true, false, false],
        ),
        case(
            "IRIW",
            "independent reads of independent writes observed in opposite orders",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64)])
                .proc([Op::write(y, 1u64)])
                .proc([Op::read(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // The canonical RA/ARM split: RA has no multi-copy-atomicity
            // requirement (allowed), ARM-dob's reader-side dob edges plus
            // rfe/fre close an external cycle (forbidden).
            [false, false, false, true, true, false],
        ),
        case(
            "2+2W",
            "two writers each writing both locations; finals cross",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 2u64)])
                .proc([Op::write(y, 1u64), Op::write(x, 2u64)])
                .final_value(x, 1u64)
                .final_value(y, 1u64)
                .build(),
            // No reads at all: happens-before is per-process only, and
            // W→W cross-address pairs are not dob-ordered.
            [false, false, true, true, true, true],
        ),
        case(
            "CoRR",
            "coherence read-read: one CPU sees a location's value regress",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(x, 2u64)])
                .proc([Op::read(x, 2u64), Op::read(x, 1u64)])
                .build(),
            [false, false, false, false, false, false],
        ),
        case(
            "CoRR2",
            "coherence read-read 2: two CPUs observe the same location's writes in opposite orders",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64)])
                .proc([Op::write(x, 2u64)])
                .proc([Op::read(x, 1u64), Op::read(x, 2u64)])
                .proc([Op::read(x, 2u64), Op::read(x, 1u64)])
                .build(),
            [false, false, false, false, false, false],
        ),
        case(
            "CoWW",
            "coherence write-write: program-ordered writes commit reversed",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(x, 2u64)])
                .final_value(x, 1u64)
                .build(),
            [false, false, false, false, false, false],
        ),
        case(
            "CoRW1",
            "coherence read-write: a load observes the CPU's own later store",
            TraceBuilder::new()
                .proc([Op::read(x, 1u64), Op::write(x, 1u64)])
                .build(),
            [false, false, false, false, false, false],
        ),
        case(
            "WRC",
            "write-to-read causality: P2 misses a write P1 already observed",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64)])
                .proc([Op::read(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // RA: the rf chain carries happens-before to the stale read.
            // ARM-dob: both relays are read-sourced (dob), closing the
            // cycle — cumulative causality holds even without barriers.
            [false, false, false, true, false, false],
        ),
        case(
            "WRC+rmws",
            "write-to-read causality where the relay is an RMW on the payload itself",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64)])
                .proc([Op::rmw(x, 1u64, 2u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // Same profile as WRC: the RMW relay is read-capable, so the
            // dob chain survives, and RA's happens-before is unchanged.
            [false, false, false, true, false, false],
        ),
        case(
            "R",
            "store ordered after a racing write, load misses the first store",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::write(y, 2u64), Op::read(x, 0u64)])
                .final_value(y, 2u64)
                .build(),
            [false, true, true, true, true, true],
        ),
        case(
            "S",
            "write reordered below a later write observed remotely",
            TraceBuilder::new()
                .proc([Op::write(x, 2u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::write(x, 1u64)])
                .final_value(x, 2u64)
                .final_value(y, 1u64)
                .build(),
            // RA: mo(x1 → x2) contradicts hb(x2 → x1) through the flag rf.
            // ARM-dob: the W→W edge on P0 is not dob, so no external cycle.
            [false, false, true, true, false, true],
        ),
        case(
            "CoRW2",
            "coherence read-write: a load observes a store that must follow the CPU's own later store",
            TraceBuilder::new()
                .proc([Op::read(x, 2u64), Op::write(x, 1u64)])
                .proc([Op::write(x, 2u64)])
                .final_value(x, 2u64)
                .build(),
            [false, false, false, false, false, false],
        ),
        case(
            "RMW-chain",
            "ownership handoff over a fetch-and-add chain: payload observed",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::rmw(y, 0u64, 1u64)])
                .proc([Op::rmw(y, 1u64, 2u64), Op::read(x, 1u64)])
                .build(),
            // The *positive* MP variant: allowed everywhere. Every read has
            // a unique writer candidate, so the RA fast tier decides it
            // without escalating.
            [true, true, true, true, true, true],
        ),
        case(
            "RMW-race",
            "two RMWs both claim the same initial value: atomicity forbids it",
            TraceBuilder::new()
                .proc([Op::rmw(x, 0u64, 1u64)])
                .proc([Op::rmw(x, 0u64, 2u64)])
                .build(),
            // Whichever RMW commits second reads the initial value across
            // the first one's write — an fr ∪ mo cycle on one address, so
            // even coherence-only refuses.
            [false, false, false, false, false, false],
        ),
        // --- no-store-forwarding pins -------------------------------------
        // The crate's TSO/PSO machines have *no* store-to-load forwarding:
        // a CPU's load stalls on its own buffered store until it drains.
        // Each case below reads the CPU's own store before observing the
        // classic relaxed outcome. Real forwarding hardware (x86-TSO,
        // SPARC) still allows the relaxed outcome — the own-read is served
        // from the buffer — but the forwarding-free semantics modelled here
        // (and by the axiomatic single-serialization oracle, where the
        // same-address W→R edge is always enforced) forbid it: the own-read
        // forces the store to drain before the CPU proceeds.
        case(
            "SB+own-reads",
            "store buffering where each CPU first reads back its own store; \
             allowed on forwarding hardware, forbidden without forwarding",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::write(y, 1u64), Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // RA tolerates it (the own-reads add only internal rf), but
            // the own-reads give every stale read a read-capable
            // dob-ancestor, closing the ARM external cycle.
            [false, false, false, true, true, false],
        ),
        case(
            "MP+own-read",
            "message passing where the writer reads back the payload before \
             raising the flag; forwarding PSO allows the stale read, \
             forwarding-free PSO does not",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(x, 1u64), Op::write(y, 1u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            // The own-read makes the payload→flag leg dob-ordered (read
            // source), so ARM-dob now forbids MP as well.
            [false, false, false, true, false, false],
        ),
        case(
            "IRIW+own-reads",
            "IRIW where each writer reads back its own store: the own-reads \
             force both stores to drain before the writers retire",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::read(x, 1u64)])
                .proc([Op::write(y, 1u64), Op::read(y, 1u64)])
                .proc([Op::read(x, 1u64), Op::read(y, 0u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 0u64)])
                .build(),
            [false, false, false, true, true, false],
        ),
        case(
            "MP+final",
            "message passing where the payload is later overwritten",
            TraceBuilder::new()
                .proc([Op::write(x, 1u64), Op::write(y, 1u64), Op::write(x, 2u64)])
                .proc([Op::read(y, 1u64), Op::read(x, 1u64)])
                .final_value(x, 2u64)
                .final_value(y, 1u64)
                .build(),
            [true, true, true, true, true, true],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::solve_spec_sat;
    use crate::sat_vsc::solve_model_sat;
    use crate::vsc::solve_sc_backtracking;
    use vermem_coherence::KernelConfig;

    #[test]
    fn litmus_suite_matches_expectations() {
        for test in all_litmus_tests() {
            for (&model, &allowed) in &test.expected {
                let got = solve_model_sat(&test.trace, model).is_consistent();
                assert_eq!(
                    got, allowed,
                    "{} under {}: expected allowed={}, got {}",
                    test.name, model, allowed, got
                );
            }
        }
    }

    #[test]
    fn axiom_expectations_match_the_sat_compiler() {
        // All six columns — including the hand-derived RA and ARM-dob
        // ones — against the spec-generic SAT compiler.
        for test in all_litmus_tests() {
            for (&id, &allowed) in &test.expected_axiom {
                let got = solve_spec_sat(&test.trace, crate::axiom::spec(id)).is_consistent();
                assert_eq!(
                    got,
                    allowed,
                    "{} under {} (SAT compiler): expected allowed={}",
                    test.name,
                    id.name(),
                    allowed
                );
            }
        }
    }

    #[test]
    fn base_columns_agree_between_views() {
        for test in all_litmus_tests() {
            for (&model, &allowed) in &test.expected {
                assert_eq!(test.expected_axiom[&ModelId::from(model)], allowed);
            }
            assert_eq!(test.expected_axiom.len(), ModelId::ALL.len());
        }
    }

    #[test]
    fn sc_expectations_agree_with_backtracking() {
        for test in all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Sc];
            let got = solve_sc_backtracking(&test.trace, &KernelConfig::default()).is_consistent();
            assert_eq!(got, expected, "{} under SC (backtracking)", test.name);
        }
    }

    #[test]
    fn suite_is_nontrivial() {
        let tests = all_litmus_tests();
        assert!(tests.len() >= 10);
        // Some test distinguishes every adjacent model pair.
        let pairs = [
            (MemoryModel::Sc, MemoryModel::Tso),
            (MemoryModel::Tso, MemoryModel::Pso),
            (MemoryModel::Pso, MemoryModel::CoherenceOnly),
        ];
        for (strong, weak) in pairs {
            assert!(
                tests
                    .iter()
                    .any(|t| !t.expected[&strong] && t.expected[&weak]),
                "no test separates {strong} from {weak}"
            );
        }
        // RA and ARM-dob are incomparable: some test splits them in each
        // direction (IRIW: RA yes, ARM no; MP: RA no, ARM yes), and each
        // is strictly stronger than coherence-only.
        for (a, b) in [
            (ModelId::Ra, ModelId::ArmDob),
            (ModelId::ArmDob, ModelId::Ra),
        ] {
            assert!(
                tests
                    .iter()
                    .any(|t| t.expected_axiom[&a] && !t.expected_axiom[&b]),
                "no test allows {} while forbidding {}",
                a.name(),
                b.name()
            );
        }
        for id in [ModelId::Ra, ModelId::ArmDob] {
            assert!(
                tests
                    .iter()
                    .any(|t| !t.expected_axiom[&id] && t.expected_axiom[&ModelId::CoherenceOnly]),
                "no test separates {} from coherence-only",
                id.name()
            );
        }
    }
}
