//! # vermem-consistency
//!
//! Memory *consistency* verification for the `vermem` suite, covering §6 of
//! Cantin, Lipasti & Smith:
//!
//! * [`axiom`] — memory models as **data**: declarative [`ModelSpec`]s
//!   (program-order enforcement table + axioms over `po`/`rf`/`mo`/`fr`)
//!   compiled by two independent compilers — an operational lowering onto
//!   the shared exact-search kernel ([`vermem_coherence::kernel`]) and a
//!   SAT lowering — covering SC, TSO, PSO, coherence-only,
//!   Release–Acquire and an ARM-like dob model, with a polynomial RA fast
//!   tier ([`axiom::ra_fast`]);
//! * [`vsc`] — Verifying Sequential Consistency (Definition 6.1): the SC
//!   entry points over the compiled machine, as are the operational
//!   [`tso_operational`] and [`pso_operational`] wrappers;
//! * [`sat_vsc`] — the hand-written serialization SAT encoding for the
//!   four base models (the compiled engines' independent oracle);
//! * [`vsc_conflict`] — the O(n lg n) merge of per-address coherent
//!   schedules into an SC schedule (and its §6.3 incompleteness);
//! * [`vscc`] — the VSCC promise-problem pipeline (Definition 6.2):
//!   coherence first (through the coherence crate's default *tiered*
//!   pipeline — closure frontline, exact escalation; see
//!   [`vermem_coherence::closure`]), fast merge, exact fallback;
//! * [`models`] — the consistency models as program-order relaxations, with
//!   witness checkers;
//! * [`litmus`] — the classic litmus suite with per-model expectations;
//! * [`lrc`] — Lazy Release Consistency for fully synchronized traces
//!   (Figure 6.1's target model).
//!
//! [`ModelSpec`]: axiom::ModelSpec

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod axiom;
mod legacy;
pub mod litmus;
pub mod lrc;
mod machine;
pub mod models;
pub mod pso_operational;
pub mod sat_vsc;
pub mod tso_operational;
mod verdict;
pub mod vsc;
pub mod vsc_conflict;
pub mod vscc;

pub use axiom::{
    check_witness, solve_spec_sat, spec, verify_axiom, verify_axiom_with, AxiomConfig, AxiomReport,
    Engine, ModelId, ModelSpec, Witness,
};
pub use models::{check_model_schedule, MemoryModel};
pub use pso_operational::{solve_pso_operational, solve_pso_operational_with_stats};
pub use sat_vsc::{encode_model, solve_model_sat, VscEncoding};
pub use tso_operational::{solve_tso_operational, solve_tso_operational_with_stats};
pub use verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
/// Budget/ablation knobs shared by every kernel-backed search (re-exported
/// from the coherence crate so consistency callers need no extra import).
pub use vermem_coherence::KernelConfig;
/// Search counters shared with the VMC engine (re-exported alongside
/// [`KernelConfig`]).
pub use vermem_coherence::SearchStats;
pub use vsc::{precheck_sc, solve_sc_backtracking, solve_sc_backtracking_with_stats};
pub use vsc_conflict::{merge_coherent_schedules, MergeOutcome};
pub use vscc::{verify_vscc, verify_vscc_with, SettledBy, VsccBackend, VsccReport};

use vermem_trace::Trace;

/// Decide adherence of `trace` to `model` with default settings: exact
/// backtracking for SC, the SAT encoding for relaxed models.
///
/// ```
/// use vermem_consistency::{verify_model, MemoryModel};
/// use vermem_trace::{Op, TraceBuilder};
/// // Store buffering: each CPU misses the other's store.
/// let sb = TraceBuilder::new()
///     .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
///     .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
///     .build();
/// assert!(verify_model(&sb, MemoryModel::Sc).is_violating());
/// assert!(verify_model(&sb, MemoryModel::Tso).is_consistent());
/// ```
pub fn verify_model(trace: &Trace, model: MemoryModel) -> ConsistencyVerdict {
    match model {
        MemoryModel::Sc => solve_sc_backtracking(trace, &KernelConfig::default()),
        _ => solve_model_sat(trace, model),
    }
}

/// Decide adherence of `trace` to `model` with the *operational* engines:
/// every model compiles to a kernel-backed machine (SC, TSO and PSO to
/// store-buffer machines, [`MemoryModel::CoherenceOnly`] to the witness
/// search) that honours `cfg`'s budget and reports [`SearchStats`].
///
/// ```
/// use vermem_consistency::{verify_model_operational, KernelConfig, MemoryModel};
/// use vermem_trace::{Op, TraceBuilder};
/// // Store buffering again: TSO's per-process FIFO buffer explains it.
/// let sb = TraceBuilder::new()
///     .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
///     .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
///     .build();
/// let (verdict, stats) = verify_model_operational(
///     &sb, MemoryModel::Tso, &KernelConfig::default());
/// assert!(verdict.is_consistent());
/// assert!(stats.states > 0); // the machine really searched
///
/// // A budget of one state is exhausted immediately: explicit Unknown,
/// // never a silent give-up.
/// let tight = KernelConfig { max_states: Some(1), ..KernelConfig::default() };
/// let (verdict, _) = verify_model_operational(&sb, MemoryModel::Tso, &tight);
/// assert!(verdict.unknown_stats().is_some());
/// ```
pub fn verify_model_operational(
    trace: &Trace,
    model: MemoryModel,
    cfg: &KernelConfig,
) -> (ConsistencyVerdict, SearchStats) {
    axiom::solve_compiled_with_stats(trace, ModelId::from(model), cfg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{Op, TraceBuilder};

    #[test]
    fn verify_model_dispatch() {
        let sb = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(verify_model(&sb, MemoryModel::Sc).is_violating());
        assert!(verify_model(&sb, MemoryModel::Tso).is_consistent());
    }
}
