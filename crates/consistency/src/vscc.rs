//! VSCC — Verifying Sequential Consistency with Coherence (Definition 6.2).
//!
//! The promise problem: the input is guaranteed (or first shown) coherent
//! per address; is it sequentially consistent? The paper's §6.3 point is
//! that the natural pipeline —
//!
//! 1. verify coherence per address (collecting witness schedules), then
//! 2. merge those schedules with program order (VSC-Conflict, O(n lg n))
//!
//! — is *incomplete*: step 2 can fail even when the trace is sequentially
//! consistent under a different choice of coherent schedules, because VSCC
//! is itself NP-complete. [`verify_vscc`] runs the pipeline and, when the
//! cheap merge fails, falls back to the exact VSC decision, reporting which
//! stage settled the answer so the incompleteness is observable.

use crate::models::MemoryModel;
use crate::sat_vsc::solve_model_sat;
use crate::verdict::ConsistencyVerdict;
use crate::vsc::solve_sc_backtracking;
use crate::vsc_conflict::{merge_coherent_schedules, MergeOutcome};
use std::collections::BTreeMap;
use vermem_coherence::{ExecutionVerdict, KernelConfig, SearchStats, Violation};
use vermem_trace::{Addr, Schedule, Trace};

/// Which stage of the VSCC pipeline produced the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SettledBy {
    /// The per-address coherence check already failed (the promise of
    /// Definition 6.2 does not hold).
    CoherenceCheck,
    /// The O(n lg n) VSC-Conflict merge succeeded.
    FastMerge,
    /// The merge was cyclic; the exact VSC solver decided the instance.
    ExactFallback,
}

/// Backend for the exact fallback stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VsccBackend {
    /// Memoized backtracking search.
    #[default]
    Backtracking,
    /// CDCL on the order-variable encoding.
    Sat,
}

/// Full report from the VSCC pipeline.
#[derive(Clone, Debug)]
pub struct VsccReport {
    /// Whether the execution satisfies the coherence promise, and the
    /// per-address witness schedules if so.
    pub coherence: Result<BTreeMap<Addr, Schedule>, Violation>,
    /// The final sequential-consistency verdict.
    pub verdict: ConsistencyVerdict,
    /// Which stage settled the verdict.
    pub settled_by: SettledBy,
    /// True when the trace was SC even though the fast merge failed — a
    /// concrete witness of §6.3's incompleteness argument.
    pub merge_was_misleading: bool,
}

/// Run the VSCC pipeline with default settings.
pub fn verify_vscc(trace: &Trace) -> VsccReport {
    verify_vscc_with(trace, VsccBackend::default(), &KernelConfig::default())
}

/// Run the VSCC pipeline with an explicit exact backend and budget.
pub fn verify_vscc_with(trace: &Trace, backend: VsccBackend, cfg: &KernelConfig) -> VsccReport {
    // Stage 1: coherence per address.
    let schedules = match vermem_coherence::verify_execution(trace) {
        ExecutionVerdict::Coherent(s) => s,
        ExecutionVerdict::Incoherent(v) => {
            return VsccReport {
                verdict: ConsistencyVerdict::Violating(crate::verdict::ConsistencyViolation {
                    class: crate::verdict::ViolationClass::PerAddressCoherence(v.clone()),
                }),
                coherence: Err(v),
                settled_by: SettledBy::CoherenceCheck,
                merge_was_misleading: false,
            };
        }
        ExecutionVerdict::Unknown { .. } => {
            return VsccReport {
                coherence: Ok(BTreeMap::new()),
                verdict: ConsistencyVerdict::Unknown {
                    stats: SearchStats::default(),
                },
                settled_by: SettledBy::CoherenceCheck,
                merge_was_misleading: false,
            };
        }
    };

    // Stage 2: the O(n lg n) merge.
    match merge_coherent_schedules(trace, &schedules) {
        MergeOutcome::Merged(s) => VsccReport {
            coherence: Ok(schedules),
            verdict: ConsistencyVerdict::Consistent(s),
            settled_by: SettledBy::FastMerge,
            merge_was_misleading: false,
        },
        MergeOutcome::Cyclic { .. } => {
            // Stage 3: exact decision.
            let verdict = match backend {
                VsccBackend::Backtracking => solve_sc_backtracking(trace, cfg),
                VsccBackend::Sat => solve_model_sat(trace, MemoryModel::Sc),
            };
            let misleading = verdict.is_consistent();
            VsccReport {
                coherence: Ok(schedules),
                verdict,
                settled_by: SettledBy::ExactFallback,
                merge_was_misleading: misleading,
            }
        }
    }
}

/// A minimal hand-built witness of §6.3's incompleteness: a sequentially
/// consistent trace for which at least one valid choice of per-address
/// coherent schedules fails to merge. Used by tests and the consistency
/// benchmarks.
///
/// Layout (addresses x=0, y=1; `d_I = 0`; y takes value 1 twice):
///
/// ```text
/// P0: W(x,1)  R(y,1)
/// P1: W(y,1)  W(y,2)  W(y,1)
/// P2: R(y,2)  R(x,0)
/// ```
///
/// `R(y,1)` may bind to either `W(y,1)`. Binding it to the *first* one
/// forces `R(y,1)` before `W(y,2)`, which (through program order and the
/// x-schedule `R(x,0) < W(x,1)`) closes a cycle — while binding it to the
/// second `W(y,1)` merges into a valid SC schedule. Both bindings are
/// coherent for `y` in isolation.
pub fn misleading_merge_example() -> (Trace, BTreeMap<Addr, Schedule>) {
    use vermem_trace::{Op, OpRef, TraceBuilder};
    let trace = TraceBuilder::new()
        .proc([Op::write(0u32, 1u64), Op::read(1u32, 1u64)])
        .proc([
            Op::write(1u32, 1u64),
            Op::write(1u32, 2u64),
            Op::write(1u32, 1u64),
        ])
        .proc([Op::read(1u32, 2u64), Op::read(0u32, 0u64)])
        .build();

    // Adversarial coherent schedule for y: R(y,1) bound to the FIRST W(y,1).
    let y: Schedule = [
        OpRef::new(1u16, 0), // W(y,1)
        OpRef::new(0u16, 1), // R(y,1)  ← early binding
        OpRef::new(1u16, 1), // W(y,2)
        OpRef::new(2u16, 0), // R(y,2)
        OpRef::new(1u16, 2), // W(y,1)
    ]
    .into_iter()
    .collect();
    let x: Schedule = [
        OpRef::new(2u16, 1), // R(x,0)
        OpRef::new(0u16, 0), // W(x,1)
    ]
    .into_iter()
    .collect();
    let mut schedules = BTreeMap::new();
    schedules.insert(Addr(0), x);
    schedules.insert(Addr(1), y);
    (trace, schedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{check_coherent_schedule, Op, TraceBuilder};

    #[test]
    fn pipeline_fast_merge_on_sc_trace() {
        let (t, _) = vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
            procs: 3,
            total_ops: 30,
            addrs: 3,
            seed: 11,
            ..Default::default()
        });
        let report = verify_vscc(&t);
        assert!(report.verdict.is_consistent());
        // The fast merge usually settles generated traces; either way the
        // verdict must be SC.
    }

    #[test]
    fn pipeline_detects_incoherent_promise_break() {
        let t = TraceBuilder::new().proc([Op::read(0u32, 9u64)]).build();
        let report = verify_vscc(&t);
        assert_eq!(report.settled_by, SettledBy::CoherenceCheck);
        assert!(report.verdict.is_violating());
        assert!(report.coherence.is_err());
    }

    #[test]
    fn pipeline_exact_fallback_on_sb_violation() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        let report = verify_vscc(&t);
        assert!(report.coherence.is_ok(), "SB is coherent per address");
        assert_eq!(report.settled_by, SettledBy::ExactFallback);
        assert!(report.verdict.is_violating());
        assert!(!report.merge_was_misleading);
    }

    #[test]
    fn misleading_example_is_sound() {
        let (t, adversarial) = misleading_merge_example();
        // The adversarial schedules are genuinely coherent per address...
        for (&addr, s) in &adversarial {
            check_coherent_schedule(&t, addr, s)
                .unwrap_or_else(|e| panic!("schedule for {addr:?} invalid: {e}"));
        }
        // ...but they do not merge...
        assert!(matches!(
            merge_coherent_schedules(&t, &adversarial),
            MergeOutcome::Cyclic { .. }
        ));
        // ...even though the trace IS sequentially consistent.
        let exact = solve_sc_backtracking(&t, &KernelConfig::default());
        assert!(exact.is_consistent(), "trace must be SC");
    }

    #[test]
    fn both_backends_agree() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        let a = verify_vscc_with(&t, VsccBackend::Backtracking, &KernelConfig::default());
        let b = verify_vscc_with(&t, VsccBackend::Sat, &KernelConfig::default());
        assert_eq!(a.verdict.is_consistent(), b.verdict.is_consistent());
    }
}
