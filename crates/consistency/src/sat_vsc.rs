//! Model-parametric SAT encoding for consistency verification.
//!
//! Generalizes the VMC→SAT encoding of `vermem-coherence` to the whole
//! trace and to relaxed consistency models: program-order pairs that the
//! model *enforces* become compile-time constants, pairs it relaxes become
//! free order variables (the store buffer may commit them either way), and
//! read/value constraints apply per address. With [`MemoryModel::Sc`] this
//! decides VSC (Definition 6.1); with weaker models it decides adherence to
//! TSO, PSO or bare coherence over a single global serialization.

use crate::models::{check_model_schedule, MemoryModel};
use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use crate::vsc::precheck_sc;
use vermem_sat::{CdclSolver, Cnf, Lit, Model, SatResult, Var};
use vermem_trace::{Op, OpRef, Schedule, Trace};

#[derive(Clone, Copy)]
enum Pair {
    Const(bool),
    Var(Var),
}

/// A compiled consistency encoding.
pub struct VscEncoding {
    cnf: Cnf,
    ops: Vec<(OpRef, Op)>,
    order: Vec<Vec<Pair>>, // triangular: order[i][j-i-1] for i<j
    trivially_unsat: bool,
    model: MemoryModel,
}

impl VscEncoding {
    /// The generated CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The model this encoding targets.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Literal or constant for "i scheduled before j".
    fn ord_term(&self, i: usize, j: usize) -> Term {
        let (a, b, flip) = if i < j { (i, j, false) } else { (j, i, true) };
        match self.order[a][b - a - 1] {
            Pair::Const(c) => Term::Const(c ^ flip),
            Pair::Var(v) => Term::Lit(if flip { v.neg() } else { v.pos() }),
        }
    }

    fn before(&self, model: &Model, i: usize, j: usize) -> bool {
        match self.ord_term(i, j) {
            Term::Const(c) => c,
            Term::Lit(l) => model.lit_value(l).expect("model complete"),
        }
    }

    /// Decode a model into its schedule.
    pub fn decode(&self, model: &Model) -> Schedule {
        let n = self.ops.len();
        let mut pos = vec![0usize; n];
        for (i, p) in pos.iter_mut().enumerate() {
            for j in 0..n {
                if i != j && self.before(model, j, i) {
                    *p += 1;
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| pos[i]);
        Schedule::from_refs(order.into_iter().map(|i| self.ops[i].0))
    }
}

#[derive(Clone, Copy)]
enum Term {
    Const(bool),
    Lit(Lit),
}

/// Build the CNF encoding of "`trace` has a schedule valid under `model`".
pub fn encode_model(trace: &Trace, model: MemoryModel) -> VscEncoding {
    let ops: Vec<(OpRef, Op)> = trace.iter_ops().collect();
    let n = ops.len();
    let mut cnf = Cnf::new();

    let mut order: Vec<Vec<Pair>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(n - i - 1);
        for j in i + 1..n {
            let (ri, rj) = (ops[i].0, ops[j].0);
            if ri.proc == rj.proc {
                // iter_ops yields program order within a process: ri earlier.
                debug_assert!(ri.index < rj.index);
                if model.enforces(ops[i].1, ops[j].1) {
                    row.push(Pair::Const(true));
                } else {
                    row.push(Pair::Var(cnf.new_var()));
                }
            } else {
                row.push(Pair::Var(cnf.new_var()));
            }
        }
        order.push(row);
    }

    let mut enc = VscEncoding {
        cnf,
        ops,
        order,
        trivially_unsat: false,
        model,
    };

    fn add_impl2(cnf: &mut Cnf, a: Term, b: Term, c: Term) {
        let mut lits = Vec::with_capacity(3);
        for (t, negate) in [(a, true), (b, true), (c, false)] {
            match (t, negate) {
                (Term::Const(v), neg) => {
                    if v != neg {
                        return;
                    }
                }
                (Term::Lit(l), true) => lits.push(!l),
                (Term::Lit(l), false) => lits.push(l),
            }
        }
        cnf.add_clause(lits);
    }

    // Transitivity.
    for a in 0..n {
        for b in 0..n {
            if b == a {
                continue;
            }
            for c in 0..n {
                if c == a || c == b {
                    continue;
                }
                let (tab, tbc, tac) = (enc.ord_term(a, b), enc.ord_term(b, c), enc.ord_term(a, c));
                add_impl2(&mut enc.cnf, tab, tbc, tac);
            }
        }
    }

    // Per-address read constraints.
    for r in 0..n {
        let Some(v) = enc.ops[r].1.read_value() else {
            continue;
        };
        let addr = enc.ops[r].1.addr();
        let writes: Vec<usize> = (0..n)
            .filter(|&i| enc.ops[i].1.addr() == addr && enc.ops[i].1.is_writing())
            .collect();
        let initial = trace.initial(addr);
        let mut selectors: Vec<Lit> = Vec::new();

        if v == initial {
            let s = enc.cnf.new_var().pos();
            let mut dead = false;
            for &w in &writes {
                if w == r {
                    continue;
                }
                match enc.ord_term(r, w) {
                    Term::Const(true) => {}
                    Term::Const(false) => {
                        dead = true;
                        break;
                    }
                    Term::Lit(l) => enc.cnf.add_clause([!s, l]),
                }
            }
            if dead {
                enc.cnf.add_clause([!s]);
            }
            selectors.push(s);
        }

        for &w in &writes {
            if w == r || enc.ops[w].1.written_value() != Some(v) {
                continue;
            }
            let s = enc.cnf.new_var().pos();
            let mut dead = false;
            match enc.ord_term(w, r) {
                Term::Const(true) => {}
                Term::Const(false) => dead = true,
                Term::Lit(l) => enc.cnf.add_clause([!s, l]),
            }
            if !dead {
                for &x in &writes {
                    if x == w || x == r {
                        continue;
                    }
                    let mut lits = vec![!s];
                    let mut sat = false;
                    for t in [enc.ord_term(x, w), enc.ord_term(r, x)] {
                        match t {
                            Term::Const(true) => {
                                sat = true;
                                break;
                            }
                            Term::Const(false) => {}
                            Term::Lit(l) => lits.push(l),
                        }
                    }
                    if sat {
                        continue;
                    }
                    if lits.len() == 1 {
                        dead = true;
                        break;
                    }
                    enc.cnf.add_clause(lits);
                }
            }
            if dead {
                enc.cnf.add_clause([!s]);
            }
            selectors.push(s);
        }

        if selectors.is_empty() {
            enc.trivially_unsat = true;
        } else {
            enc.cnf.add_clause(selectors);
        }
    }

    // Final values per address.
    for (&addr, &f) in trace.final_values() {
        let writes: Vec<usize> = (0..n)
            .filter(|&i| enc.ops[i].1.addr() == addr && enc.ops[i].1.is_writing())
            .collect();
        if writes.is_empty() {
            if f != trace.initial(addr) {
                enc.trivially_unsat = true;
            }
            continue;
        }
        let mut selectors = Vec::new();
        for &w in &writes {
            if enc.ops[w].1.written_value() != Some(f) {
                continue;
            }
            let t = enc.cnf.new_var().pos();
            let mut dead = false;
            for &x in &writes {
                if x == w {
                    continue;
                }
                match enc.ord_term(x, w) {
                    Term::Const(true) => {}
                    Term::Const(false) => {
                        dead = true;
                        break;
                    }
                    Term::Lit(l) => enc.cnf.add_clause([!t, l]),
                }
            }
            if dead {
                enc.cnf.add_clause([!t]);
            }
            selectors.push(t);
        }
        if selectors.is_empty() {
            enc.trivially_unsat = true;
        } else {
            enc.cnf.add_clause(selectors);
        }
    }

    enc
}

/// Decide adherence of `trace` to `model` via the SAT encoding.
pub fn solve_model_sat(trace: &Trace, model: MemoryModel) -> ConsistencyVerdict {
    if let Some(v) = precheck_sc(trace) {
        return ConsistencyVerdict::Violating(v);
    }
    let enc = encode_model(trace, model);
    if enc.trivially_unsat {
        return ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        });
    }
    let mut solver = CdclSolver::new(enc.cnf());
    match solver.solve() {
        SatResult::Sat(m) => {
            let schedule = enc.decode(&m);
            assert!(
                check_model_schedule(trace, model, &schedule).is_ok(),
                "consistency encoding produced an invalid witness — encoding bug"
            );
            ConsistencyVerdict::Consistent(schedule)
        }
        SatResult::Unsat => ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsc::solve_sc_backtracking;
    use vermem_coherence::KernelConfig;
    use vermem_trace::{Op, TraceBuilder};

    fn sb_trace() -> Trace {
        TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build()
    }

    #[test]
    fn store_buffering_tso_yes_sc_no() {
        let t = sb_trace();
        assert!(solve_model_sat(&t, MemoryModel::Sc).is_violating());
        assert!(solve_model_sat(&t, MemoryModel::Tso).is_consistent());
        assert!(solve_model_sat(&t, MemoryModel::Pso).is_consistent());
        assert!(solve_model_sat(&t, MemoryModel::CoherenceOnly).is_consistent());
    }

    #[test]
    fn store_buffering_with_rmw_fence_forbidden_under_tso() {
        // Replacing the writes by RMWs restores ordering under TSO.
        let t = TraceBuilder::new()
            .proc([Op::rmw(0u32, 0u64, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::rmw(1u32, 0u64, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve_model_sat(&t, MemoryModel::Tso).is_violating());
        assert!(solve_model_sat(&t, MemoryModel::CoherenceOnly).is_consistent());
    }

    #[test]
    fn message_passing_by_model() {
        // MP violation: R(y,1) then R(x,0).
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(solve_model_sat(&t, MemoryModel::Sc).is_violating());
        assert!(solve_model_sat(&t, MemoryModel::Tso).is_violating()); // W→W and R→R kept
        assert!(solve_model_sat(&t, MemoryModel::Pso).is_consistent()); // W→W relaxed
        assert!(solve_model_sat(&t, MemoryModel::CoherenceOnly).is_consistent());
    }

    #[test]
    fn coherence_still_required_by_weakest_model() {
        // CoRR: same-address reads must not see values regress.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(0u32, 2u64)])
            .proc([Op::read(0u32, 2u64), Op::read(0u32, 1u64)])
            .build();
        for m in MemoryModel::ALL {
            assert!(solve_model_sat(&t, m).is_violating(), "{m}");
        }
    }

    #[test]
    fn sat_sc_agrees_with_backtracking_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(60_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..3) {
                            0 => Op::read(a, v),
                            1 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let bt = solve_sc_backtracking(&t, &KernelConfig::default());
            let sat = solve_model_sat(&t, MemoryModel::Sc);
            assert_eq!(
                bt.is_consistent(),
                sat.is_consistent(),
                "divergence on seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn model_hierarchy_is_monotone_on_random_traces() {
        // Anything SC-consistent is TSO-consistent is PSO-consistent is
        // coherence-consistent.
        use vermem_util::rng::StdRng;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(70_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=3);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..2u64);
                        if rng.gen_bool(0.5) {
                            Op::read(a, v)
                        } else {
                            Op::write(a, v)
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let sc = solve_model_sat(&t, MemoryModel::Sc).is_consistent();
            let tso = solve_model_sat(&t, MemoryModel::Tso).is_consistent();
            let pso = solve_model_sat(&t, MemoryModel::Pso).is_consistent();
            let coh = solve_model_sat(&t, MemoryModel::CoherenceOnly).is_consistent();
            assert!(!sc || tso, "seed {seed}");
            assert!(!tso || pso, "seed {seed}");
            assert!(!pso || coh, "seed {seed}");
        }
    }
}
