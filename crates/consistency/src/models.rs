//! Memory consistency models as program-order relaxations.
//!
//! All hardware-implemented consistency models reduce to memory coherence
//! for single-location executions (§6.2, citing Gharachorloo's survey), and
//! differ in which *cross-address* program-order edges they enforce.
//! Same-address program order is always enforced — that is coherence's
//! per-location serialization, which every model in this family provides.
//!
//! A trace adheres to a model iff there is a single total schedule of all
//! its operations in which
//!
//! 1. every enforced program-order pair appears in order, and
//! 2. every read returns the value of the immediately preceding write to
//!    the same address (initial values before the first write, final values
//!    by the last write).
//!
//! For [`MemoryModel::Sc`] this is exactly Definition 6.1 (VSC). For the
//! relaxed models it is the standard "relaxed order, single serialization"
//! view: TSO additionally allows reads to bypass earlier writes to other
//! addresses (store buffering), PSO also lets writes to different addresses
//! reorder, and [`MemoryModel::CoherenceOnly`] keeps nothing but coherence
//! (the weakest model the paper's reductions cover without explicit
//! synchronization; RMO without dependency tracking coincides with it).
//! Atomic RMWs order with everything, as on SPARC/x86.

use std::collections::BTreeMap;
use vermem_trace::{Addr, Op, OpRef, Schedule, ScheduleError, Trace, Value};

/// A memory consistency model from the paper's §6.2 family. The derived
/// order runs strongest (SC) to weakest (coherence only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryModel {
    /// Sequential consistency (Lamport): all program order enforced.
    Sc,
    /// Total Store Order (SPARC TSO / x86-TSO): relaxes write→read to a
    /// different address.
    Tso,
    /// Partial Store Order (SPARC PSO): additionally relaxes write→write to
    /// a different address.
    Pso,
    /// Only same-address order (coherence) is enforced. Also the behaviour
    /// of RMO when data/control dependencies are not modelled.
    CoherenceOnly,
}

impl MemoryModel {
    /// All models, strongest first.
    pub const ALL: [MemoryModel; 4] = [
        MemoryModel::Sc,
        MemoryModel::Tso,
        MemoryModel::Pso,
        MemoryModel::CoherenceOnly,
    ];

    /// Is the program-order pair `x` (earlier) → `y` (later) enforced in
    /// every valid schedule?
    pub fn enforces(&self, x: Op, y: Op) -> bool {
        if x.addr() == y.addr() {
            return true; // per-location order: required by coherence
        }
        match self {
            MemoryModel::Sc => true,
            MemoryModel::Tso => {
                // Relax only pure-write → pure-read; RMWs order both ways.
                !(matches!(x, Op::Write { .. }) && matches!(y, Op::Read { .. }))
            }
            MemoryModel::Pso => {
                // Relax pure-write → anything that is not an RMW read...
                // precisely: W→R and W→W relaxed; RMW on either side orders.
                !matches!(x, Op::Write { .. }) || y.is_rmw()
            }
            MemoryModel::CoherenceOnly => false,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryModel::Sc => "SC",
            MemoryModel::Tso => "TSO",
            MemoryModel::Pso => "PSO",
            MemoryModel::CoherenceOnly => "Coherence",
        }
    }

    /// True if every behaviour allowed by `self` is allowed by `other`
    /// (i.e. `other` is weaker or equal).
    pub fn weaker_or_equal(&self, other: &MemoryModel) -> bool {
        fn rank(m: &MemoryModel) -> u8 {
            match m {
                MemoryModel::Sc => 0,
                MemoryModel::Tso => 1,
                MemoryModel::Pso => 2,
                MemoryModel::CoherenceOnly => 3,
            }
        }
        rank(self) <= rank(other)
    }
}

impl std::fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Check that `schedule` witnesses adherence of `trace` to `model`: a
/// permutation of all operations, honouring every enforced program-order
/// pair, with reads returning the immediately preceding same-address write.
///
/// For [`MemoryModel::Sc`] this coincides with
/// [`vermem_trace::check_sc_schedule`].
pub fn check_model_schedule(
    trace: &Trace,
    model: MemoryModel,
    schedule: &Schedule,
) -> Result<(), ScheduleError> {
    // Permutation + duplicates + dangling (but NOT program order, which is
    // model-relative here).
    let expected = trace.num_ops();
    let mut seen = std::collections::BTreeSet::new();
    for &r in schedule.refs() {
        if trace.op(r).is_none() {
            return Err(ScheduleError::DanglingRef(r));
        }
        if !seen.insert(r) {
            return Err(ScheduleError::DuplicateOp(r));
        }
    }
    if schedule.len() != expected {
        return Err(ScheduleError::MissingOps {
            expected,
            found: schedule.len(),
        });
    }

    // Enforced program order: for each process, every enforced pair must
    // appear in order. Position lookup, then pairwise check per process.
    let mut pos: BTreeMap<OpRef, usize> = BTreeMap::new();
    for (i, &r) in schedule.refs().iter().enumerate() {
        pos.insert(r, i);
    }
    for (p, h) in trace.histories().iter().enumerate() {
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                let (x, y) = (h.op(i).expect("in range"), h.op(j).expect("in range"));
                if model.enforces(x, y) {
                    let rx = OpRef::new(p as u16, i as u32);
                    let ry = OpRef::new(p as u16, j as u32);
                    if pos[&rx] > pos[&ry] {
                        return Err(ScheduleError::ProgramOrder {
                            earlier: rx,
                            later: ry,
                        });
                    }
                }
            }
        }
    }

    // Value legality per address.
    let mut current: BTreeMap<Addr, Value> = BTreeMap::new();
    for &r in schedule.refs() {
        let op = trace.op(r).expect("validated");
        let addr = op.addr();
        let cur = current
            .get(&addr)
            .copied()
            .unwrap_or_else(|| trace.initial(addr));
        if let Some(read) = op.read_value() {
            if read != cur {
                return Err(ScheduleError::ReadValue {
                    read: r,
                    expected: cur,
                    actual: read,
                });
            }
        }
        if let Some(written) = op.written_value() {
            current.insert(addr, written);
        }
    }
    for (&addr, &expected) in trace.final_values() {
        let actual = current
            .get(&addr)
            .copied()
            .unwrap_or_else(|| trace.initial(addr));
        if actual != expected {
            return Err(ScheduleError::FinalValue {
                addr,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{Op, TraceBuilder};

    fn sched(pairs: &[(u16, u32)]) -> Schedule {
        pairs.iter().map(|&(p, i)| OpRef::new(p, i)).collect()
    }

    #[test]
    fn same_address_always_enforced() {
        let w = Op::write(0u32, 1u64);
        let r = Op::read(0u32, 1u64);
        for m in MemoryModel::ALL {
            assert!(m.enforces(w, r), "{m}");
            assert!(m.enforces(r, w), "{m}");
        }
    }

    #[test]
    fn tso_relaxes_only_store_load() {
        let w = Op::write(0u32, 1u64);
        let r = Op::read(1u32, 0u64);
        let w2 = Op::write(1u32, 1u64);
        let rmw = Op::rmw(1u32, 0u64, 1u64);
        assert!(!MemoryModel::Tso.enforces(w, r)); // W→R relaxed
        assert!(MemoryModel::Tso.enforces(w, w2)); // W→W kept
        assert!(MemoryModel::Tso.enforces(r, w)); // R→W kept
        assert!(MemoryModel::Tso.enforces(w, rmw)); // W→RMW kept
        assert!(MemoryModel::Tso.enforces(rmw, r)); // RMW→R kept
    }

    #[test]
    fn pso_also_relaxes_store_store() {
        let w = Op::write(0u32, 1u64);
        let w2 = Op::write(1u32, 1u64);
        let r = Op::read(1u32, 0u64);
        let rmw = Op::rmw(1u32, 0u64, 1u64);
        assert!(!MemoryModel::Pso.enforces(w, w2));
        assert!(!MemoryModel::Pso.enforces(w, r));
        assert!(MemoryModel::Pso.enforces(r, w)); // loads still order
        assert!(MemoryModel::Pso.enforces(w, rmw)); // RMW orders
    }

    #[test]
    fn coherence_only_keeps_nothing_cross_address() {
        let r1 = Op::read(0u32, 0u64);
        let r2 = Op::read(1u32, 0u64);
        assert!(!MemoryModel::CoherenceOnly.enforces(r1, r2));
    }

    #[test]
    fn strength_order() {
        assert!(MemoryModel::Sc.weaker_or_equal(&MemoryModel::Tso));
        assert!(MemoryModel::Tso.weaker_or_equal(&MemoryModel::CoherenceOnly));
        assert!(!MemoryModel::Pso.weaker_or_equal(&MemoryModel::Tso));
    }

    #[test]
    fn model_schedule_checker_sc_matches_trace_checker() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 1u64)])
            .build();
        let good = sched(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(check_model_schedule(&t, MemoryModel::Sc, &good).is_ok());
        assert!(vermem_trace::check_sc_schedule(&t, &good).is_ok());
    }

    #[test]
    fn store_buffering_schedule_valid_under_tso_not_sc() {
        // SB: P0: W(x,1) R(y,0); P1: W(y,1) R(x,0).
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        // Reads first (bypassing the writes), then writes.
        let s = sched(&[(0, 1), (1, 1), (0, 0), (1, 0)]);
        assert!(check_model_schedule(&t, MemoryModel::Tso, &s).is_ok());
        let err = check_model_schedule(&t, MemoryModel::Sc, &s).unwrap_err();
        assert!(matches!(err, ScheduleError::ProgramOrder { .. }));
    }

    #[test]
    fn value_rules_still_apply_under_weak_models() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::read(0u32, 9u64)])
            .build();
        let s = sched(&[(0, 0), (1, 0)]);
        let err = check_model_schedule(&t, MemoryModel::CoherenceOnly, &s).unwrap_err();
        assert!(matches!(err, ScheduleError::ReadValue { .. }));
    }

    #[test]
    fn completeness_checked() {
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::r(1u64)]).build();
        let s = sched(&[(0, 0)]);
        assert!(matches!(
            check_model_schedule(&t, MemoryModel::Sc, &s),
            Err(ScheduleError::MissingOps { .. })
        ));
    }
}
