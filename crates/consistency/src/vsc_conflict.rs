//! VSC-Conflict (§6.3): merging per-address coherent schedules into a
//! sequentially consistent schedule in near-linear time.
//!
//! A set of coherent schedules (one per address) encodes a serial order for
//! every address's operations — in particular the write order and the
//! read-map. Treating those per-address total orders as *constraints* and
//! adding program order, a sequentially consistent schedule exists for that
//! particular constraint set iff the union graph is acyclic (topological
//! sort gives the witness); this is the O(n lg n) VSC-Conflict procedure of
//! Gibbons & Korach the paper invokes.
//!
//! **The catch (§6.3):** failure here does *not* refute sequential
//! consistency — a different set of per-address coherent schedules might
//! merge. That one-sidedness is exactly why verifying coherence first does
//! not make VSC tractable; see [`crate::vscc`].

use std::collections::BTreeMap;
use vermem_trace::{check_sc_schedule, Addr, OpRef, Schedule, Trace};

/// Outcome of a merge attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The constraint union is acyclic; a sequentially consistent schedule
    /// consistent with every input schedule is attached.
    Merged(Schedule),
    /// The constraint union is cyclic for *these* coherent schedules. The
    /// trace may or may not be sequentially consistent.
    Cyclic {
        /// Number of operations left unordered when the sort stalled.
        stuck_ops: usize,
    },
}

impl MergeOutcome {
    /// The merged schedule, if any.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            MergeOutcome::Merged(s) => Some(s),
            MergeOutcome::Cyclic { .. } => None,
        }
    }
}

/// Merge per-address coherent schedules with program order. `schedules`
/// must contain a coherent schedule for every address touched by `trace`
/// (as produced by [`vermem_coherence::verify_execution`]).
///
/// # Panics
/// Panics if a schedule references an operation missing from the trace.
pub fn merge_coherent_schedules(
    trace: &Trace,
    schedules: &BTreeMap<Addr, Schedule>,
) -> MergeOutcome {
    // Dense numbering of all ops.
    let ids: BTreeMap<OpRef, usize> = trace
        .iter_ops()
        .enumerate()
        .map(|(i, (r, _))| (r, i))
        .collect();
    let refs: Vec<OpRef> = trace.iter_ops().map(|(r, _)| r).collect();
    let n = refs.len();

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let add_edge = |adj: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        adj[a].push(b);
        indeg[b] += 1;
    };

    // Program order: consecutive ops per process.
    for (p, h) in trace.histories().iter().enumerate() {
        for i in 1..h.len() {
            let a = ids[&OpRef::new(p as u16, (i - 1) as u32)];
            let b = ids[&OpRef::new(p as u16, i as u32)];
            add_edge(&mut adj, &mut indeg, a, b);
        }
    }
    // Per-address serial orders: consecutive ops in each coherent schedule.
    for schedule in schedules.values() {
        for w in schedule.refs().windows(2) {
            let a = *ids.get(&w[0]).expect("schedule op exists in trace");
            let b = *ids.get(&w[1]).expect("schedule op exists in trace");
            add_edge(&mut adj, &mut indeg, a, b);
        }
    }

    // Kahn's algorithm with a plain stack (any topological order works).
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order: Vec<OpRef> = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(refs[i]);
        for &j in &adj[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() != n {
        return MergeOutcome::Cyclic {
            stuck_ops: n - order.len(),
        };
    }
    let witness = Schedule::from_refs(order);
    debug_assert!(
        check_sc_schedule(trace, &witness).is_ok(),
        "merge produced an invalid SC schedule"
    );
    MergeOutcome::Merged(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_coherence::{verify_execution, ExecutionVerdict};
    use vermem_trace::{Op, TraceBuilder};

    #[test]
    fn merge_mp_pass() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 1u64)])
            .build();
        let ExecutionVerdict::Coherent(schedules) = verify_execution(&t) else {
            panic!("trace is coherent");
        };
        let out = merge_coherent_schedules(&t, &schedules);
        let s = out.schedule().expect("mergeable");
        check_sc_schedule(&t, s).unwrap();
    }

    #[test]
    fn merge_detects_cycle_for_sb_violation() {
        // SB violation is coherent per address but not SC: whatever coherent
        // schedules are chosen, the merge must be cyclic.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        let ExecutionVerdict::Coherent(schedules) = verify_execution(&t) else {
            panic!("SB is coherent per address");
        };
        match merge_coherent_schedules(&t, &schedules) {
            MergeOutcome::Cyclic { stuck_ops } => assert!(stuck_ops > 0),
            MergeOutcome::Merged(_) => panic!("SB violation must not merge"),
        }
    }

    #[test]
    fn merged_schedule_respects_input_serial_orders() {
        let (t, _) = vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
            procs: 3,
            total_ops: 30,
            addrs: 2,
            seed: 5,
            ..Default::default()
        });
        let ExecutionVerdict::Coherent(schedules) = verify_execution(&t) else {
            panic!("generated trace is coherent");
        };
        if let MergeOutcome::Merged(s) = merge_coherent_schedules(&t, &schedules) {
            // Per-address order in the SC schedule equals the input order.
            for (addr, addr_sched) in &schedules {
                let projected: Vec<OpRef> = s
                    .refs()
                    .iter()
                    .copied()
                    .filter(|&r| t.op(r).unwrap().addr() == *addr)
                    .collect();
                assert_eq!(projected, addr_sched.refs().to_vec());
            }
        }
    }

    #[test]
    fn empty_trace_merges() {
        let out = merge_coherent_schedules(&Trace::new(), &BTreeMap::new());
        assert!(out.schedule().is_some());
    }
}
