//! An **operational** TSO checker: exhaustive search over machine states of
//! an idealized store-buffer multiprocessor (per-CPU FIFO buffers, no
//! store-to-load forwarding, atomic RMWs that drain), deciding whether the
//! observed trace is reachable.
//!
//! This is an independent, second definition of TSO. The crate's primary
//! checker ([`crate::solve_model_sat`] with [`crate::MemoryModel::Tso`]) is
//! *axiomatic*: a single serialization with the store→load program-order
//! edge relaxed. The two formulations are equivalent for forwarding-free
//! machines — a fact the test suite checks differentially on random traces,
//! giving the model framework an executable semantics to answer to.
//!
//! State = (per-process instruction frontier, per-process FIFO buffer of
//! pending stores, memory). Transitions: issue the next operation of some
//! process (loads must match memory and have no buffered store to the same
//! address — no forwarding; RMWs require an empty buffer and match memory),
//! or drain the oldest buffered store of some process. The search itself —
//! memoized DFS with budgets, cancellation, statistics and observability —
//! is [`vermem_coherence::kernel`]; this module only defines the machine.
//! Exponential worst case, as it must be (§6.2: TSO verification is
//! NP-hard).

use crate::machine::{outcome_to_verdict, MachineBase};
use crate::verdict::ConsistencyVerdict;
use crate::vsc::precheck_sc;
use std::collections::VecDeque;
use vermem_coherence::kernel::{run_search, KernelConfig, KernelOutcome, TransitionSystem};
use vermem_coherence::SearchStats;
use vermem_trace::{Op, OpRef, Schedule, Trace, Value};
use vermem_util::pool::CancelToken;

/// Decide operational-TSO reachability of `trace`.
///
/// On success the verdict carries a *commit-order* schedule: the order in
/// which operations took global effect (loads at issue, stores at drain) —
/// a valid witness for [`crate::check_model_schedule`] under
/// [`crate::MemoryModel::Tso`].
pub fn solve_tso_operational(trace: &Trace, cfg: &KernelConfig) -> ConsistencyVerdict {
    solve_tso_operational_with_stats(trace, cfg, None).0
}

/// [`solve_tso_operational`] with kernel [`SearchStats`] and cooperative
/// cancellation.
pub fn solve_tso_operational_with_stats(
    trace: &Trace,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    if let Some(v) = precheck_sc(trace) {
        return (ConsistencyVerdict::Violating(v), SearchStats::default());
    }
    let nprocs = trace.num_procs();
    let mut sys = TsoMachine {
        base: MachineBase::new(trace),
        buffers: vec![VecDeque::new(); nprocs],
    };
    let (outcome, stats) = run_search(&mut sys, cfg, cancel);
    if let KernelOutcome::Accepted(commits) = &outcome {
        let witness = Schedule::from_refs(commits.iter().copied());
        debug_assert!(
            crate::models::check_model_schedule(trace, crate::MemoryModel::Tso, &witness).is_ok(),
            "operational TSO produced an invalid commit order"
        );
    }
    (outcome_to_verdict(outcome, stats), stats)
}

/// The TSO store-buffer machine. Buffer entries are
/// `(slot, value, program index)`; stores commit at drain.
struct TsoMachine {
    base: MachineBase,
    buffers: Vec<VecDeque<(u32, Value, u32)>>,
}

/// One state-changing TSO move, with undo state captured at enumeration.
#[derive(Clone, Copy)]
enum TsoMove {
    /// Drain process `p`'s oldest buffered store (the captured entry);
    /// `saved` is the memory value it overwrites.
    Drain {
        p: u16,
        slot: u32,
        value: Value,
        index: u32,
        saved: Value,
    },
    /// Issue process `p`'s next instruction (a `Write` entering the buffer,
    /// or an enabled `Rmw` taking immediate effect; `saved` is meaningful
    /// only for the latter). Loads are never issued as moves — they commit
    /// through kernel absorption.
    Issue { p: u16, saved: Value },
}

impl TsoMachine {
    /// Does `p` hold a buffered store to `slot`? (No forwarding: such a
    /// store blocks `p`'s loads from that address.)
    fn blocked(&self, p: usize, slot: u32) -> bool {
        self.buffers[p].iter().any(|&(s, _, _)| s == slot)
    }
}

impl TransitionSystem for TsoMachine {
    type Move = TsoMove;

    fn total_commits(&self) -> usize {
        self.base.total
    }

    fn accepting(&self) -> bool {
        // Every commit implies every store drained: buffers are empty here.
        debug_assert!(self.buffers.iter().all(VecDeque::is_empty));
        self.base.finals_ok()
    }

    fn absorb(&mut self, commits: &mut Vec<OpRef>) {
        for p in 0..self.base.frontier.len() {
            while let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Read { addr, value } => {
                        let s = self.base.slot(addr);
                        if !self.blocked(p, s) && self.base.memory[s as usize] == value {
                            commits.push(self.base.op_ref(p));
                            self.base.frontier[p] += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    fn retract_read(&mut self, r: OpRef) {
        let p = r.proc.0 as usize;
        self.base.frontier[p] -= 1;
        debug_assert_eq!(self.base.frontier[p], r.index);
    }

    fn infeasible(&self) -> bool {
        self.base.demand_infeasible()
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        self.base.key_base(key);
        for b in &self.buffers {
            key.push(b.len() as u64);
            for &(slot, value, index) in b {
                key.push((u64::from(slot) << 32) | u64::from(index));
                key.push(value.0);
            }
        }
    }

    fn enabled_moves(&self, moves: &mut Vec<TsoMove>) {
        let demanded = self.base.demanded();
        for p in 0..self.base.frontier.len() {
            if let Some(&(slot, value, index)) = self.buffers[p].front() {
                moves.push(TsoMove::Drain {
                    p: p as u16,
                    slot,
                    value,
                    index,
                    saved: self.base.memory[slot as usize],
                });
            }
            if let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Write { .. } => moves.push(TsoMove::Issue {
                        p: p as u16,
                        saved: Value::INITIAL, // unused for writes
                    }),
                    Op::Rmw { addr, read, .. } => {
                        // Atomics drain first (issue only with an empty
                        // buffer) and take effect immediately.
                        let s = self.base.slot(addr);
                        if self.buffers[p].is_empty() && self.base.memory[s as usize] == read {
                            moves.push(TsoMove::Issue {
                                p: p as u16,
                                saved: self.base.memory[s as usize],
                            });
                        }
                    }
                    Op::Read { .. } => {} // absorption only
                }
            }
        }
        // Memory-effecting moves that supply a demanded value first.
        moves.sort_by_key(|m| {
            let hot = match *m {
                TsoMove::Drain { slot, value, .. } => demanded.contains(&(slot, value)),
                TsoMove::Issue { p, .. } => match self.base.next_op(p as usize) {
                    Some(Op::Rmw { addr, write, .. }) => {
                        demanded.contains(&(self.base.slot(addr), write))
                    }
                    _ => false, // a buffered write supplies nothing yet
                },
            };
            std::cmp::Reverse(hot)
        });
    }

    fn apply(&mut self, mv: TsoMove) -> Option<OpRef> {
        match mv {
            TsoMove::Drain {
                p,
                slot,
                value,
                index,
                ..
            } => {
                let popped = self.buffers[p as usize].pop_front();
                debug_assert_eq!(popped, Some((slot, value, index)));
                self.base.memory[slot as usize] = value;
                self.base.take_supply(slot, value);
                Some(OpRef::new(p, index))
            }
            TsoMove::Issue { p, .. } => {
                let p = p as usize;
                let op = self.base.next_op(p).expect("enabled");
                let index = self.base.frontier[p];
                self.base.frontier[p] += 1;
                match op {
                    Op::Write { addr, value } => {
                        let s = self.base.slot(addr);
                        self.buffers[p].push_back((s, value, index));
                        None // commits at drain
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.memory[s as usize] = write;
                        self.base.take_supply(s, write);
                        Some(OpRef::new(p as u16, index))
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }

    fn undo(&mut self, mv: TsoMove) {
        match mv {
            TsoMove::Drain {
                p,
                slot,
                value,
                index,
                saved,
            } => {
                self.base.put_supply(slot, value);
                self.base.memory[slot as usize] = saved;
                self.buffers[p as usize].push_front((slot, value, index));
            }
            TsoMove::Issue { p, saved } => {
                let p = p as usize;
                self.base.frontier[p] -= 1;
                match self.base.next_op(p).expect("applied") {
                    Op::Write { .. } => {
                        self.buffers[p].pop_back();
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.put_supply(s, write);
                        self.base.memory[s as usize] = saved;
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MemoryModel;
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    fn operational(t: &Trace) -> bool {
        solve_tso_operational(t, &KernelConfig::default()).is_consistent()
    }

    fn axiomatic(t: &Trace) -> bool {
        solve_model_sat(t, MemoryModel::Tso).is_consistent()
    }

    #[test]
    fn store_buffering_reachable() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(operational(&t));
        assert!(axiomatic(&t));
    }

    #[test]
    fn message_passing_violation_unreachable() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn rmw_fences_restore_order() {
        let t = TraceBuilder::new()
            .proc([Op::rmw(0u32, 0u64, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::rmw(1u32, 0u64, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn final_values_respected() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(operational(&t));
        let t2 = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .final_value(0u32, 9u64)
            .build();
        assert!(!operational(&t2));
    }

    #[test]
    fn tiny_budget_answers_unknown_with_stats() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::write(1u32, 1u64),
                Op::read(2u32, 0u64),
            ])
            .proc([
                Op::write(1u32, 2u64),
                Op::write(2u32, 1u64),
                Op::read(0u32, 0u64),
            ])
            .proc([
                Op::write(2u32, 2u64),
                Op::write(0u32, 2u64),
                Op::read(1u32, 0u64),
            ])
            .build();
        match solve_tso_operational(&t, &KernelConfig::with_budget(1)) {
            ConsistencyVerdict::Unknown { stats } => assert!(stats.states >= 1),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn litmus_suite_matches_axiomatic_model() {
        for test in crate::litmus::all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Tso];
            assert_eq!(
                operational(&test.trace),
                expected,
                "operational TSO disagrees on {}",
                test.name
            );
        }
    }

    #[test]
    fn agrees_with_axiomatic_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(500_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..5) {
                            0 | 1 => Op::read(a, v),
                            2 | 3 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            assert_eq!(
                operational(&t),
                axiomatic(&t),
                "operational vs axiomatic TSO divergence on seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn tso_machine_streams_are_reachable() {
        // Everything the TSO simulator produces must be operationally
        // reachable (it IS such a machine).
        for seed in 0..10 {
            let p = vermem_sim_free_program(seed);
            let t = p;
            assert!(operational(&t), "seed {seed}");
        }

        fn vermem_sim_free_program(seed: u64) -> Trace {
            // Local mini-generator to avoid a circular dev-dependency on
            // vermem-sim: an SC generator's trace is TSO-reachable a
            // fortiori.
            vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
                procs: 3,
                total_ops: 16,
                addrs: 2,
                seed,
                ..Default::default()
            })
            .0
        }
    }
}
