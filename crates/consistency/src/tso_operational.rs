//! An **operational** TSO checker: exhaustive search over machine states of
//! an idealized store-buffer multiprocessor (per-CPU FIFO buffers, no
//! store-to-load forwarding, atomic RMWs that drain), deciding whether the
//! observed trace is reachable.
//!
//! This is an independent, second definition of TSO. The crate's primary
//! checker ([`crate::solve_model_sat`] with [`crate::MemoryModel::Tso`]) is
//! *axiomatic*: a single serialization with the store→load program-order
//! edge relaxed. The two formulations are equivalent for forwarding-free
//! machines — a fact the test suite checks differentially on random traces,
//! giving the model framework an executable semantics to answer to.
//!
//! Since the axiom refactor the store-buffer machine is *compiled* from
//! [`crate::axiom::TSO_SPEC`] — the spec's relaxed store→load entries in
//! its enforcement table select the per-process-FIFO buffer lowering —
//! and this module only keeps the entry points (plus the differential
//! tests, which now pin the compiled machine against both the axiomatic
//! SAT oracle and the verbatim pre-refactor machine in `crate::legacy`).
//! Exponential worst case, as it must be (§6.2: TSO verification is
//! NP-hard).

use crate::axiom::{solve_compiled_with_stats, ModelId};
use crate::verdict::ConsistencyVerdict;
use vermem_coherence::kernel::KernelConfig;
use vermem_coherence::SearchStats;
use vermem_trace::Trace;
use vermem_util::pool::CancelToken;

/// Decide operational-TSO reachability of `trace`.
///
/// On success the verdict carries a *commit-order* schedule: the order in
/// which operations took global effect (loads at issue, stores at drain) —
/// a valid witness for [`crate::check_model_schedule`] under
/// [`crate::MemoryModel::Tso`].
pub fn solve_tso_operational(trace: &Trace, cfg: &KernelConfig) -> ConsistencyVerdict {
    solve_tso_operational_with_stats(trace, cfg, None).0
}

/// [`solve_tso_operational`] with kernel [`SearchStats`] and cooperative
/// cancellation.
pub fn solve_tso_operational_with_stats(
    trace: &Trace,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    solve_compiled_with_stats(trace, ModelId::Tso, cfg, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MemoryModel;
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    fn operational(t: &Trace) -> bool {
        solve_tso_operational(t, &KernelConfig::default()).is_consistent()
    }

    fn axiomatic(t: &Trace) -> bool {
        solve_model_sat(t, MemoryModel::Tso).is_consistent()
    }

    #[test]
    fn store_buffering_reachable() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(operational(&t));
        assert!(axiomatic(&t));
    }

    #[test]
    fn message_passing_violation_unreachable() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn rmw_fences_restore_order() {
        let t = TraceBuilder::new()
            .proc([Op::rmw(0u32, 0u64, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::rmw(1u32, 0u64, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn final_values_respected() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(operational(&t));
        let t2 = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .final_value(0u32, 9u64)
            .build();
        assert!(!operational(&t2));
    }

    #[test]
    fn tiny_budget_answers_unknown_with_stats() {
        let t = TraceBuilder::new()
            .proc([
                Op::write(0u32, 1u64),
                Op::write(1u32, 1u64),
                Op::read(2u32, 0u64),
            ])
            .proc([
                Op::write(1u32, 2u64),
                Op::write(2u32, 1u64),
                Op::read(0u32, 0u64),
            ])
            .proc([
                Op::write(2u32, 2u64),
                Op::write(0u32, 2u64),
                Op::read(1u32, 0u64),
            ])
            .build();
        match solve_tso_operational(&t, &KernelConfig::with_budget(1)) {
            ConsistencyVerdict::Unknown { stats } => assert!(stats.states >= 1),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn litmus_suite_matches_axiomatic_model() {
        for test in crate::litmus::all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Tso];
            assert_eq!(
                operational(&test.trace),
                expected,
                "operational TSO disagrees on {}",
                test.name
            );
        }
    }

    #[test]
    fn agrees_with_axiomatic_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(500_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..5) {
                            0 | 1 => Op::read(a, v),
                            2 | 3 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            assert_eq!(
                operational(&t),
                axiomatic(&t),
                "operational vs axiomatic TSO divergence on seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn tso_machine_streams_are_reachable() {
        // Everything the TSO simulator produces must be operationally
        // reachable (it IS such a machine).
        for seed in 0..10 {
            let p = vermem_sim_free_program(seed);
            let t = p;
            assert!(operational(&t), "seed {seed}");
        }

        fn vermem_sim_free_program(seed: u64) -> Trace {
            // Local mini-generator to avoid a circular dev-dependency on
            // vermem-sim: an SC generator's trace is TSO-reachable a
            // fortiori.
            vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
                procs: 3,
                total_ops: 16,
                addrs: 2,
                seed,
                ..Default::default()
            })
            .0
        }
    }
}
