//! An **operational** TSO checker: exhaustive search over machine states of
//! an idealized store-buffer multiprocessor (per-CPU FIFO buffers, no
//! store-to-load forwarding, atomic RMWs that drain), deciding whether the
//! observed trace is reachable.
//!
//! This is an independent, second definition of TSO. The crate's primary
//! checker ([`crate::solve_model_sat`] with [`crate::MemoryModel::Tso`]) is
//! *axiomatic*: a single serialization with the store→load program-order
//! edge relaxed. The two formulations are equivalent for forwarding-free
//! machines — a fact the test suite checks differentially on random traces,
//! giving the model framework an executable semantics to answer to.
//!
//! State = (per-process instruction frontier, per-process FIFO buffer of
//! pending stores, memory). Transitions: issue the next operation of some
//! process (loads must match memory and have no buffered store to the same
//! address — no forwarding; RMWs require an empty buffer and match memory),
//! or drain the oldest buffered store of some process. Memoized DFS;
//! exponential worst case, as it must be (§6.2: TSO verification is
//! NP-hard).

use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use crate::vsc::precheck_sc;
use std::collections::{BTreeMap, HashSet, VecDeque};
use vermem_trace::{Addr, Op, Schedule, Trace, Value};

/// Budget for the operational search.
#[derive(Clone, Copy, Debug, Default)]
pub struct TsoConfig {
    /// Maximum distinct states to visit before answering
    /// [`ConsistencyVerdict::Unknown`]. `None` = unlimited.
    pub max_states: Option<u64>,
}

/// Decide operational-TSO reachability of `trace`.
///
/// On success the verdict carries a *commit-order* schedule: the order in
/// which operations took global effect (loads at issue, stores at drain) —
/// a valid witness for [`crate::check_model_schedule`] under
/// [`crate::MemoryModel::Tso`].
pub fn solve_tso_operational(trace: &Trace, cfg: &TsoConfig) -> ConsistencyVerdict {
    if let Some(v) = precheck_sc(trace) {
        return ConsistencyVerdict::Violating(v);
    }

    let per_proc: Vec<Vec<Op>> = trace
        .histories()
        .iter()
        .map(|h| h.iter().collect())
        .collect();
    let total: usize = per_proc.iter().map(Vec::len).sum();

    let mut memory: BTreeMap<Addr, Value> = BTreeMap::new();
    for addr in trace.addresses() {
        memory.insert(addr, trace.initial(addr));
    }

    let mut search = TsoSearch {
        trace,
        per_proc: &per_proc,
        total,
        visited: HashSet::new(),
        commits: Vec::with_capacity(total),
        states: 0,
        max_states: cfg.max_states,
        budget_hit: false,
    };
    let mut frontier = vec![0u32; per_proc.len()];
    let mut buffers: Vec<VecDeque<(Addr, Value, u32)>> = vec![VecDeque::new(); per_proc.len()];
    let found = search.dfs(&mut frontier, &mut buffers, &mut memory);
    let budget_hit = search.budget_hit;
    let commits = std::mem::take(&mut search.commits);

    if found {
        let witness: Schedule = commits
            .into_iter()
            .map(|(p, i)| vermem_trace::OpRef::new(p as u16, i))
            .collect();
        debug_assert!(
            crate::models::check_model_schedule(trace, crate::MemoryModel::Tso, &witness).is_ok(),
            "operational TSO produced an invalid commit order"
        );
        ConsistencyVerdict::Consistent(witness)
    } else if budget_hit {
        ConsistencyVerdict::Unknown
    } else {
        ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        })
    }
}

type StateKey = (Vec<u32>, Vec<Vec<(u32, u64, u32)>>, Vec<(u32, u64)>);

struct TsoSearch<'a> {
    trace: &'a Trace,
    per_proc: &'a [Vec<Op>],
    total: usize,
    visited: HashSet<StateKey>,
    commits: Vec<(usize, u32)>,
    states: u64,
    max_states: Option<u64>,
    budget_hit: bool,
}

impl TsoSearch<'_> {
    /// Exact structural key — a hash would risk collisions and therefore
    /// unsound "unreachable" answers.
    fn state_key(
        frontier: &[u32],
        buffers: &[VecDeque<(Addr, Value, u32)>],
        memory: &BTreeMap<Addr, Value>,
    ) -> StateKey {
        (
            frontier.to_vec(),
            buffers
                .iter()
                .map(|b| b.iter().map(|&(a, v, i)| (a.0, v.0, i)).collect())
                .collect(),
            memory.iter().map(|(&a, &v)| (a.0, v.0)).collect(),
        )
    }

    fn dfs(
        &mut self,
        frontier: &mut Vec<u32>,
        buffers: &mut Vec<VecDeque<(Addr, Value, u32)>>,
        memory: &mut BTreeMap<Addr, Value>,
    ) -> bool {
        if self.commits.len() == self.total && buffers.iter().all(VecDeque::is_empty) {
            return self
                .trace
                .final_values()
                .iter()
                .all(|(addr, v)| memory.get(addr) == Some(v));
        }

        let key = Self::state_key(frontier, buffers, memory);
        if !self.visited.insert(key) {
            return false;
        }
        self.states += 1;
        if let Some(max) = self.max_states {
            if self.states > max {
                self.budget_hit = true;
                return false;
            }
        }

        for p in 0..frontier.len() {
            // Move 1: drain this process's oldest buffered store.
            if let Some(&(addr, value, index)) = buffers[p].front() {
                let saved = memory.get(&addr).copied();
                buffers[p].pop_front();
                memory.insert(addr, value);
                self.commits.push((p, index));
                if self.dfs(frontier, buffers, memory) {
                    return true;
                }
                self.commits.pop();
                match saved {
                    Some(v) => memory.insert(addr, v),
                    None => memory.remove(&addr),
                };
                buffers[p].push_front((addr, value, index));
            }

            // Move 2: issue this process's next instruction.
            let Some(&op) = self.per_proc[p].get(frontier[p] as usize) else {
                continue;
            };
            let index = frontier[p];
            match op {
                Op::Read { addr, value } => {
                    // No forwarding: a buffered store to the address blocks
                    // the load until drained.
                    let blocked = buffers[p].iter().any(|&(a, _, _)| a == addr);
                    let current = memory.get(&addr).copied().unwrap_or(Value::INITIAL);
                    if !blocked && current == value {
                        frontier[p] += 1;
                        self.commits.push((p, index));
                        if self.dfs(frontier, buffers, memory) {
                            return true;
                        }
                        self.commits.pop();
                        frontier[p] -= 1;
                    }
                }
                Op::Write { addr, value } => {
                    frontier[p] += 1;
                    buffers[p].push_back((addr, value, index));
                    if self.dfs(frontier, buffers, memory) {
                        return true;
                    }
                    buffers[p].pop_back();
                    frontier[p] -= 1;
                }
                Op::Rmw { addr, read, write } => {
                    // Atomics drain first (issue only with an empty buffer)
                    // and take effect immediately.
                    if buffers[p].is_empty() {
                        let current = memory.get(&addr).copied().unwrap_or(Value::INITIAL);
                        if current == read {
                            let saved = memory.insert(addr, write);
                            frontier[p] += 1;
                            self.commits.push((p, index));
                            if self.dfs(frontier, buffers, memory) {
                                return true;
                            }
                            self.commits.pop();
                            frontier[p] -= 1;
                            match saved {
                                Some(v) => memory.insert(addr, v),
                                None => memory.remove(&addr),
                            };
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MemoryModel;
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    fn operational(t: &Trace) -> bool {
        solve_tso_operational(t, &TsoConfig::default()).is_consistent()
    }

    fn axiomatic(t: &Trace) -> bool {
        solve_model_sat(t, MemoryModel::Tso).is_consistent()
    }

    #[test]
    fn store_buffering_reachable() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(operational(&t));
        assert!(axiomatic(&t));
    }

    #[test]
    fn message_passing_violation_unreachable() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn rmw_fences_restore_order() {
        let t = TraceBuilder::new()
            .proc([Op::rmw(0u32, 0u64, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::rmw(1u32, 0u64, 1u64), Op::read(0u32, 0u64)])
            .build();
        assert!(!operational(&t));
        assert!(!axiomatic(&t));
    }

    #[test]
    fn final_values_respected() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(operational(&t));
        let t2 = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .final_value(0u32, 9u64)
            .build();
        assert!(!operational(&t2));
    }

    #[test]
    fn litmus_suite_matches_axiomatic_model() {
        for test in crate::litmus::all_litmus_tests() {
            let expected = test.expected[&MemoryModel::Tso];
            assert_eq!(
                operational(&test.trace),
                expected,
                "operational TSO disagrees on {}",
                test.name
            );
        }
    }

    #[test]
    fn agrees_with_axiomatic_on_random_traces() {
        use vermem_util::rng::StdRng;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(500_000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let a = rng.gen_range(0..2u32);
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..5) {
                            0 | 1 => Op::read(a, v),
                            2 | 3 => Op::write(a, v),
                            _ => Op::rmw(a, v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            assert_eq!(
                operational(&t),
                axiomatic(&t),
                "operational vs axiomatic TSO divergence on seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn tso_machine_streams_are_reachable() {
        // Everything the TSO simulator produces must be operationally
        // reachable (it IS such a machine).
        for seed in 0..10 {
            let p = vermem_sim_free_program(seed);
            let t = p;
            assert!(operational(&t), "seed {seed}");
        }

        fn vermem_sim_free_program(seed: u64) -> Trace {
            // Local mini-generator to avoid a circular dev-dependency on
            // vermem-sim: an SC generator's trace is TSO-reachable a
            // fortiori.
            vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
                procs: 3,
                total_ops: 16,
                addrs: 2,
                seed,
                ..Default::default()
            })
            .0
        }
    }
}
