//! The SAT compiler: lowering a [`ModelSpec`] to CNF.
//!
//! Every declared model gets a differential oracle for free: the encoding
//! quantifies over the same witness space as the operational compiler —
//! a reads-from selector per read and a total coherence order per address
//! — and asserts the spec's axioms over *closure variables*, one block of
//! `C(i,j)` reachability variables per distinct closure relation set.
//! Base edges imply their closure variable (guarded by the selector/order
//! variables that make the edge exist), transitivity closes the block, and
//! each axiom then reads off reachability:
//!
//! * [`AxiomKind::Acyclic`]: `¬(C(i,j) ∧ C(j,i))` for every pair;
//! * [`AxiomKind::IrreflexiveSeq`]: for every guarded head edge `(a, b)`,
//!   `guards → ¬C(b, a)`.
//!
//! Closure variables are only lower-bounded (edges force them true), which
//! is sound and complete here: a real cycle forces a contradiction, and an
//! acyclic witness lets the solver assign the exact closure. Decoded
//! models are validated against [`check_witness_ev`] — the reference
//! evaluator — before a `Consistent` verdict is issued, so an encoding bug
//! can produce a crash or an `Unsat`-side disagreement in the
//! differential suite, never a bogus witness.

use super::witness::{check_witness_ev, push_rel, witness_schedule, Events, RfCand, Witness};
use super::{AxiomKind, ModelSpec, Rel};
use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use vermem_sat::{CdclSolver, Cnf, Model, SatResult, Var};
use vermem_trace::Trace;

/// A coherence-order decision: constant for program-ordered same-process
/// write pairs (forced by the per-location coherence axiom every spec
/// carries), a variable otherwise.
#[derive(Clone, Copy)]
enum Pair {
    Const(bool),
    Var(Var),
}

/// A literal-or-constant, for clauses mixing variables with forced edges.
#[derive(Clone, Copy)]
enum Term {
    Const(bool),
    Lit(vermem_sat::Lit),
}

/// Add the clause `¬t₁ ∨ … ∨ ¬tₖ ∨ tₖ₊₁ ∨ …` from `(term, negated)`
/// pairs, constant-folding: a true literal satisfies the clause (skip),
/// a false one drops out.
fn clause(cnf: &mut Cnf, terms: &[(Term, bool)]) {
    let mut lits = Vec::with_capacity(terms.len());
    for &(t, neg) in terms {
        match t {
            Term::Const(v) => {
                if v != neg {
                    return; // literal true: clause already satisfied
                }
            }
            Term::Lit(l) => lits.push(if neg { !l } else { l }),
        }
    }
    cnf.add_clause(lits);
}

/// A compiled spec encoding: CNF plus the variable maps needed to decode
/// a model back into a [`Witness`].
pub struct SpecEncoding {
    cnf: Cnf,
    ev: Events,
    /// Reads-from selector per event, parallel to `ev.candidates`.
    sel: Vec<Vec<Var>>,
    /// Triangular per slot: `mo[slot][i][j - i - 1]` ⇔ the slot's `i`-th
    /// write precedes its `j`-th (positions in `ev.writes_by_slot`).
    mo: Vec<Vec<Vec<Pair>>>,
    trivially_unsat: bool,
}

impl SpecEncoding {
    /// The generated CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The encoding is unsatisfiable without solving: an unmatched final
    /// value, a read no write can satisfy, or a final value on a
    /// write-free address that differs from the initial value.
    pub fn trivially_unsat(&self) -> bool {
        self.trivially_unsat
    }

    /// Term for "slot's `i`-th write precedes its `j`-th" (positions).
    fn mo_term(&self, slot: usize, i: usize, j: usize) -> Term {
        let (a, b, flip) = if i < j { (i, j, false) } else { (j, i, true) };
        match self.mo[slot][a][b - a - 1] {
            Pair::Const(c) => Term::Const(c ^ flip),
            Pair::Var(v) => Term::Lit(if flip { v.neg() } else { v.pos() }),
        }
    }

    fn before(&self, model: &Model, slot: usize, i: usize, j: usize) -> bool {
        match self.mo_term(slot, i, j) {
            Term::Const(c) => c,
            Term::Lit(l) => model.lit_value(l).expect("model complete"),
        }
    }

    /// Decode a model into the witness it describes.
    pub fn decode(&self, model: &Model) -> Witness {
        let mut w = Witness::empty(self.ev.len(), self.ev.writes_by_slot.len());
        for (e, sels) in self.sel.iter().enumerate() {
            if let Some(ci) = sels
                .iter()
                .position(|&v| model.value(v).expect("model complete"))
            {
                w.rf[e] = Some(self.ev.candidates[e][ci]);
            }
        }
        for (slot, writes) in self.ev.writes_by_slot.iter().enumerate() {
            let k = writes.len();
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by_key(|&i| {
                (0..k)
                    .filter(|&j| j != i && self.before(model, slot, j, i))
                    .count()
            });
            w.mo[slot] = order.into_iter().map(|i| writes[i]).collect();
        }
        w
    }
}

/// Enumerate `rel`'s potential edges with the guard terms under which each
/// edge exists. Static relations (`po`, `po|loc`, `ppo`, `dob`) come from
/// [`push_rel`] over the empty witness — the same generator the reference
/// evaluator uses — with no guards; `rf`/`mo`/`fr` edges are guarded by
/// the selector and order variables that realize them.
fn for_each_edge(
    rel: Rel,
    spec: &ModelSpec,
    enc: &SpecEncoding,
    f: &mut impl FnMut(&[Term], u32, u32),
) {
    let ev = &enc.ev;
    let sel = &enc.sel;
    let same_proc = |a: u32, b: u32| ev.proc_of[a as usize] == ev.proc_of[b as usize];
    match rel {
        Rel::Po | Rel::PoLoc | Rel::Ppo | Rel::Dob => {
            let empty = Witness::empty(ev.len(), ev.writes_by_slot.len());
            let mut edges = Vec::new();
            push_rel(rel, spec, ev, &empty, &mut edges);
            for (a, b) in edges {
                f(&[], a, b);
            }
        }
        Rel::Rf | Rel::Rfe => {
            for (e, cands) in ev.candidates.iter().enumerate() {
                for (ci, cand) in cands.iter().enumerate() {
                    if let RfCand::From(src) = *cand {
                        if rel == Rel::Rf || !same_proc(src, e as u32) {
                            f(&[Term::Lit(sel[e][ci].pos())], src, e as u32);
                        }
                    }
                }
            }
        }
        Rel::Mo | Rel::Moe => {
            for (slot, writes) in ev.writes_by_slot.iter().enumerate() {
                for i in 0..writes.len() {
                    for j in 0..writes.len() {
                        if i != j && (rel == Rel::Mo || !same_proc(writes[i], writes[j])) {
                            f(&[enc.mo_term(slot, i, j)], writes[i], writes[j]);
                        }
                    }
                }
            }
        }
        Rel::Fr | Rel::Fre => {
            for (e, cands) in ev.candidates.iter().enumerate() {
                let e = e as u32;
                let slot = ev.slot_of[e as usize] as usize;
                let writes = &ev.writes_by_slot[slot];
                for (ci, cand) in cands.iter().enumerate() {
                    let sel_t = Term::Lit(sel[e as usize][ci].pos());
                    for (xi, &x) in writes.iter().enumerate() {
                        if x == e || (rel == Rel::Fre && same_proc(e, x)) {
                            continue;
                        }
                        match *cand {
                            // Reads-from-initial precedes every write.
                            RfCand::Init => f(&[sel_t], e, x),
                            RfCand::From(src) => {
                                if x == src {
                                    continue;
                                }
                                let si = writes
                                    .iter()
                                    .position(|&y| y == src)
                                    .expect("candidate writer is a write");
                                f(&[sel_t, enc.mo_term(slot, si, xi)], e, x);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The closure relation set an axiom transitively closes.
fn closure_rels(kind: AxiomKind) -> &'static [Rel] {
    match kind {
        AxiomKind::Acyclic(rels) => rels,
        AxiomKind::IrreflexiveSeq { closure, .. } => closure,
    }
}

/// Build the CNF encoding of "`trace` has a witness valid under `spec`".
pub fn encode_spec(trace: &Trace, spec: &ModelSpec) -> SpecEncoding {
    let ev = Events::new(trace);
    let n = ev.len();
    let mut cnf = Cnf::new();

    let mut trivially_unsat = ev.finals_unmatched || ev.some_read_unsatisfiable();
    for &(slot, v) in &ev.finals {
        if ev.writes_by_slot[slot as usize].is_empty() && ev.initial[slot as usize] != v {
            trivially_unsat = true;
        }
    }

    // Reads-from selectors: exactly one candidate per read.
    let sel: Vec<Vec<Var>> = ev
        .candidates
        .iter()
        .map(|cands| cnf.new_vars(cands.len()))
        .collect();
    for (e, &(_, op)) in ev.ops.iter().enumerate() {
        if !op.is_reading() {
            continue;
        }
        cnf.add_clause(sel[e].iter().map(|v| v.pos()));
        for i in 0..sel[e].len() {
            for j in i + 1..sel[e].len() {
                cnf.add_clause([sel[e][i].neg(), sel[e][j].neg()]);
            }
        }
    }

    // Coherence-order pairs: same-process pairs are constants — event ids
    // within a process ascend in program order, and reversing them would
    // close a `po|loc ; mo` cycle through the per-location coherence
    // axiom every spec carries (asserted by the registry test).
    let mo: Vec<Vec<Vec<Pair>>> = ev
        .writes_by_slot
        .iter()
        .map(|writes| {
            (0..writes.len())
                .map(|i| {
                    (i + 1..writes.len())
                        .map(|j| {
                            if ev.proc_of[writes[i] as usize] == ev.proc_of[writes[j] as usize] {
                                Pair::Const(true)
                            } else {
                                Pair::Var(cnf.new_var())
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let mut enc = SpecEncoding {
        cnf,
        ev,
        sel,
        mo,
        trivially_unsat,
    };

    // Coherence order is transitive (totality and antisymmetry are
    // structural: one term per pair).
    for slot in 0..enc.ev.writes_by_slot.len() {
        let k = enc.ev.writes_by_slot[slot].len();
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    if a != b && b != c && a != c {
                        let terms = [
                            (enc.mo_term(slot, a, b), true),
                            (enc.mo_term(slot, b, c), true),
                            (enc.mo_term(slot, a, c), false),
                        ];
                        clause(&mut enc.cnf, &terms);
                    }
                }
            }
        }
    }

    // Final values: every write of the wrong value must have a coherence
    // successor (so some right-value write, if any, ends up last).
    for fi in 0..enc.ev.finals.len() {
        let (slot, v) = enc.ev.finals[fi];
        let writes = enc.ev.writes_by_slot[slot as usize].clone();
        for (i, &x) in writes.iter().enumerate() {
            if enc.ev.ops[x as usize].1.written_value() == Some(v) {
                continue;
            }
            let terms: Vec<(Term, bool)> = (0..writes.len())
                .filter(|&j| j != i)
                .map(|j| (enc.mo_term(slot as usize, i, j), false))
                .collect();
            clause(&mut enc.cnf, &terms);
        }
    }

    // Axioms, over closure-variable blocks shared between axioms with the
    // same closure relation set (RA's causality and write-coherence both
    // close po ∪ rf, say).
    let idx = |a: u32, b: u32| a as usize * n + b as usize;
    let mut blocks: Vec<(&'static [Rel], Vec<Var>)> = Vec::new();
    for ax in spec.axioms {
        let rels = closure_rels(ax.kind);
        let block = match blocks.iter().position(|(r, _)| *r == rels) {
            Some(i) => i,
            None => {
                let vars = enc.cnf.new_vars(n * n);
                // Base edges imply their closure variable...
                for &rel in rels {
                    let mut cnf_ref = std::mem::take(&mut enc.cnf);
                    for_each_edge(rel, spec, &enc, &mut |guards, a, b| {
                        let mut terms: Vec<(Term, bool)> =
                            guards.iter().map(|&g| (g, true)).collect();
                        terms.push((Term::Lit(vars[idx(a, b)].pos()), false));
                        clause(&mut cnf_ref, &terms);
                    });
                    enc.cnf = cnf_ref;
                }
                // ...and transitivity closes the block.
                for a in 0..n as u32 {
                    for b in 0..n as u32 {
                        for c in 0..n as u32 {
                            if a != b && b != c && a != c {
                                enc.cnf.add_impl(
                                    [vars[idx(a, b)].pos(), vars[idx(b, c)].pos()],
                                    vars[idx(a, c)].pos(),
                                );
                            }
                        }
                    }
                }
                blocks.push((rels, vars));
                blocks.len() - 1
            }
        };
        let vars = &blocks[block].1;
        match ax.kind {
            AxiomKind::Acyclic(_) => {
                for a in 0..n as u32 {
                    for b in a + 1..n as u32 {
                        enc.cnf
                            .add_clause([vars[idx(a, b)].neg(), vars[idx(b, a)].neg()]);
                    }
                }
            }
            AxiomKind::IrreflexiveSeq { head, .. } => {
                for &rel in head {
                    let mut cnf_ref = std::mem::take(&mut enc.cnf);
                    for_each_edge(rel, spec, &enc, &mut |guards, a, b| {
                        let mut terms: Vec<(Term, bool)> =
                            guards.iter().map(|&g| (g, true)).collect();
                        terms.push((Term::Lit(vars[idx(b, a)].pos()), true));
                        clause(&mut cnf_ref, &terms);
                    });
                    enc.cnf = cnf_ref;
                }
            }
        }
    }

    enc
}

/// Decide adherence of `trace` to `spec` via the SAT encoding. Shares the
/// polynomial per-address precheck with the other engines; decoded
/// witnesses are validated by the reference evaluator before a
/// `Consistent` verdict is issued.
pub fn solve_spec_sat(trace: &Trace, spec: &ModelSpec) -> ConsistencyVerdict {
    if let Some(v) = crate::vsc::precheck_sc(trace) {
        return ConsistencyVerdict::Violating(v);
    }
    let enc = encode_spec(trace, spec);
    if enc.trivially_unsat() {
        return ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        });
    }
    let mut solver = CdclSolver::new(enc.cnf());
    match solver.solve() {
        SatResult::Sat(m) => {
            let w = enc.decode(&m);
            assert!(
                check_witness_ev(spec, &enc.ev, &w).is_ok(),
                "spec encoding produced an invalid witness — encoding bug ({})",
                spec.name
            );
            ConsistencyVerdict::Consistent(witness_schedule(spec, &enc.ev, &w))
        }
        SatResult::Unsat => ConsistencyVerdict::Violating(ConsistencyViolation {
            class: ViolationClass::NoConsistentSchedule,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::{spec, ModelId};
    use crate::sat_vsc::solve_model_sat;
    use vermem_trace::{Op, TraceBuilder};

    /// Message passing: the compiled encoding agrees with the hand-written
    /// serialization encoding on all four base models.
    #[test]
    fn agrees_with_hand_written_encoding_on_mp() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        for id in ModelId::ALL {
            let got = solve_spec_sat(&t, spec(id)).is_consistent();
            if let Some(base) = id.base_model() {
                assert_eq!(
                    got,
                    solve_model_sat(&t, base).is_consistent(),
                    "{}",
                    id.name()
                );
            }
        }
    }

    /// A final value no write can land last for is unsatisfiable.
    #[test]
    fn finals_constrain_the_coherence_order() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        let consistent = solve_spec_sat(&t, spec(ModelId::Ra)).is_consistent();
        assert!(consistent, "w2 before w1 satisfies the final");
        let t2 = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(0u32, 2u64)])
            .proc([Op::write(0u32, 2u64)])
            .final_value(0u32, 1u64)
            .build();
        // Reading 2 after writing 1 forces mo = [w1, w2] under
        // per-location coherence, so the final value 1 is unreachable.
        assert!(!solve_spec_sat(&t2, spec(ModelId::Ra)).is_consistent());
    }
}
