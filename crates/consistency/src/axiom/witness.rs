//! Witness representation and the reference axiom evaluator.
//!
//! A *witness* fixes everything a declarative model quantifies over: `rf`
//! (each read's writer) and `mo` (a total per-address coherence order).
//! This module materializes every [`Rel`] a spec may mention from a
//! (possibly partial) witness and evaluates [`Axiom`]s over the result.
//! It is the single source of truth all three deciders answer to: the
//! graph-lowered operational machine uses it for pruning and acceptance,
//! the SAT compiler validates decoded models against it, and the RA fast
//! tier validates its saturated witness with it.
//!
//! Everything here is *monotone* in the witness: adding a decision only
//! ever adds edges, so an axiom violated by a partial witness is violated
//! by every completion — the soundness argument behind
//! [`partial_infeasible`].

use super::{Axiom, AxiomKind, ModelSpec, Rel};
use vermem_trace::{Op, OpRef, Schedule, Trace, Value};

/// One reads-from candidate for a read event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RfCand {
    /// The read sees the address's initial value.
    Init,
    /// The read sees the write-capable event with this event id.
    From(u32),
}

/// A (possibly partial) witness: `rf` indexed by event id (`None` =
/// undecided, and permanently `None` for non-reads), `mo` as the list of
/// placed write-capable event ids per address slot, in coherence order.
///
/// Event ids number the trace's operations in [`Trace::iter_ops`] order
/// (process-major); slots index the sorted address list.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Reads-from choice per event.
    pub rf: Vec<Option<RfCand>>,
    /// Coherence order per slot (placed prefix during search).
    pub mo: Vec<Vec<u32>>,
}

impl Witness {
    /// The all-undecided witness for an event universe.
    pub(crate) fn empty(n_events: usize, n_slots: usize) -> Witness {
        Witness {
            rf: vec![None; n_events],
            mo: vec![Vec::new(); n_slots],
        }
    }
}

/// The event universe of one trace, precomputed once per solve: ops in
/// event-id order, per-event process/slot, per-slot write lists and
/// per-read `rf` candidates.
pub(crate) struct Events {
    /// Operations in event-id order.
    pub ops: Vec<(OpRef, Op)>,
    /// Owning process per event.
    pub proc_of: Vec<u16>,
    /// Address slot per event.
    pub slot_of: Vec<u32>,
    /// Initial value per slot.
    pub initial: Vec<Value>,
    /// Final-value constraints as `(slot, value)`.
    pub finals: Vec<(u32, Value)>,
    /// A final constraint names an untouched address: never satisfiable.
    pub finals_unmatched: bool,
    /// `rf` candidates per event (empty for non-reads; a read with an
    /// empty list is unsatisfiable under any spec).
    pub candidates: Vec<Vec<RfCand>>,
    /// Write-capable event ids per slot, ascending.
    pub writes_by_slot: Vec<Vec<u32>>,
    /// Event ids per process, ascending (= program order).
    pub by_proc: Vec<Vec<u32>>,
}

impl Events {
    pub(crate) fn new(trace: &Trace) -> Events {
        let ops: Vec<(OpRef, Op)> = trace.iter_ops().collect();
        let n = ops.len();
        let addrs = trace.addresses();
        let initial: Vec<Value> = addrs.iter().map(|&a| trace.initial(a)).collect();

        let mut proc_of = Vec::with_capacity(n);
        let mut slot_of = Vec::with_capacity(n);
        let mut by_proc: Vec<Vec<u32>> = vec![Vec::new(); trace.num_procs()];
        let mut writes_by_slot: Vec<Vec<u32>> = vec![Vec::new(); addrs.len()];
        for (e, &(r, op)) in ops.iter().enumerate() {
            let slot = addrs.binary_search(&op.addr()).expect("touched") as u32;
            proc_of.push(r.proc.0);
            slot_of.push(slot);
            by_proc[r.proc.0 as usize].push(e as u32);
            if op.is_writing() {
                writes_by_slot[slot as usize].push(e as u32);
            }
        }

        let mut finals = Vec::new();
        let mut finals_unmatched = false;
        for (&a, &v) in trace.final_values() {
            match addrs.binary_search(&a) {
                Ok(slot) => finals.push((slot as u32, v)),
                Err(_) => finals_unmatched = true,
            }
        }

        let candidates: Vec<Vec<RfCand>> = ops
            .iter()
            .enumerate()
            .map(|(e, &(_, op))| {
                let Some(need) = op.read_value() else {
                    return Vec::new();
                };
                let slot = slot_of[e] as usize;
                let mut c = Vec::new();
                if initial[slot] == need {
                    c.push(RfCand::Init);
                }
                for &w in &writes_by_slot[slot] {
                    if w != e as u32 && ops[w as usize].1.written_value() == Some(need) {
                        c.push(RfCand::From(w));
                    }
                }
                c
            })
            .collect();

        Events {
            ops,
            proc_of,
            slot_of,
            initial,
            finals,
            finals_unmatched,
            candidates,
            writes_by_slot,
            by_proc,
        }
    }

    /// Number of events.
    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is some read unsatisfiable outright (no `rf` candidate)?
    pub(crate) fn some_read_unsatisfiable(&self) -> bool {
        self.ops
            .iter()
            .zip(&self.candidates)
            .any(|(&(_, op), c)| op.is_reading() && c.is_empty())
    }
}

/// Program-order class used by [`ModelSpec::ppo_cross`].
pub(crate) fn op_class(op: Op) -> usize {
    match op {
        Op::Read { .. } => 0,
        Op::Write { .. } => 1,
        Op::Rmw { .. } => 2,
    }
}

/// Materialize one relation generator's edges from a (partial) witness.
/// The SAT compiler calls this with the empty witness to enumerate the
/// *static* relations (`po`, `po|loc`, `ppo`, `dob`), which do not depend
/// on the witness at all.
pub(crate) fn push_rel(
    rel: Rel,
    spec: &ModelSpec,
    ev: &Events,
    w: &Witness,
    out: &mut Vec<(u32, u32)>,
) {
    let same_proc = |a: u32, b: u32| ev.proc_of[a as usize] == ev.proc_of[b as usize];
    match rel {
        Rel::Po | Rel::PoLoc | Rel::Ppo | Rel::Dob => {
            for evs in &ev.by_proc {
                for (i, &a) in evs.iter().enumerate() {
                    for &b in &evs[i + 1..] {
                        let same_addr = ev.slot_of[a as usize] == ev.slot_of[b as usize];
                        let keep = match rel {
                            Rel::Po => true,
                            Rel::PoLoc => same_addr,
                            Rel::Ppo => {
                                same_addr
                                    || spec.ppo_cross[op_class(ev.ops[a as usize].1)]
                                        [op_class(ev.ops[b as usize].1)]
                            }
                            Rel::Dob => same_addr || ev.ops[a as usize].1.is_reading(),
                            _ => unreachable!(),
                        };
                        if keep {
                            out.push((a, b));
                        }
                    }
                }
            }
        }
        Rel::Rf | Rel::Rfe => {
            for (e, rf) in w.rf.iter().enumerate() {
                if let Some(RfCand::From(src)) = *rf {
                    if rel == Rel::Rf || !same_proc(src, e as u32) {
                        out.push((src, e as u32));
                    }
                }
            }
        }
        Rel::Mo | Rel::Moe => {
            for order in &w.mo {
                for (i, &a) in order.iter().enumerate() {
                    for &b in &order[i + 1..] {
                        if rel == Rel::Mo || !same_proc(a, b) {
                            out.push((a, b));
                        }
                    }
                }
            }
        }
        Rel::Fr | Rel::Fre => {
            for (e, rf) in w.rf.iter().enumerate() {
                let e = e as u32;
                let Some(cand) = *rf else { continue };
                let order = &w.mo[ev.slot_of[e as usize] as usize];
                // Writes `mo`-after this read's writer (all placed writes
                // for reads-from-initial; nothing yet if the writer is
                // unplaced — `fr` stays monotone in the witness).
                let after: &[u32] = match cand {
                    RfCand::Init => order,
                    RfCand::From(src) => match order.iter().position(|&x| x == src) {
                        Some(pos) => &order[pos + 1..],
                        None => &[],
                    },
                };
                for &x in after {
                    if x != e && (rel == Rel::Fr || !same_proc(e, x)) {
                        out.push((e, x));
                    }
                }
            }
        }
    }
}

fn union_edges(rels: &[Rel], spec: &ModelSpec, ev: &Events, w: &Witness) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for &rel in rels {
        push_rel(rel, spec, ev, w, &mut out);
    }
    out
}

/// Cycle detection by iterative three-color DFS.
fn has_cycle(n: usize, edges: &[(u32, u32)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        color[start] = 1;
        stack.push((start as u32, 0));
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if let Some(&next) = adj[v as usize].get(*i) {
                *i += 1;
                match color[next as usize] {
                    0 => {
                        color[next as usize] = 1;
                        stack.push((next, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color[v as usize] = 2;
                stack.pop();
            }
        }
    }
    false
}

/// Reachability-in-one-or-more-steps bitsets (row `v` = events reachable
/// from `v`), by BFS from each node.
pub(crate) fn reach_sets(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u64>> {
    let words = n.div_ceil(64);
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b);
    }
    let mut reach = vec![vec![0u64; words]; n];
    let mut queue = Vec::new();
    for start in 0..n {
        queue.clear();
        queue.extend(adj[start].iter().copied());
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi] as usize;
            qi += 1;
            let (word, bit) = (v / 64, v % 64);
            if reach[start][word] >> bit & 1 == 1 {
                continue;
            }
            reach[start][word] |= 1 << bit;
            queue.extend(adj[v].iter().copied());
        }
    }
    reach
}

/// Is `ax` violated by the witness (partial witnesses give sound partial
/// answers: `true` means every completion is violated too)?
fn axiom_violated(ax: &Axiom, spec: &ModelSpec, ev: &Events, w: &Witness) -> bool {
    let n = ev.len();
    match ax.kind {
        AxiomKind::Acyclic(rels) => has_cycle(n, &union_edges(rels, spec, ev, w)),
        AxiomKind::IrreflexiveSeq { head, closure } => {
            let heads = union_edges(head, spec, ev, w);
            if heads.is_empty() {
                return false;
            }
            let reach = reach_sets(n, &union_edges(closure, spec, ev, w));
            heads
                .iter()
                .any(|&(a, b)| reach[b as usize][a as usize / 64] >> (a as usize % 64) & 1 == 1)
        }
    }
}

/// First axiom of `spec` violated by the witness, if any.
pub(crate) fn violated_axiom(spec: &ModelSpec, ev: &Events, w: &Witness) -> Option<&'static str> {
    spec.axioms
        .iter()
        .find(|ax| axiom_violated(ax, spec, ev, w))
        .map(|ax| ax.name)
}

/// Sound refutation of a *partial* witness: some axiom already fails, or
/// some fully-placed address cannot meet its final-value constraint. By
/// monotonicity, `true` means no completion exists.
pub(crate) fn partial_infeasible(spec: &ModelSpec, ev: &Events, w: &Witness) -> bool {
    for &(slot, v) in &ev.finals {
        let writes = &ev.writes_by_slot[slot as usize];
        let placed = &w.mo[slot as usize];
        if placed.len() == writes.len() {
            let last_ok = match placed.last() {
                Some(&e) => ev.ops[e as usize].1.written_value() == Some(v),
                None => ev.initial[slot as usize] == v,
            };
            if !last_ok {
                return true;
            }
        }
    }
    violated_axiom(spec, ev, w).is_some()
}

/// Validate a *complete* witness against `spec` and the trace's final
/// values. This is the reference evaluator: every compiled decision path
/// (operational acceptance, SAT decode, RA fast tier) answers to it.
pub fn check_witness(trace: &Trace, spec: &ModelSpec, w: &Witness) -> Result<(), &'static str> {
    let ev = Events::new(trace);
    check_witness_ev(spec, &ev, w)
}

pub(crate) fn check_witness_ev(
    spec: &ModelSpec,
    ev: &Events,
    w: &Witness,
) -> Result<(), &'static str> {
    let n = ev.len();
    if w.rf.len() != n || w.mo.len() != ev.writes_by_slot.len() {
        return Err("witness shape mismatch");
    }
    for (e, &(_, op)) in ev.ops.iter().enumerate() {
        match (op.is_reading(), w.rf[e]) {
            (true, Some(cand)) => {
                if !ev.candidates[e].contains(&cand) {
                    return Err("rf choice does not produce the read value");
                }
            }
            (true, None) => return Err("read with undecided rf"),
            (false, Some(_)) => return Err("rf on a non-read"),
            (false, None) => {}
        }
    }
    for (slot, writes) in ev.writes_by_slot.iter().enumerate() {
        let mut placed: Vec<u32> = w.mo[slot].clone();
        placed.sort_unstable();
        if placed != *writes {
            return Err("mo is not a permutation of the address's writes");
        }
    }
    if ev.finals_unmatched {
        return Err("final value on an untouched address");
    }
    for &(slot, v) in &ev.finals {
        let ok = match w.mo[slot as usize].last() {
            Some(&e) => ev.ops[e as usize].1.written_value() == Some(v),
            None => ev.initial[slot as usize] == v,
        };
        if !ok {
            return Err("final value is not the mo-last write");
        }
    }
    match violated_axiom(spec, ev, w) {
        Some(name) => Err(name),
        None => Ok(()),
    }
}

/// Does this spec's axiom set pin a single serialization order
/// (an acyclicity axiom over `ppo ∪ rf ∪ mo ∪ fr`)?
pub(crate) fn spec_serializes(spec: &ModelSpec) -> bool {
    spec.axioms.iter().any(|ax| match ax.kind {
        AxiomKind::Acyclic(rels) => {
            rels.contains(&Rel::Ppo)
                && rels.contains(&Rel::Rf)
                && rels.contains(&Rel::Mo)
                && rels.contains(&Rel::Fr)
        }
        AxiomKind::IrreflexiveSeq { .. } => false,
    })
}

/// Derive a schedule from an accepted witness: a topological order of
/// `ppo ∪ rf ∪ mo ∪ fr` for single-serialization specs (a genuine
/// serialization witness, by the equivalence argument in DESIGN.md §4g),
/// or of `po ∪ rf` — a causal linearization, acyclic under every spec's
/// accepted witnesses — otherwise. Deterministic: Kahn's algorithm with
/// minimal-event-id tie-breaking.
pub(crate) fn witness_schedule(spec: &ModelSpec, ev: &Events, w: &Witness) -> Schedule {
    let n = ev.len();
    let rels: &[Rel] = if spec_serializes(spec) {
        &[Rel::Ppo, Rel::Rf, Rel::Mo, Rel::Fr]
    } else {
        &[Rel::Po, Rel::Rf]
    };
    let edges = union_edges(rels, spec, ev, w);
    let mut indegree = vec![0u32; n];
    let mut adj = vec![Vec::new(); n];
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in &edges {
        if seen.insert((a, b)) {
            indegree[b as usize] += 1;
            adj[a as usize].push(b);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut ready: Vec<bool> = indegree.iter().map(|&d| d == 0).collect();
    for _ in 0..n {
        let e = (0..n)
            .find(|&e| ready[e])
            .expect("accepted witness relations are acyclic");
        ready[e] = false;
        order.push(ev.ops[e].0);
        for &b in &adj[e] {
            indegree[b as usize] -= 1;
            if indegree[b as usize] == 0 {
                ready[b as usize] = true;
            }
        }
    }
    Schedule::from_refs(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::{ARM_DOB_SPEC, RA_SPEC, SC_SPEC};
    use vermem_trace::TraceBuilder;

    /// W(x)1 ; R(x)1 across two procs: the unique witness is valid.
    #[test]
    fn trivial_witness_checks_out() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::read(0u32, 1u64)])
            .build();
        let w = Witness {
            rf: vec![None, Some(RfCand::From(0))],
            mo: vec![vec![0]],
        };
        assert_eq!(check_witness(&t, &SC_SPEC, &w), Ok(()));
        assert_eq!(check_witness(&t, &RA_SPEC, &w), Ok(()));
        assert_eq!(check_witness(&t, &ARM_DOB_SPEC, &w), Ok(()));
    }

    /// CoWW: reversing same-process stores in `mo` breaks every spec's
    /// per-location axiom.
    #[test]
    fn coww_reversal_is_rejected_everywhere() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(0u32, 2u64)])
            .build();
        let good = Witness {
            rf: vec![None, None],
            mo: vec![vec![0, 1]],
        };
        let bad = Witness {
            rf: vec![None, None],
            mo: vec![vec![1, 0]],
        };
        for spec in [&SC_SPEC, &RA_SPEC, &ARM_DOB_SPEC] {
            assert_eq!(check_witness(&t, spec, &good), Ok(()), "{}", spec.name);
            assert!(check_witness(&t, spec, &bad).is_err(), "{}", spec.name);
        }
    }

    /// An intervening write between an RMW's writer and the RMW violates
    /// atomicity.
    #[test]
    fn rmw_atomicity_is_enforced() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 5u64)])
            .proc([Op::rmw(0u32, 1u64, 2u64)])
            .build();
        let adjacent = Witness {
            rf: vec![None, None, Some(RfCand::From(0))],
            mo: vec![vec![0, 2, 1]],
        };
        let split = Witness {
            rf: vec![None, None, Some(RfCand::From(0))],
            mo: vec![vec![0, 1, 2]],
        };
        assert_eq!(check_witness(&t, &SC_SPEC, &adjacent), Ok(()));
        // The split is a cycle under the first listed axiom too (fr ∪ mo),
        // so the diagnostic names whichever fires first; what matters is
        // rejection under every spec...
        assert!(check_witness(&t, &SC_SPEC, &split).is_err());
        assert!(check_witness(&t, &RA_SPEC, &split).is_err());
        // ...and that the atomicity axiom alone already has teeth.
        let atomicity_only = ModelSpec {
            axioms: &[crate::axiom::ATOMICITY],
            ..SC_SPEC
        };
        assert_eq!(check_witness(&t, &atomicity_only, &adjacent), Ok(()));
        assert_eq!(
            check_witness(&t, &atomicity_only, &split),
            Err("rmw-atomicity")
        );
    }

    /// Partial witnesses refute monotonically: a CoRR-style contradiction
    /// is already infeasible before the second read is decided.
    #[test]
    fn partial_refutation_is_sound_and_early() {
        // P0: W(x)1, W(x)2 ; P1: R(x)2, R(x)1 — reads contradict mo.
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(0u32, 2u64)])
            .proc([Op::read(0u32, 2u64), Op::read(0u32, 1u64)])
            .build();
        let ev = Events::new(&t);
        let mut w = Witness::empty(ev.len(), 1);
        w.mo[0] = vec![0, 1];
        w.rf[2] = Some(RfCand::From(1));
        assert!(!partial_infeasible(&SC_SPEC, &ev, &w));
        // Deciding the second read closes the cycle under every spec.
        w.rf[3] = Some(RfCand::From(0));
        assert!(partial_infeasible(&SC_SPEC, &ev, &w));
        assert!(partial_infeasible(&RA_SPEC, &ev, &w));
        assert!(partial_infeasible(&ARM_DOB_SPEC, &ev, &w));
    }

    /// The derived schedule for serializing specs is a genuine
    /// serialization witness.
    #[test]
    fn witness_schedule_serializes_for_sc() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 1u64)])
            .build();
        let ev = Events::new(&t);
        let w = Witness {
            rf: vec![None, None, Some(RfCand::From(1)), Some(RfCand::From(0))],
            mo: vec![vec![0], vec![1]],
        };
        assert_eq!(check_witness_ev(&SC_SPEC, &ev, &w), Ok(()));
        let sched = witness_schedule(&SC_SPEC, &ev, &w);
        assert!(vermem_trace::check_sc_schedule(&t, &sched).is_ok());
    }
}
