//! The Release–Acquire polynomial fast tier.
//!
//! Chakraborty-style observation (PAPERS.md): RA consistency is decidable
//! in polynomial time when each read's writer is unambiguous — and on
//! healthy traces with distinct written values (the common case for
//! generated workloads) it always is. The tier:
//!
//! 1. **escalates** unless every read has exactly one reads-from
//!    candidate (zero candidates is an outright refutation);
//! 2. computes `hb = (po ∪ rf)⁺`; a cycle refutes (causality is forced);
//! 3. **saturates forced coherence edges** per address to a fixpoint:
//!    `hb` between same-address writes, writes `hb`-before a read forced
//!    behind the read's writer, RMW adjacency (an RMW sits immediately
//!    after its writer in coherence order), and the unique final-value
//!    candidate forced last. A contradiction among forced edges — a
//!    coherence cycle, coherence against `hb`, or a from-read against
//!    `hb` — refutes: every edge is mandatory for every RA witness;
//! 4. completes the forced partial order to a total coherence order
//!    (deferring final-value candidates, gluing RMWs behind their
//!    writers) and validates the witness with the reference evaluator
//!    `check_witness_ev`. Valid ⇒ consistent; invalid ⇒ **escalate** —
//!    the completion heuristic, not the trace, may be at fault.
//!
//! Decisions are thus always sound: refutations rest only on forced
//! constraints, acceptances on a checked witness. The exact tier is never
//! masked, only pre-empted when the answer is already certain.

use super::witness::{check_witness_ev, reach_sets, witness_schedule, Events, RfCand, Witness};
use super::RA_SPEC;
use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use vermem_trace::Trace;

/// What the fast tier concluded.
#[derive(Clone, Debug)]
pub enum FastOutcome {
    /// The trace is decided; the exact tier need not run.
    Decided(ConsistencyVerdict),
    /// Ambiguity the polynomial reasoning cannot resolve: escalate.
    Escalate,
}

fn refuted() -> FastOutcome {
    FastOutcome::Decided(ConsistencyVerdict::Violating(ConsistencyViolation {
        class: ViolationClass::NoConsistentSchedule,
    }))
}

/// Try to decide RA consistency of `trace` in polynomial time.
pub fn try_decide(trace: &Trace) -> FastOutcome {
    let ev = Events::new(trace);
    let n = ev.len();
    if ev.finals_unmatched || ev.some_read_unsatisfiable() {
        return refuted();
    }
    for &(slot, v) in &ev.finals {
        let writes = &ev.writes_by_slot[slot as usize];
        let reachable = match writes.len() {
            0 => ev.initial[slot as usize] == v,
            _ => writes
                .iter()
                .any(|&w| ev.ops[w as usize].1.written_value() == Some(v)),
        };
        if !reachable {
            return refuted();
        }
    }

    // The tier's precondition: a unique reads-from candidate per read.
    let mut rf: Vec<Option<RfCand>> = vec![None; n];
    for (e, cands) in ev.candidates.iter().enumerate() {
        if ev.ops[e].1.is_reading() {
            match cands[..] {
                [only] => rf[e] = Some(only),
                _ => return FastOutcome::Escalate,
            }
        }
    }

    // hb = (po ∪ rf)⁺; a cycle violates causality in every completion.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for evs in &ev.by_proc {
        edges.extend(evs.windows(2).map(|w| (w[0], w[1])));
    }
    for (e, r) in rf.iter().enumerate() {
        if let Some(RfCand::From(src)) = *r {
            edges.push((src, e as u32));
        }
    }
    let hb_rows = reach_sets(n, &edges);
    let hb = |a: u32, b: u32| hb_rows[a as usize][b as usize / 64] >> (b as usize % 64) & 1 == 1;
    if (0..n as u32).any(|v| hb(v, v)) {
        return refuted();
    }

    let mut mo: Vec<Vec<u32>> = Vec::with_capacity(ev.writes_by_slot.len());
    for (slot, writes) in ev.writes_by_slot.iter().enumerate() {
        let k = writes.len();
        let pos = |w: u32| writes.iter().position(|&y| y == w).expect("slot write");
        let mut m = vec![vec![false; k]; k];

        // (A) hb between same-address writes is coherence order.
        for i in 0..k {
            for j in 0..k {
                if i != j && hb(writes[i], writes[j]) {
                    m[i][j] = true;
                }
            }
        }

        let slot_reads: Vec<u32> = (0..n as u32)
            .filter(|&e| ev.slot_of[e as usize] == slot as u32 && ev.ops[e as usize].1.is_reading())
            .collect();

        for &r in &slot_reads {
            match rf[r as usize].expect("unique rf decided") {
                // (B') r reads the initial value, so r is from-read-before
                // every write; one hb-before r closes a (fr ; hb) cycle.
                RfCand::Init => {
                    if writes.iter().any(|&w| w != r && hb(w, r)) {
                        return refuted();
                    }
                }
                // (B) a write hb-before r cannot be coherence-after r's
                // writer (that would put it fr-ahead of a read that
                // already observed it): it is forced behind the writer.
                RfCand::From(w) => {
                    let wi = pos(w);
                    for (i, &x) in writes.iter().enumerate() {
                        if x != w && x != r && hb(x, r) {
                            m[i][wi] = true;
                        }
                    }
                }
            }
        }

        // (C) RMW atomicity seeds: an RMW follows its writer immediately;
        // one reading the initial value is coherence-first.
        let rmws: Vec<(usize, Option<usize>)> = slot_reads
            .iter()
            .filter(|&&u| ev.ops[u as usize].1.is_writing())
            .map(|&u| {
                let ui = pos(u);
                match rf[u as usize].expect("unique rf decided") {
                    RfCand::Init => (ui, None),
                    RfCand::From(w) => (ui, Some(pos(w))),
                }
            })
            .collect();
        for &(ui, src) in &rmws {
            match src {
                None => (0..k).filter(|&x| x != ui).for_each(|x| m[ui][x] = true),
                Some(wi) => m[wi][ui] = true,
            }
        }

        // (D) a unique final-value candidate is forced coherence-last.
        let final_v = ev
            .finals
            .iter()
            .find(|&&(s, _)| s as usize == slot)
            .map(|&(_, v)| v);
        if let Some(v) = final_v {
            let cands: Vec<usize> = (0..k)
                .filter(|&i| ev.ops[writes[i] as usize].1.written_value() == Some(v))
                .collect();
            if let [last] = cands[..] {
                (0..k)
                    .filter(|&i| i != last)
                    .for_each(|i| m[i][last] = true);
            }
        }

        // Saturate: transitive closure, then RMW adjacency propagation
        // (anything after an RMW's writer other than the RMW itself is
        // after the RMW; anything before the RMW other than its writer is
        // before the writer), to a fixpoint.
        loop {
            let mut changed = false;
            for via in 0..k {
                for i in 0..k {
                    if i == via || !m[i][via] {
                        continue;
                    }
                    for j in (0..k).filter(|&j| j != i && j != via) {
                        if m[via][j] && !m[i][j] {
                            m[i][j] = true;
                            changed = true;
                        }
                    }
                }
            }
            for &(ui, src) in &rmws {
                if let Some(wi) = src {
                    for x in (0..k).filter(|&x| x != ui && x != wi) {
                        if m[wi][x] && !m[ui][x] {
                            m[ui][x] = true;
                            changed = true;
                        }
                        if m[x][ui] && !m[x][wi] {
                            m[x][wi] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Forced contradictions refute outright.
        for i in 0..k {
            for j in 0..k {
                if i != j && m[i][j] && (m[j][i] || hb(writes[j], writes[i])) {
                    return refuted();
                }
            }
        }
        for &r in &slot_reads {
            if let Some(RfCand::From(w)) = rf[r as usize] {
                let wi = pos(w);
                for (i, &x) in writes.iter().enumerate() {
                    // fr(r, x) is forced; x hb-before r closes (fr ; hb).
                    if x != r && m[wi][i] && hb(x, r) {
                        return refuted();
                    }
                }
            }
        }

        // Complete to a total order: Kahn with final-candidate deferral
        // and RMW gluing. A cycle here is impossible (contradictions
        // were just ruled out), but stay defensive and escalate.
        let mut order = Vec::with_capacity(k);
        let mut done = vec![false; k];
        let mut glue: Vec<Option<usize>> = vec![None; k];
        for &(ui, src) in &rmws {
            if let Some(wi) = src {
                glue[wi] = Some(ui);
            }
        }
        while order.len() < k {
            let ready = |i: usize| !done[i] && (0..k).all(|j| done[j] || !m[j][i]);
            let glued = order
                .last()
                .and_then(|&last: &usize| glue[last])
                .filter(|&u| ready(u));
            let next = glued.or_else(|| {
                let defer = |i: usize| {
                    final_v.is_some() && ev.ops[writes[i] as usize].1.written_value() == final_v
                };
                (0..k)
                    .filter(|&i| ready(i) && !defer(i))
                    .chain((0..k).filter(|&i| ready(i)))
                    .next()
            });
            match next {
                Some(i) => {
                    done[i] = true;
                    order.push(i);
                }
                None => return FastOutcome::Escalate,
            }
        }
        mo.push(order.into_iter().map(|i| writes[i]).collect());
    }

    // Acceptance only through the reference evaluator: the completion is
    // heuristic, so an invalid witness escalates rather than refutes.
    let w = Witness { rf, mo };
    match check_witness_ev(&RA_SPEC, &ev, &w) {
        Ok(()) => FastOutcome::Decided(ConsistencyVerdict::Consistent(witness_schedule(
            &RA_SPEC, &ev, &w,
        ))),
        Err(_) => FastOutcome::Escalate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{Op, TraceBuilder};

    /// Message passing with the stale data read: refuted without search —
    /// the flag read forces the data write hb-before the data read.
    #[test]
    fn mp_violation_is_decided_fast() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 1u64)])
            .proc([Op::read(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        match try_decide(&t) {
            FastOutcome::Decided(v) => assert!(!v.is_consistent()),
            FastOutcome::Escalate => panic!("forced fr/hb contradiction must decide"),
        }
    }

    /// Store buffering is RA-consistent; unique values let the tier build
    /// and validate a witness directly.
    #[test]
    fn store_buffering_is_accepted_fast() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::read(1u32, 0u64)])
            .proc([Op::write(1u32, 1u64), Op::read(0u32, 0u64)])
            .build();
        match try_decide(&t) {
            FastOutcome::Decided(v) => assert!(v.is_consistent()),
            FastOutcome::Escalate => panic!("unique-rf SB must be decided"),
        }
    }

    /// Two writes of the same value: the read is ambiguous, escalate.
    #[test]
    fn ambiguous_rf_escalates() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::read(0u32, 1u64)])
            .build();
        assert!(matches!(try_decide(&t), FastOutcome::Escalate));
    }

    /// RMW chains pin the whole coherence order; decided with glue.
    #[test]
    fn rmw_chain_is_decided() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::rmw(0u32, 1u64, 2u64), Op::rmw(0u32, 2u64, 3u64)])
            .final_value(0u32, 3u64)
            .build();
        match try_decide(&t) {
            FastOutcome::Decided(v) => assert!(v.is_consistent()),
            FastOutcome::Escalate => panic!("rmw chain forces a unique witness"),
        }
    }
}
