//! Memory models as *data*: declarative [`ModelSpec`]s compiled to the
//! exact-search kernel and to SAT.
//!
//! The paper's §6 lifts VMC hardness to a whole family of consistency
//! models, and Chini & Saivasan's framework observation (PAPERS.md) is
//! that the per-model checkers are instances of **one** parameterized
//! algorithm over per-model axioms. This module takes that seriously as an
//! architecture: a memory model is a [`ModelSpec`] — a program-order
//! enforcement table plus a list of [`Axiom`]s over the generated
//! relations `po`, `rf`, `mo`, `fr` (and their derived/external variants)
//! — and two compilers turn the same spec into executable deciders:
//!
//! * the **operational compiler** ([`mod@self`] via [`verify_axiom`] with
//!   [`Engine::Compiled`]) lowers a spec to a
//!   [`vermem_coherence::TransitionSystem`] running on the existing
//!   memo/budget/cancellation/observability kernel. Specs whose axioms
//!   form a *single serialization order* (SC, TSO, PSO, coherence-only)
//!   lower to store-buffer machines over the shared `MachineBase`; all
//!   other specs (Release–Acquire, ARM-dob) lower to a witness-search
//!   machine that decides `rf` and `mo` event by event;
//! * the **SAT compiler** ([`solve_spec_sat`]) lowers the same spec to a
//!   CNF over read-selector, coherence-order and closure variables, so
//!   every declared model gets an independent differential oracle for
//!   free.
//!
//! For Release–Acquire, [`ra_fast`] adds the Chakraborty-et-al-style
//! polynomial fast tier: when every read has a unique writer candidate the
//! forced coherence edges can be saturated to a fixpoint in polynomial
//! time, and a validated witness (or a forced contradiction) decides the
//! trace without touching the exponential tier. It plugs into the same
//! [`TierConfig`] escalation machinery as the per-address closure
//! frontline.
//!
//! ## Axiom semantics
//!
//! Relations are generated over the trace's events (one event per
//! operation; an RMW is a single event with both a read and a write
//! role). A *witness* fixes `rf` (each read's writer, or the initial
//! value) and `mo` (a total coherence order per address); `fr` is derived
//! as `rf⁻¹ ; mo` (reads-from-initial precede every write). A trace is
//! consistent under a spec iff some witness satisfies every axiom *and*
//! the trace's final-value constraints (`mo`-last write per address).

mod graph;
mod operational;
pub mod ra_fast;
mod sat;
mod witness;

pub use sat::{encode_spec, solve_spec_sat, SpecEncoding};
pub use witness::{check_witness, RfCand, Witness};

use crate::models::MemoryModel;
use crate::verdict::ConsistencyVerdict;
use vermem_coherence::closure::Tier;
use vermem_coherence::{KernelConfig, SearchStats, TierConfig};
use vermem_trace::Trace;
use vermem_util::pool::CancelToken;

/// The declared models, a strict superset of the serialization-based
/// [`MemoryModel`] vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelId {
    /// Sequential consistency (VSC, Definition 6.1).
    Sc,
    /// Total Store Order: the store→load program-order edge relaxed.
    Tso,
    /// Partial Store Order: store→load and store→store relaxed.
    Pso,
    /// Coherence only: no cross-address ordering at all (VMC per address).
    CoherenceOnly,
    /// Release–Acquire: causal ordering via `hb = (po ∪ rf)⁺`, with
    /// per-location coherence. Admits a polynomial fast tier.
    Ra,
    /// An ARM-like model ordered by dependency-ordered-before edges plus
    /// *external* coherence (SNIPPETS.md §3's `dob ∪ rfe ∪ moe ∪ fre`).
    ArmDob,
}

impl ModelId {
    /// Every declared model, in presentation order.
    pub const ALL: [ModelId; 6] = [
        ModelId::Sc,
        ModelId::Tso,
        ModelId::Pso,
        ModelId::CoherenceOnly,
        ModelId::Ra,
        ModelId::ArmDob,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Sc => "SC",
            ModelId::Tso => "TSO",
            ModelId::Pso => "PSO",
            ModelId::CoherenceOnly => "Coherence",
            ModelId::Ra => "RA",
            ModelId::ArmDob => "ARM-dob",
        }
    }

    /// Parse the CLI spelling (`--model`).
    pub fn parse(s: &str) -> Option<ModelId> {
        match s {
            "sc" => Some(ModelId::Sc),
            "tso" => Some(ModelId::Tso),
            "pso" => Some(ModelId::Pso),
            "coherence" => Some(ModelId::CoherenceOnly),
            "ra" => Some(ModelId::Ra),
            "arm-dob" => Some(ModelId::ArmDob),
            _ => None,
        }
    }

    /// The serialization-based [`MemoryModel`] this id corresponds to, if
    /// any (RA and ARM-dob are not single-serialization models).
    pub fn base_model(self) -> Option<MemoryModel> {
        match self {
            ModelId::Sc => Some(MemoryModel::Sc),
            ModelId::Tso => Some(MemoryModel::Tso),
            ModelId::Pso => Some(MemoryModel::Pso),
            ModelId::CoherenceOnly => Some(MemoryModel::CoherenceOnly),
            ModelId::Ra | ModelId::ArmDob => None,
        }
    }
}

impl From<MemoryModel> for ModelId {
    fn from(m: MemoryModel) -> ModelId {
        match m {
            MemoryModel::Sc => ModelId::Sc,
            MemoryModel::Tso => ModelId::Tso,
            MemoryModel::Pso => ModelId::Pso,
            MemoryModel::CoherenceOnly => ModelId::CoherenceOnly,
        }
    }
}

/// A relation generator: one of the named relations an [`Axiom`] may
/// mention. Which pairs each generator produces is fixed by the trace,
/// the witness, and (for [`Rel::Ppo`]) the spec's enforcement table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rel {
    /// Program order: all same-process pairs.
    Po,
    /// Program order restricted to same-address pairs.
    PoLoc,
    /// *Preserved* program order: same-address pairs always, cross-address
    /// pairs per the spec's [`ModelSpec::ppo_cross`] table.
    Ppo,
    /// Dependency-ordered-before (derived): program-order pairs whose
    /// source is read-capable (a read orders everything after it), plus
    /// same-address pairs.
    Dob,
    /// Reads-from: chosen writer → read. Reads-from-initial generates no
    /// edge.
    Rf,
    /// External (cross-process) reads-from.
    Rfe,
    /// Coherence order: total per-address write order from the witness.
    Mo,
    /// External (cross-process) coherence order.
    Moe,
    /// From-reads (derived): read → every write `mo`-after its writer
    /// (after *all* writes for reads-from-initial).
    Fr,
    /// External (cross-process) from-reads.
    Fre,
}

/// What an [`Axiom`] demands of its relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomKind {
    /// The union of the listed relations must be acyclic.
    Acyclic(&'static [Rel]),
    /// `head ; closure⁺` must be irreflexive: no edge of any `head`
    /// relation may close a cycle through the transitive closure of the
    /// `closure` union.
    IrreflexiveSeq {
        /// Single-step relations composed in front of the closure.
        head: &'static [Rel],
        /// Relations whose union is transitively closed.
        closure: &'static [Rel],
    },
}

/// One named well-formedness requirement of a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Axiom {
    /// Diagnostic name (`single-order`, `causality`, ...).
    pub name: &'static str,
    /// The requirement itself.
    pub kind: AxiomKind,
}

/// A memory model as data: an enforcement table for [`Rel::Ppo`] plus the
/// axioms every witness must satisfy. Compiled — never interpreted ad hoc
/// — by the operational and SAT compilers.
#[derive(Clone, Copy, Debug)]
pub struct ModelSpec {
    /// Which model this spec declares.
    pub id: ModelId,
    /// Display name (mirrors [`ModelId::name`]).
    pub name: &'static str,
    /// Cross-address program-order enforcement, indexed by
    /// `[earlier class][later class]` with classes read = 0, write = 1,
    /// RMW = 2. Same-address pairs are always preserved (coherence).
    /// Only consulted by [`Rel::Ppo`].
    pub ppo_cross: [[bool; 3]; 3],
    /// The axioms. Every spec must include a per-location coherence axiom
    /// (an [`AxiomKind::Acyclic`] over `rf`, `mo`, `fr` and a
    /// program-order restriction covering same-address pairs) — the
    /// compilers discharge their shared obligations (the per-address
    /// precheck, the SAT compiler's program-ordered `mo` constants)
    /// against it.
    pub axioms: &'static [Axiom],
}

/// RMW atomicity, shared by every spec: no write may intervene between an
/// RMW's writer and the RMW in coherence order (`fr ; mo⁺` irreflexive).
pub(crate) const ATOMICITY: Axiom = Axiom {
    name: "rmw-atomicity",
    kind: AxiomKind::IrreflexiveSeq {
        head: &[Rel::Fr],
        closure: &[Rel::Mo],
    },
};

/// The single-serialization axiom: `ppo ∪ rf ∪ mo ∪ fr` acyclic. By the
/// serialization equivalence (DESIGN.md §4g) this holds iff the trace has
/// one total order extending `ppo` in which every read sees the latest
/// write — the classic executable definition of the SC/TSO/PSO family.
const SINGLE_ORDER: Axiom = Axiom {
    name: "single-order",
    kind: AxiomKind::Acyclic(&[Rel::Ppo, Rel::Rf, Rel::Mo, Rel::Fr]),
};

/// Per-location sequential consistency: `po|loc ∪ rf ∪ mo ∪ fr` acyclic.
const SC_PER_LOCATION: Axiom = Axiom {
    name: "sc-per-location",
    kind: AxiomKind::Acyclic(&[Rel::PoLoc, Rel::Rf, Rel::Mo, Rel::Fr]),
};

/// RA causality: `hb = (po ∪ rf)⁺` is a partial order.
const CAUSALITY: Axiom = Axiom {
    name: "causality",
    kind: AxiomKind::Acyclic(&[Rel::Po, Rel::Rf]),
};

/// RA write coherence: neither `mo` nor `fr` may contradict happens-before
/// (`(mo ∪ fr) ; hb` irreflexive). Together with [`CAUSALITY`] this is the
/// RC11 coherence axiom `irreflexive(hb ; eco?)` restricted to the
/// release–acquire fragment.
const COHERENCE_HB: Axiom = Axiom {
    name: "write-coherence-hb",
    kind: AxiomKind::IrreflexiveSeq {
        head: &[Rel::Mo, Rel::Fr],
        closure: &[Rel::Po, Rel::Rf],
    },
};

/// ARM-style external coherence: `dob ∪ rfe ∪ moe ∪ fre` acyclic —
/// ordering is only demanded of dependency-ordered and *externally*
/// observed communication (SNIPPETS.md §3).
const EXTERNAL_COHERENCE: Axiom = Axiom {
    name: "external-coherence",
    kind: AxiomKind::Acyclic(&[Rel::Dob, Rel::Rfe, Rel::Moe, Rel::Fre]),
};

const ENFORCE_ALL: [[bool; 3]; 3] = [[true; 3]; 3];
const ENFORCE_NONE: [[bool; 3]; 3] = [[false; 3]; 3];

/// SC: every program-order edge preserved in the single order.
pub static SC_SPEC: ModelSpec = ModelSpec {
    id: ModelId::Sc,
    name: "SC",
    ppo_cross: ENFORCE_ALL,
    axioms: &[SINGLE_ORDER, ATOMICITY],
};

/// TSO: the store→load edge relaxed (RMWs order like fences).
pub static TSO_SPEC: ModelSpec = ModelSpec {
    id: ModelId::Tso,
    name: "TSO",
    ppo_cross: [
        [true, true, true],  // read → *
        [false, true, true], // write → read relaxed
        [true, true, true],  // rmw → *
    ],
    axioms: &[SINGLE_ORDER, ATOMICITY],
};

/// PSO: store→load and store→store relaxed; stores still order before
/// RMWs (which drain the buffer).
pub static PSO_SPEC: ModelSpec = ModelSpec {
    id: ModelId::Pso,
    name: "PSO",
    ppo_cross: [
        [true, true, true],   // read → *
        [false, false, true], // write → read and write → write relaxed
        [true, true, true],   // rmw → *
    ],
    axioms: &[SINGLE_ORDER, ATOMICITY],
};

/// Coherence only: with no cross-address edges, `SINGLE_ORDER` degrades
/// to per-location coherence — exactly VMC address by address.
pub static COHERENCE_SPEC: ModelSpec = ModelSpec {
    id: ModelId::CoherenceOnly,
    name: "Coherence",
    ppo_cross: ENFORCE_NONE,
    axioms: &[SINGLE_ORDER, ATOMICITY],
};

/// Release–Acquire: per-location coherence plus causal ordering. The
/// explicit `SC_PER_LOCATION` axiom is implied by the other two but
/// spelled out because the compilers discharge their per-location
/// obligations against it.
pub static RA_SPEC: ModelSpec = ModelSpec {
    id: ModelId::Ra,
    name: "RA",
    ppo_cross: ENFORCE_NONE,
    axioms: &[SC_PER_LOCATION, CAUSALITY, COHERENCE_HB, ATOMICITY],
};

/// ARM-dob: per-location coherence plus external coherence over the
/// derived `dob` edges.
pub static ARM_DOB_SPEC: ModelSpec = ModelSpec {
    id: ModelId::ArmDob,
    name: "ARM-dob",
    ppo_cross: ENFORCE_NONE,
    axioms: &[SC_PER_LOCATION, EXTERNAL_COHERENCE, ATOMICITY],
};

/// The spec registry: every declared model.
pub fn spec(id: ModelId) -> &'static ModelSpec {
    match id {
        ModelId::Sc => &SC_SPEC,
        ModelId::Tso => &TSO_SPEC,
        ModelId::Pso => &PSO_SPEC,
        ModelId::CoherenceOnly => &COHERENCE_SPEC,
        ModelId::Ra => &RA_SPEC,
        ModelId::ArmDob => &ARM_DOB_SPEC,
    }
}

/// Which decider runs a model (`--engine` on the CLI).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The operational compiler on the exact-search kernel (default).
    Compiled,
    /// The pre-refactor hand-written machines (SC/TSO/PSO) or the legacy
    /// SAT dispatch (coherence). Ablation baseline; RA and ARM-dob have
    /// no legacy engine.
    Legacy,
    /// The SAT compiler.
    Sat,
}

impl Engine {
    /// Parse the CLI spelling (`--engine`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "compiled" => Some(Engine::Compiled),
            "legacy" => Some(Engine::Legacy),
            "sat" => Some(Engine::Sat),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Compiled => "compiled",
            Engine::Legacy => "legacy",
            Engine::Sat => "sat",
        }
    }

    /// Does this engine exist for `id`?
    pub fn supports(self, id: ModelId) -> bool {
        self != Engine::Legacy || id.base_model().is_some()
    }
}

/// How to verify a model: which engine, the kernel knobs for the exact
/// search, and whether polynomial frontlines may pre-empt it.
#[derive(Clone, Copy, Debug)]
pub struct AxiomConfig {
    /// Which decider to run.
    pub engine: Engine,
    /// Budget/ablation knobs for the compiled exact search.
    pub kernel: KernelConfig,
    /// Tier pipeline: with `frontline` on (the default), models with a
    /// polynomial fast tier (RA) try it before the exact search.
    pub tier: TierConfig,
}

impl Default for AxiomConfig {
    fn default() -> Self {
        AxiomConfig {
            engine: Engine::Compiled,
            kernel: KernelConfig::default(),
            tier: TierConfig::default(),
        }
    }
}

/// A verdict plus how it was reached: kernel statistics (zero for SAT and
/// frontline decisions) and which tier decided.
#[derive(Clone, Debug)]
pub struct AxiomReport {
    /// The verdict.
    pub verdict: ConsistencyVerdict,
    /// Exact-search statistics ([`SearchStats::default`] when the exact
    /// tier never ran).
    pub stats: SearchStats,
    /// [`Tier::Frontline`] when a polynomial engine (the per-address
    /// precheck or the RA fast tier) decided; [`Tier::Exact`] otherwise.
    pub tier: Tier,
}

/// Verify `trace` under declared model `id`.
///
/// # Panics
///
/// With [`Engine::Legacy`] on a model that has no legacy engine
/// (see [`Engine::supports`]).
pub fn verify_axiom(trace: &Trace, id: ModelId, cfg: &AxiomConfig) -> AxiomReport {
    verify_axiom_with(trace, id, cfg, None)
}

/// [`verify_axiom`] with cooperative cancellation of the exact search.
pub fn verify_axiom_with(
    trace: &Trace,
    id: ModelId,
    cfg: &AxiomConfig,
    cancel: Option<&CancelToken>,
) -> AxiomReport {
    let spec = spec(id);
    match cfg.engine {
        Engine::Sat => AxiomReport {
            verdict: sat::solve_spec_sat(trace, spec),
            stats: SearchStats::default(),
            tier: Tier::Exact,
        },
        Engine::Legacy => {
            let (verdict, stats) = crate::legacy::solve_legacy_with_stats(
                trace,
                id.base_model()
                    .unwrap_or_else(|| panic!("no legacy engine for {}", id.name())),
                &cfg.kernel,
                cancel,
            );
            AxiomReport {
                verdict,
                stats,
                tier: Tier::Exact,
            }
        }
        Engine::Compiled => {
            // Polynomial per-address precheck (shared with the legacy
            // engines): sound for every spec, because every spec carries a
            // per-location coherence axiom.
            if let Some(v) = crate::vsc::precheck_sc(trace) {
                return AxiomReport {
                    verdict: ConsistencyVerdict::Violating(v),
                    stats: SearchStats::default(),
                    tier: Tier::Frontline,
                };
            }
            if id == ModelId::Ra && cfg.tier.frontline {
                if let ra_fast::FastOutcome::Decided(verdict) = ra_fast::try_decide(trace) {
                    return AxiomReport {
                        verdict,
                        stats: SearchStats::default(),
                        tier: Tier::Frontline,
                    };
                }
            }
            let (verdict, stats) = operational::solve_compiled(trace, spec, &cfg.kernel, cancel);
            AxiomReport {
                verdict,
                stats,
                tier: Tier::Exact,
            }
        }
    }
}

/// Compiled-engine entry point used by the thin per-model wrappers
/// ([`crate::solve_sc_backtracking_with_stats`] and friends): no
/// frontline, stats always from the exact search.
pub(crate) fn solve_compiled_with_stats(
    trace: &Trace,
    id: ModelId,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    if let Some(v) = crate::vsc::precheck_sc(trace) {
        return (ConsistencyVerdict::Violating(v), SearchStats::default());
    }
    operational::solve_compiled(trace, spec(id), cfg, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_total_and_named_consistently() {
        for id in ModelId::ALL {
            let s = spec(id);
            assert_eq!(s.id, id);
            assert_eq!(s.name, id.name());
            assert!(
                s.axioms.contains(&ATOMICITY),
                "{}: every spec carries RMW atomicity",
                s.name
            );
            // The per-location obligation the compilers rely on: some
            // acyclicity axiom over rf/mo/fr whose program-order component
            // covers same-address pairs.
            let per_loc = s.axioms.iter().any(|a| match a.kind {
                AxiomKind::Acyclic(rels) => {
                    rels.contains(&Rel::Rf)
                        && rels.contains(&Rel::Mo)
                        && rels.contains(&Rel::Fr)
                        && (rels.contains(&Rel::PoLoc)
                            || rels.contains(&Rel::Po)
                            || rels.contains(&Rel::Ppo))
                }
                AxiomKind::IrreflexiveSeq { .. } => false,
            });
            assert!(per_loc, "{}: missing per-location coherence", s.name);
        }
    }

    #[test]
    fn model_id_round_trips_through_cli_spelling() {
        for id in ModelId::ALL {
            let spelled = match id {
                ModelId::Sc => "sc",
                ModelId::Tso => "tso",
                ModelId::Pso => "pso",
                ModelId::CoherenceOnly => "coherence",
                ModelId::Ra => "ra",
                ModelId::ArmDob => "arm-dob",
            };
            assert_eq!(ModelId::parse(spelled), Some(id));
        }
        assert_eq!(ModelId::parse("sc/tso"), None);
    }

    #[test]
    fn engine_support_matrix() {
        for id in ModelId::ALL {
            assert!(Engine::Compiled.supports(id));
            assert!(Engine::Sat.supports(id));
            assert_eq!(Engine::Legacy.supports(id), id.base_model().is_some());
        }
        assert_eq!(Engine::parse("compiled"), Some(Engine::Compiled));
        assert_eq!(Engine::parse("brute"), None);
    }

    #[test]
    fn base_model_round_trips() {
        for m in MemoryModel::ALL {
            assert_eq!(ModelId::from(m).base_model(), Some(m));
        }
    }
}
