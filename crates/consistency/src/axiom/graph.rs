//! The graph lowering: a witness-construction [`TransitionSystem`] for
//! specs whose axioms do not pin a single serialization order.
//!
//! The machine decides the witness event by event, in event-id order:
//! a read picks its `rf` candidate, a write picks its insertion position
//! in its address's coherence order, and an RMW picks both (with the
//! insertion constrained next-to its writer when that writer is already
//! placed — sound and complete, because atomicity forces adjacency in
//! every accepted completion). Relations only ever grow along a decision
//! path, so [`partial_infeasible`] is a sound kernel pruning hook, and
//! the full [`check_witness_ev`] evaluation is the acceptance test.
//!
//! Every decision is permanent within a path, so distinct paths reach
//! distinct states: the state graph is a tree and the machine opts out of
//! kernel memoization ([`TransitionSystem::memoize`] = false). Budgets,
//! cancellation and [`SearchStats::states`] keep their meaning.

use super::witness::{check_witness_ev, partial_infeasible, Events, RfCand, Witness};
use super::ModelSpec;
use vermem_coherence::kernel::TransitionSystem;
use vermem_trace::OpRef;

/// Sentinel for "no rf / no insertion" halves of a move.
const NONE: u32 = u32::MAX;

/// One witness decision: `cand` indexes the event's `rf` candidate list,
/// `pos` is the `mo` insertion position; either may be [`NONE`].
#[derive(Clone, Copy)]
pub(crate) struct GraphMove {
    cand: u32,
    pos: u32,
}

/// The witness-search machine. Public fields let the solver extract the
/// accepted witness (the kernel leaves the machine in its accepting
/// state).
pub(crate) struct GraphMachine<'a> {
    pub spec: &'a ModelSpec,
    pub ev: Events,
    pub w: Witness,
    /// Next event to decide.
    cursor: usize,
}

impl<'a> GraphMachine<'a> {
    pub(crate) fn new(spec: &'a ModelSpec, ev: Events) -> GraphMachine<'a> {
        let w = Witness::empty(ev.len(), ev.writes_by_slot.len());
        GraphMachine {
            spec,
            ev,
            w,
            cursor: 0,
        }
    }
}

impl TransitionSystem for GraphMachine<'_> {
    type Move = GraphMove;

    fn total_commits(&self) -> usize {
        self.ev.len()
    }

    fn accepting(&self) -> bool {
        check_witness_ev(self.spec, &self.ev, &self.w).is_ok()
    }

    fn absorb(&mut self, _commits: &mut Vec<OpRef>) {
        // Every decision is a branching move; nothing commits for free.
    }

    fn retract_read(&mut self, _r: OpRef) {
        unreachable!("the graph machine absorbs nothing")
    }

    fn infeasible(&self) -> bool {
        partial_infeasible(self.spec, &self.ev, &self.w)
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        // Never consulted (memoize() is false); kept injective anyway so
        // flipping memoization back on could only cost, not corrupt.
        key.push(self.cursor as u64);
        for rf in &self.w.rf[..self.cursor.min(self.w.rf.len())] {
            key.push(match rf {
                None => 0,
                Some(RfCand::Init) => 1,
                Some(RfCand::From(w)) => 2 + u64::from(*w),
            });
        }
        for order in &self.w.mo {
            key.push(order.len() as u64);
            key.extend(order.iter().map(|&e| u64::from(e)));
        }
    }

    fn memoize(&self) -> bool {
        // Decisions are never retaken within a path: the state graph is a
        // tree, so the memo could never hit.
        false
    }

    fn enabled_moves(&self, moves: &mut Vec<GraphMove>) {
        let e = self.cursor;
        debug_assert!(e < self.ev.len(), "moves requested past the last event");
        let op = self.ev.ops[e].1;
        let cands = &self.ev.candidates[e];
        let order = &self.w.mo[self.ev.slot_of[e] as usize];
        match (op.is_reading(), op.is_writing()) {
            (true, false) => {
                for ci in 0..cands.len() {
                    moves.push(GraphMove {
                        cand: ci as u32,
                        pos: NONE,
                    });
                }
            }
            (false, true) => {
                // Prefer appending: program order usually is coherence
                // order in healthy traces.
                for pos in (0..=order.len() as u32).rev() {
                    moves.push(GraphMove { cand: NONE, pos });
                }
            }
            (true, true) => {
                for (ci, cand) in cands.iter().enumerate() {
                    match *cand {
                        // Reads-from-initial: the RMW must be mo-first
                        // (every write is fr-after it).
                        RfCand::Init => moves.push(GraphMove {
                            cand: ci as u32,
                            pos: 0,
                        }),
                        RfCand::From(src) => {
                            match order.iter().position(|&x| x == src) {
                                // Writer placed: atomicity pins the RMW
                                // immediately after it.
                                Some(q) => moves.push(GraphMove {
                                    cand: ci as u32,
                                    pos: q as u32 + 1,
                                }),
                                // Writer still undecided: any slot; the
                                // adjacency violation is pruned when the
                                // writer lands elsewhere.
                                None => {
                                    for pos in (0..=order.len() as u32).rev() {
                                        moves.push(GraphMove {
                                            cand: ci as u32,
                                            pos,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (false, false) => unreachable!("every op reads or writes"),
        }
    }

    fn apply(&mut self, mv: GraphMove) -> Option<OpRef> {
        let e = self.cursor;
        let op = self.ev.ops[e].1;
        if op.is_reading() {
            self.w.rf[e] = Some(self.ev.candidates[e][mv.cand as usize]);
        }
        if op.is_writing() {
            self.w.mo[self.ev.slot_of[e] as usize].insert(mv.pos as usize, e as u32);
        }
        self.cursor += 1;
        Some(self.ev.ops[e].0)
    }

    fn undo(&mut self, mv: GraphMove) {
        self.cursor -= 1;
        let e = self.cursor;
        let op = self.ev.ops[e].1;
        if op.is_writing() {
            let removed = self.w.mo[self.ev.slot_of[e] as usize].remove(mv.pos as usize);
            debug_assert_eq!(removed, e as u32);
        }
        if op.is_reading() {
            self.w.rf[e] = None;
        }
    }
}
