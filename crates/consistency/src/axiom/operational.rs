//! The operational compiler: lower a [`ModelSpec`] to a
//! [`TransitionSystem`] on the exact-search kernel.
//!
//! Two lowerings exist, chosen by inspecting the spec *as data*:
//!
//! * **Buffer lowering** — specs whose axioms pin a single serialization
//!   order ([`super::witness::spec_serializes`]) and whose enforcement
//!   table matches a recognized machine shape compile to one unified
//!   store-buffer machine over the shared
//!   [`MachineBase`](crate::machine::MachineBase): no buffer (SC: every
//!   issue takes effect atomically), one FIFO per process (TSO), or one
//!   FIFO per process×address (PSO). The lowering reproduces the
//!   pre-refactor hand-written machines **bit-identically** — same move
//!   enumeration order, same exploration preference, same state-key
//!   encoding — so verdicts, state sets and [`SearchStats`] match the
//!   `legacy` engines exactly (pinned by the differential suites).
//! * **Graph lowering** — every other spec (coherence-only, RA, ARM-dob)
//!   compiles to the witness-construction machine of [`super::graph`],
//!   which decides `rf` and `mo` directly and answers to the reference
//!   axiom evaluator.
//!
//! The serialization equivalence justifying the buffer lowering — a
//! single `ppo`-extending order with reads-see-latest exists iff some
//! witness satisfies `acyclic(ppo ∪ rf ∪ mo ∪ fr)` plus atomicity and
//! finals — is spelled out in DESIGN.md §4g.

use super::graph::GraphMachine;
use super::witness::{check_witness_ev, spec_serializes, witness_schedule, Events};
use super::ModelSpec;
use crate::machine::{outcome_to_verdict, MachineBase};
use crate::models::{check_model_schedule, MemoryModel};
use crate::verdict::{ConsistencyVerdict, ConsistencyViolation, ViolationClass};
use std::collections::VecDeque;
use vermem_coherence::kernel::{run_search, KernelConfig, KernelOutcome, TransitionSystem};
use vermem_coherence::SearchStats;
use vermem_trace::{Op, OpRef, Schedule, Trace, Value};
use vermem_util::pool::CancelToken;

/// The store-buffer shapes the buffer lowering recognizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BufferKind {
    /// No buffer: every write takes global effect at issue (SC).
    Atomic,
    /// One FIFO per process (TSO).
    ProcFifo,
    /// One FIFO per process × address slot (PSO).
    SlotFifo,
}

impl BufferKind {
    /// The serialization model this machine shape decides — the oracle
    /// for the lowering's witness debug-assert.
    fn base_model(self) -> MemoryModel {
        match self {
            BufferKind::Atomic => MemoryModel::Sc,
            BufferKind::ProcFifo => MemoryModel::Tso,
            BufferKind::SlotFifo => MemoryModel::Pso,
        }
    }
}

/// How a spec lowers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Lowering {
    /// Single-serialization spec with a recognized buffer shape.
    Buffer(BufferKind),
    /// Everything else: direct witness search.
    Graph,
}

/// Enforcement tables of the recognized machine shapes (classes: read,
/// write, RMW).
const SC_TABLE: [[bool; 3]; 3] = [[true; 3]; 3];
const TSO_TABLE: [[bool; 3]; 3] = [[true, true, true], [false, true, true], [true, true, true]];
const PSO_TABLE: [[bool; 3]; 3] = [[true, true, true], [false, false, true], [true, true, true]];

/// Choose the lowering by inspecting the spec as data: the axiom shape
/// first, then the enforcement table.
pub(crate) fn lowering(spec: &ModelSpec) -> Lowering {
    if !spec_serializes(spec) {
        return Lowering::Graph;
    }
    match spec.ppo_cross {
        t if t == SC_TABLE => Lowering::Buffer(BufferKind::Atomic),
        t if t == TSO_TABLE => Lowering::Buffer(BufferKind::ProcFifo),
        t if t == PSO_TABLE => Lowering::Buffer(BufferKind::SlotFifo),
        _ => Lowering::Graph,
    }
}

/// Run the compiled engine. Callers are responsible for the per-address
/// precheck ([`crate::precheck_sc`]); this function only searches.
pub(crate) fn solve_compiled(
    trace: &Trace,
    spec: &ModelSpec,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    match lowering(spec) {
        Lowering::Buffer(kind) => {
            let mut sys = CompiledMachine::new(trace, kind);
            let (outcome, stats) = run_search(&mut sys, cfg, cancel);
            if let KernelOutcome::Accepted(commits) = &outcome {
                let witness = Schedule::from_refs(commits.iter().copied());
                debug_assert!(
                    check_model_schedule(trace, kind.base_model(), &witness).is_ok(),
                    "compiled {:?} machine produced an invalid commit order",
                    kind
                );
            }
            (outcome_to_verdict(outcome, stats), stats)
        }
        Lowering::Graph => {
            let ev = Events::new(trace);
            if ev.finals_unmatched || ev.some_read_unsatisfiable() {
                return (no_schedule(), SearchStats::default());
            }
            let mut sys = GraphMachine::new(spec, ev);
            let (outcome, stats) = run_search(&mut sys, cfg, cancel);
            match outcome {
                KernelOutcome::Accepted(_) => {
                    // The kernel returns with the machine in its accepting
                    // state: the witness is still in place.
                    debug_assert_eq!(check_witness_ev(sys.spec, &sys.ev, &sys.w), Ok(()));
                    let sched = witness_schedule(sys.spec, &sys.ev, &sys.w);
                    (ConsistencyVerdict::Consistent(sched), stats)
                }
                KernelOutcome::Refuted => (no_schedule(), stats),
                KernelOutcome::BudgetExhausted | KernelOutcome::Cancelled => {
                    (ConsistencyVerdict::Unknown { stats }, stats)
                }
            }
        }
    }
}

fn no_schedule() -> ConsistencyVerdict {
    ConsistencyVerdict::Violating(ConsistencyViolation {
        class: ViolationClass::NoConsistentSchedule,
    })
}

/// The unified store-buffer machine: one [`TransitionSystem`] whose
/// [`BufferKind`] parameter reproduces each legacy machine bit-identically.
/// Unused buffer structures stay empty (and cost nothing) under shapes
/// that do not own them.
struct CompiledMachine {
    base: MachineBase,
    kind: BufferKind,
    /// Per-process FIFO of `(slot, value, program index)` (ProcFifo).
    fifo: Vec<VecDeque<(u32, Value, u32)>>,
    /// Per-process, per-slot FIFO of `(value, program index)` (SlotFifo).
    queues: Vec<Vec<VecDeque<(Value, u32)>>>,
    /// Buffered-store count per process (O(1) RMW empty-buffer gate).
    buffered: Vec<u32>,
}

/// One state-changing move, with undo state captured at enumeration.
#[derive(Clone, Copy)]
enum CompiledMove {
    /// Drain one buffered store of process `p` (the captured entry);
    /// `saved` is the memory value it overwrites.
    Drain {
        p: u16,
        slot: u32,
        value: Value,
        index: u32,
        saved: Value,
    },
    /// Issue process `p`'s next instruction. `saved` is the overwritten
    /// memory value when the issue takes immediate effect (RMWs always;
    /// writes only under [`BufferKind::Atomic`]) and unused otherwise.
    Issue { p: u16, saved: Value },
}

impl CompiledMachine {
    fn new(trace: &Trace, kind: BufferKind) -> CompiledMachine {
        let nprocs = trace.num_procs();
        let nslots = trace.addresses().len();
        CompiledMachine {
            base: MachineBase::new(trace),
            kind,
            fifo: if kind == BufferKind::ProcFifo {
                vec![VecDeque::new(); nprocs]
            } else {
                Vec::new()
            },
            queues: if kind == BufferKind::SlotFifo {
                vec![vec![VecDeque::new(); nslots]; nprocs]
            } else {
                Vec::new()
            },
            buffered: vec![0; nprocs],
        }
    }

    /// Does a buffered store block process `p`'s loads from `slot`?
    fn blocked(&self, p: usize, slot: u32) -> bool {
        match self.kind {
            BufferKind::Atomic => false,
            BufferKind::ProcFifo => self.fifo[p].iter().any(|&(s, _, _)| s == slot),
            BufferKind::SlotFifo => !self.queues[p][slot as usize].is_empty(),
        }
    }
}

impl TransitionSystem for CompiledMachine {
    type Move = CompiledMove;

    fn total_commits(&self) -> usize {
        self.base.total
    }

    fn accepting(&self) -> bool {
        // Every commit implies every store drained.
        debug_assert!(self.buffered.iter().all(|&n| n == 0));
        self.base.finals_ok()
    }

    fn absorb(&mut self, commits: &mut Vec<OpRef>) {
        for p in 0..self.base.frontier.len() {
            while let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Read { addr, value } => {
                        let s = self.base.slot(addr);
                        if !self.blocked(p, s) && self.base.memory[s as usize] == value {
                            commits.push(self.base.op_ref(p));
                            self.base.frontier[p] += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    fn retract_read(&mut self, r: OpRef) {
        let p = r.proc.0 as usize;
        self.base.frontier[p] -= 1;
        debug_assert_eq!(self.base.frontier[p], r.index);
    }

    fn infeasible(&self) -> bool {
        self.base.demand_infeasible()
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        self.base.key_base(key);
        match self.kind {
            BufferKind::Atomic => {}
            BufferKind::ProcFifo => {
                for b in &self.fifo {
                    key.push(b.len() as u64);
                    for &(slot, value, index) in b {
                        key.push((u64::from(slot) << 32) | u64::from(index));
                        key.push(value.0);
                    }
                }
            }
            BufferKind::SlotFifo => {
                for qs in &self.queues {
                    let nonempty = qs.iter().filter(|q| !q.is_empty()).count();
                    key.push(nonempty as u64);
                    for (slot, q) in qs.iter().enumerate() {
                        if q.is_empty() {
                            continue;
                        }
                        key.push(((slot as u64) << 32) | q.len() as u64);
                        for &(value, index) in q {
                            key.push(value.0);
                            key.push(u64::from(index));
                        }
                    }
                }
            }
        }
    }

    fn enabled_moves(&self, moves: &mut Vec<CompiledMove>) {
        let demanded = self.base.demanded();
        for p in 0..self.base.frontier.len() {
            // Drains first, matching each shape's legacy enumeration
            // order: the single FIFO head (ProcFifo) or every per-slot
            // head in ascending slot order (SlotFifo).
            match self.kind {
                BufferKind::Atomic => {}
                BufferKind::ProcFifo => {
                    if let Some(&(slot, value, index)) = self.fifo[p].front() {
                        moves.push(CompiledMove::Drain {
                            p: p as u16,
                            slot,
                            value,
                            index,
                            saved: self.base.memory[slot as usize],
                        });
                    }
                }
                BufferKind::SlotFifo => {
                    for (slot, q) in self.queues[p].iter().enumerate() {
                        if let Some(&(value, index)) = q.front() {
                            moves.push(CompiledMove::Drain {
                                p: p as u16,
                                slot: slot as u32,
                                value,
                                index,
                                saved: self.base.memory[slot],
                            });
                        }
                    }
                }
            }
            if let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Write { .. } => {
                        let saved = match self.kind {
                            // Atomic writes take effect at issue: capture
                            // the overwritten value for undo.
                            BufferKind::Atomic => {
                                self.base.memory[self.base.slot(op.addr()) as usize]
                            }
                            _ => Value::INITIAL, // unused for buffered writes
                        };
                        moves.push(CompiledMove::Issue { p: p as u16, saved });
                    }
                    Op::Rmw { addr, read, .. } => {
                        // Atomics drain first (issue only with an empty
                        // buffer) and take effect immediately.
                        let s = self.base.slot(addr);
                        if self.buffered[p] == 0 && self.base.memory[s as usize] == read {
                            moves.push(CompiledMove::Issue {
                                p: p as u16,
                                saved: self.base.memory[s as usize],
                            });
                        }
                    }
                    Op::Read { .. } => {} // absorption only
                }
            }
        }
        // Memory-effecting moves that supply a demanded value first
        // (stable, so program order breaks ties deterministically).
        moves.sort_by_key(|m| {
            let hot = match *m {
                CompiledMove::Drain { slot, value, .. } => demanded.contains(&(slot, value)),
                CompiledMove::Issue { p, .. } => match self.base.next_op(p as usize) {
                    Some(Op::Rmw { addr, write, .. }) => {
                        demanded.contains(&(self.base.slot(addr), write))
                    }
                    Some(Op::Write { addr, value }) if self.kind == BufferKind::Atomic => {
                        demanded.contains(&(self.base.slot(addr), value))
                    }
                    _ => false, // a buffered write supplies nothing yet
                },
            };
            std::cmp::Reverse(hot)
        });
    }

    fn apply(&mut self, mv: CompiledMove) -> Option<OpRef> {
        match mv {
            CompiledMove::Drain {
                p,
                slot,
                value,
                index,
                ..
            } => {
                match self.kind {
                    BufferKind::ProcFifo => {
                        let popped = self.fifo[p as usize].pop_front();
                        debug_assert_eq!(popped, Some((slot, value, index)));
                    }
                    BufferKind::SlotFifo => {
                        let popped = self.queues[p as usize][slot as usize].pop_front();
                        debug_assert_eq!(popped, Some((value, index)));
                    }
                    BufferKind::Atomic => unreachable!("the atomic lowering never drains"),
                }
                self.buffered[p as usize] -= 1;
                self.base.memory[slot as usize] = value;
                self.base.take_supply(slot, value);
                Some(OpRef::new(p, index))
            }
            CompiledMove::Issue { p, .. } => {
                let p = p as usize;
                let op = self.base.next_op(p).expect("enabled");
                let index = self.base.frontier[p];
                self.base.frontier[p] += 1;
                match op {
                    Op::Write { addr, value } => {
                        let s = self.base.slot(addr);
                        match self.kind {
                            BufferKind::Atomic => {
                                self.base.memory[s as usize] = value;
                                self.base.take_supply(s, value);
                                Some(OpRef::new(p as u16, index))
                            }
                            BufferKind::ProcFifo => {
                                self.fifo[p].push_back((s, value, index));
                                self.buffered[p] += 1;
                                None // commits at drain
                            }
                            BufferKind::SlotFifo => {
                                self.queues[p][s as usize].push_back((value, index));
                                self.buffered[p] += 1;
                                None // commits at drain
                            }
                        }
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.memory[s as usize] = write;
                        self.base.take_supply(s, write);
                        Some(OpRef::new(p as u16, index))
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }

    fn undo(&mut self, mv: CompiledMove) {
        match mv {
            CompiledMove::Drain {
                p,
                slot,
                value,
                index,
                saved,
            } => {
                self.base.put_supply(slot, value);
                self.base.memory[slot as usize] = saved;
                match self.kind {
                    BufferKind::ProcFifo => self.fifo[p as usize].push_front((slot, value, index)),
                    BufferKind::SlotFifo => {
                        self.queues[p as usize][slot as usize].push_front((value, index))
                    }
                    BufferKind::Atomic => unreachable!("the atomic lowering never drains"),
                }
                self.buffered[p as usize] += 1;
            }
            CompiledMove::Issue { p, saved } => {
                let p = p as usize;
                self.base.frontier[p] -= 1;
                match self.base.next_op(p).expect("applied") {
                    Op::Write { addr, value } => {
                        let s = self.base.slot(addr);
                        match self.kind {
                            BufferKind::Atomic => {
                                self.base.put_supply(s, value);
                                self.base.memory[s as usize] = saved;
                            }
                            BufferKind::ProcFifo => {
                                self.fifo[p].pop_back();
                                self.buffered[p] -= 1;
                            }
                            BufferKind::SlotFifo => {
                                self.queues[p][s as usize].pop_back();
                                self.buffered[p] -= 1;
                            }
                        }
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.put_supply(s, write);
                        self.base.memory[s as usize] = saved;
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::{spec, ModelId};

    #[test]
    fn lowering_recognizes_the_declared_shapes() {
        assert_eq!(
            lowering(spec(ModelId::Sc)),
            Lowering::Buffer(BufferKind::Atomic)
        );
        assert_eq!(
            lowering(spec(ModelId::Tso)),
            Lowering::Buffer(BufferKind::ProcFifo)
        );
        assert_eq!(
            lowering(spec(ModelId::Pso)),
            Lowering::Buffer(BufferKind::SlotFifo)
        );
        assert_eq!(lowering(spec(ModelId::CoherenceOnly)), Lowering::Graph);
        assert_eq!(lowering(spec(ModelId::Ra)), Lowering::Graph);
        assert_eq!(lowering(spec(ModelId::ArmDob)), Lowering::Graph);
    }
}
