//! The pre-refactor hand-written machines, kept **verbatim** as the
//! ablation baseline behind [`crate::axiom::Engine::Legacy`].
//!
//! The compiled engine ([`crate::axiom`]) is required to be bit-identical
//! to these machines — same verdicts, same [`SearchStats`], same explored
//! state sets — on every model they cover; the differential suite pins
//! that equivalence. Nothing else in the crate may hand-roll a
//! [`TransitionSystem`]: new models are declared as
//! [`crate::axiom::ModelSpec`]s and compiled.

use crate::machine::{outcome_to_verdict, MachineBase};
use crate::models::{check_model_schedule, MemoryModel};
use crate::verdict::ConsistencyVerdict;
use crate::vsc::precheck_sc;
use std::collections::VecDeque;
use vermem_coherence::kernel::{run_search, KernelConfig, KernelOutcome, TransitionSystem};
use vermem_coherence::SearchStats;
use vermem_trace::{check_sc_schedule, Op, OpRef, Schedule, Trace, Value};
use vermem_util::pool::CancelToken;

/// Decide `trace` under `model` with the legacy machines (SC/TSO/PSO) or
/// the legacy SAT dispatch (coherence-only, which predates the graph
/// lowering and never had a search machine of its own).
pub(crate) fn solve_legacy_with_stats(
    trace: &Trace,
    model: MemoryModel,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (ConsistencyVerdict, SearchStats) {
    if let Some(v) = precheck_sc(trace) {
        return (ConsistencyVerdict::Violating(v), SearchStats::default());
    }
    match model {
        MemoryModel::Sc => {
            let mut sys = ScMachine {
                base: MachineBase::new(trace),
            };
            let (outcome, stats) = run_search(&mut sys, cfg, cancel);
            if let KernelOutcome::Accepted(commits) = &outcome {
                let witness = Schedule::from_refs(commits.iter().copied());
                debug_assert!(
                    check_sc_schedule(trace, &witness).is_ok(),
                    "legacy VSC machine produced invalid witness"
                );
            }
            (outcome_to_verdict(outcome, stats), stats)
        }
        MemoryModel::Tso => {
            let mut sys = TsoMachine {
                base: MachineBase::new(trace),
                buffers: vec![VecDeque::new(); trace.num_procs()],
            };
            let (outcome, stats) = run_search(&mut sys, cfg, cancel);
            if let KernelOutcome::Accepted(commits) = &outcome {
                let witness = Schedule::from_refs(commits.iter().copied());
                debug_assert!(
                    check_model_schedule(trace, MemoryModel::Tso, &witness).is_ok(),
                    "legacy TSO machine produced an invalid commit order"
                );
            }
            (outcome_to_verdict(outcome, stats), stats)
        }
        MemoryModel::Pso => {
            let nprocs = trace.num_procs();
            let nslots = trace.addresses().len();
            let mut sys = PsoMachine {
                base: MachineBase::new(trace),
                queues: vec![vec![VecDeque::new(); nslots]; nprocs],
                buffered: vec![0; nprocs],
            };
            let (outcome, stats) = run_search(&mut sys, cfg, cancel);
            if let KernelOutcome::Accepted(commits) = &outcome {
                let witness = Schedule::from_refs(commits.iter().copied());
                debug_assert!(
                    check_model_schedule(trace, MemoryModel::Pso, &witness).is_ok(),
                    "legacy PSO machine produced an invalid commit order"
                );
            }
            (outcome_to_verdict(outcome, stats), stats)
        }
        MemoryModel::CoherenceOnly => (
            crate::sat_vsc::solve_model_sat(trace, model),
            SearchStats::default(),
        ),
    }
}

/// The atomic-memory interleaving machine: every operation takes global
/// effect at issue. Reads commit through kernel absorption; the branching
/// moves are the write-capable issues.
struct ScMachine {
    base: MachineBase,
}

/// One write-capable issue by process `p`. `saved` is the memory value the
/// write will overwrite, captured at enumeration time for undo.
#[derive(Clone, Copy)]
struct ScMove {
    p: u16,
    saved: Value,
}

impl TransitionSystem for ScMachine {
    type Move = ScMove;

    fn total_commits(&self) -> usize {
        self.base.total
    }

    fn accepting(&self) -> bool {
        self.base.finals_ok()
    }

    fn absorb(&mut self, commits: &mut Vec<OpRef>) {
        for p in 0..self.base.frontier.len() {
            while let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Read { addr, value }
                        if self.base.memory[self.base.slot(addr) as usize] == value =>
                    {
                        commits.push(self.base.op_ref(p));
                        self.base.frontier[p] += 1;
                    }
                    _ => break,
                }
            }
        }
    }

    fn retract_read(&mut self, r: OpRef) {
        let p = r.proc.0 as usize;
        self.base.frontier[p] -= 1;
        debug_assert_eq!(self.base.frontier[p], r.index);
    }

    fn infeasible(&self) -> bool {
        self.base.demand_infeasible()
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        self.base.key_base(key);
    }

    fn enabled_moves(&self, moves: &mut Vec<ScMove>) {
        let demanded = self.base.demanded();
        for p in 0..self.base.frontier.len() {
            if let Some(op) = self.base.next_op(p) {
                let enabled = match op {
                    Op::Write { .. } => true,
                    Op::Rmw { addr, read, .. } => {
                        self.base.memory[self.base.slot(addr) as usize] == read
                    }
                    Op::Read { .. } => false, // reads commit via absorption
                };
                if enabled {
                    let s = self.base.slot(op.addr());
                    moves.push(ScMove {
                        p: p as u16,
                        saved: self.base.memory[s as usize],
                    });
                }
            }
        }
        // Explore writes of demanded values first (stable, so program
        // order breaks ties deterministically).
        moves.sort_by_key(|m| {
            let op = self.base.next_op(m.p as usize).expect("enabled");
            let s = self.base.slot(op.addr());
            let hot = op
                .written_value()
                .is_some_and(|v| demanded.contains(&(s, v)));
            std::cmp::Reverse(hot)
        });
    }

    fn apply(&mut self, mv: ScMove) -> Option<OpRef> {
        let p = mv.p as usize;
        let r = self.base.op_ref(p);
        let op = self.base.next_op(p).expect("enabled");
        let s = self.base.slot(op.addr());
        let w = op.written_value().expect("write-capable");
        self.base.frontier[p] += 1;
        self.base.memory[s as usize] = w;
        self.base.take_supply(s, w);
        Some(r)
    }

    fn undo(&mut self, mv: ScMove) {
        let p = mv.p as usize;
        self.base.frontier[p] -= 1;
        let op = self.base.next_op(p).expect("applied");
        let s = self.base.slot(op.addr());
        let w = op.written_value().expect("write-capable");
        self.base.put_supply(s, w);
        self.base.memory[s as usize] = mv.saved;
    }
}

/// The TSO store-buffer machine. Buffer entries are
/// `(slot, value, program index)`; stores commit at drain.
struct TsoMachine {
    base: MachineBase,
    buffers: Vec<VecDeque<(u32, Value, u32)>>,
}

/// One state-changing TSO move, with undo state captured at enumeration.
#[derive(Clone, Copy)]
enum TsoMove {
    /// Drain process `p`'s oldest buffered store (the captured entry);
    /// `saved` is the memory value it overwrites.
    Drain {
        p: u16,
        slot: u32,
        value: Value,
        index: u32,
        saved: Value,
    },
    /// Issue process `p`'s next instruction (a `Write` entering the buffer,
    /// or an enabled `Rmw` taking immediate effect; `saved` is meaningful
    /// only for the latter). Loads are never issued as moves — they commit
    /// through kernel absorption.
    Issue { p: u16, saved: Value },
}

impl TsoMachine {
    /// Does `p` hold a buffered store to `slot`? (No forwarding: such a
    /// store blocks `p`'s loads from that address.)
    fn blocked(&self, p: usize, slot: u32) -> bool {
        self.buffers[p].iter().any(|&(s, _, _)| s == slot)
    }
}

impl TransitionSystem for TsoMachine {
    type Move = TsoMove;

    fn total_commits(&self) -> usize {
        self.base.total
    }

    fn accepting(&self) -> bool {
        // Every commit implies every store drained: buffers are empty here.
        debug_assert!(self.buffers.iter().all(VecDeque::is_empty));
        self.base.finals_ok()
    }

    fn absorb(&mut self, commits: &mut Vec<OpRef>) {
        for p in 0..self.base.frontier.len() {
            while let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Read { addr, value } => {
                        let s = self.base.slot(addr);
                        if !self.blocked(p, s) && self.base.memory[s as usize] == value {
                            commits.push(self.base.op_ref(p));
                            self.base.frontier[p] += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    fn retract_read(&mut self, r: OpRef) {
        let p = r.proc.0 as usize;
        self.base.frontier[p] -= 1;
        debug_assert_eq!(self.base.frontier[p], r.index);
    }

    fn infeasible(&self) -> bool {
        self.base.demand_infeasible()
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        self.base.key_base(key);
        for b in &self.buffers {
            key.push(b.len() as u64);
            for &(slot, value, index) in b {
                key.push((u64::from(slot) << 32) | u64::from(index));
                key.push(value.0);
            }
        }
    }

    fn enabled_moves(&self, moves: &mut Vec<TsoMove>) {
        let demanded = self.base.demanded();
        for p in 0..self.base.frontier.len() {
            if let Some(&(slot, value, index)) = self.buffers[p].front() {
                moves.push(TsoMove::Drain {
                    p: p as u16,
                    slot,
                    value,
                    index,
                    saved: self.base.memory[slot as usize],
                });
            }
            if let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Write { .. } => moves.push(TsoMove::Issue {
                        p: p as u16,
                        saved: Value::INITIAL, // unused for writes
                    }),
                    Op::Rmw { addr, read, .. } => {
                        // Atomics drain first (issue only with an empty
                        // buffer) and take effect immediately.
                        let s = self.base.slot(addr);
                        if self.buffers[p].is_empty() && self.base.memory[s as usize] == read {
                            moves.push(TsoMove::Issue {
                                p: p as u16,
                                saved: self.base.memory[s as usize],
                            });
                        }
                    }
                    Op::Read { .. } => {} // absorption only
                }
            }
        }
        // Memory-effecting moves that supply a demanded value first.
        moves.sort_by_key(|m| {
            let hot = match *m {
                TsoMove::Drain { slot, value, .. } => demanded.contains(&(slot, value)),
                TsoMove::Issue { p, .. } => match self.base.next_op(p as usize) {
                    Some(Op::Rmw { addr, write, .. }) => {
                        demanded.contains(&(self.base.slot(addr), write))
                    }
                    _ => false, // a buffered write supplies nothing yet
                },
            };
            std::cmp::Reverse(hot)
        });
    }

    fn apply(&mut self, mv: TsoMove) -> Option<OpRef> {
        match mv {
            TsoMove::Drain {
                p,
                slot,
                value,
                index,
                ..
            } => {
                let popped = self.buffers[p as usize].pop_front();
                debug_assert_eq!(popped, Some((slot, value, index)));
                self.base.memory[slot as usize] = value;
                self.base.take_supply(slot, value);
                Some(OpRef::new(p, index))
            }
            TsoMove::Issue { p, .. } => {
                let p = p as usize;
                let op = self.base.next_op(p).expect("enabled");
                let index = self.base.frontier[p];
                self.base.frontier[p] += 1;
                match op {
                    Op::Write { addr, value } => {
                        let s = self.base.slot(addr);
                        self.buffers[p].push_back((s, value, index));
                        None // commits at drain
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.memory[s as usize] = write;
                        self.base.take_supply(s, write);
                        Some(OpRef::new(p as u16, index))
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }

    fn undo(&mut self, mv: TsoMove) {
        match mv {
            TsoMove::Drain {
                p,
                slot,
                value,
                index,
                saved,
            } => {
                self.base.put_supply(slot, value);
                self.base.memory[slot as usize] = saved;
                self.buffers[p as usize].push_front((slot, value, index));
            }
            TsoMove::Issue { p, saved } => {
                let p = p as usize;
                self.base.frontier[p] -= 1;
                match self.base.next_op(p).expect("applied") {
                    Op::Write { .. } => {
                        self.buffers[p].pop_back();
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.put_supply(s, write);
                        self.base.memory[s as usize] = saved;
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }
}

/// The PSO store-buffer machine: one FIFO queue of `(value, program index)`
/// per (process, slot), plus a per-process buffered-store count for O(1)
/// RMW empty-buffer checks.
struct PsoMachine {
    base: MachineBase,
    queues: Vec<Vec<VecDeque<(Value, u32)>>>,
    buffered: Vec<u32>,
}

/// One state-changing PSO move, with undo state captured at enumeration.
#[derive(Clone, Copy)]
enum PsoMove {
    /// Drain the head of `p`'s queue for `slot` (the captured entry);
    /// `saved` is the memory value it overwrites.
    Drain {
        p: u16,
        slot: u32,
        value: Value,
        index: u32,
        saved: Value,
    },
    /// Issue process `p`'s next instruction (a `Write` entering its
    /// per-address queue, or an enabled `Rmw`; `saved` is meaningful only
    /// for the latter). Loads commit through kernel absorption.
    Issue { p: u16, saved: Value },
}

impl TransitionSystem for PsoMachine {
    type Move = PsoMove;

    fn total_commits(&self) -> usize {
        self.base.total
    }

    fn accepting(&self) -> bool {
        // Every commit implies every store drained: buffers are empty here.
        debug_assert!(self.buffered.iter().all(|&n| n == 0));
        self.base.finals_ok()
    }

    fn absorb(&mut self, commits: &mut Vec<OpRef>) {
        for p in 0..self.base.frontier.len() {
            while let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Read { addr, value } => {
                        let s = self.base.slot(addr);
                        if self.queues[p][s as usize].is_empty()
                            && self.base.memory[s as usize] == value
                        {
                            commits.push(self.base.op_ref(p));
                            self.base.frontier[p] += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    fn retract_read(&mut self, r: OpRef) {
        let p = r.proc.0 as usize;
        self.base.frontier[p] -= 1;
        debug_assert_eq!(self.base.frontier[p], r.index);
    }

    fn infeasible(&self) -> bool {
        self.base.demand_infeasible()
    }

    fn state_key(&self, key: &mut Vec<u64>) {
        self.base.key_base(key);
        for qs in &self.queues {
            let nonempty = qs.iter().filter(|q| !q.is_empty()).count();
            key.push(nonempty as u64);
            for (slot, q) in qs.iter().enumerate() {
                if q.is_empty() {
                    continue;
                }
                key.push(((slot as u64) << 32) | q.len() as u64);
                for &(value, index) in q {
                    key.push(value.0);
                    key.push(u64::from(index));
                }
            }
        }
    }

    fn enabled_moves(&self, moves: &mut Vec<PsoMove>) {
        let demanded = self.base.demanded();
        for p in 0..self.base.frontier.len() {
            // Drains: the head of any non-empty per-address queue, in
            // ascending slot order.
            for (slot, q) in self.queues[p].iter().enumerate() {
                if let Some(&(value, index)) = q.front() {
                    moves.push(PsoMove::Drain {
                        p: p as u16,
                        slot: slot as u32,
                        value,
                        index,
                        saved: self.base.memory[slot],
                    });
                }
            }
            if let Some(op) = self.base.next_op(p) {
                match op {
                    Op::Write { .. } => moves.push(PsoMove::Issue {
                        p: p as u16,
                        saved: Value::INITIAL, // unused for writes
                    }),
                    Op::Rmw { addr, read, .. } => {
                        // Atomics drain the whole buffer first, then take
                        // effect immediately.
                        let s = self.base.slot(addr);
                        if self.buffered[p] == 0 && self.base.memory[s as usize] == read {
                            moves.push(PsoMove::Issue {
                                p: p as u16,
                                saved: self.base.memory[s as usize],
                            });
                        }
                    }
                    Op::Read { .. } => {} // absorption only
                }
            }
        }
        // Memory-effecting moves that supply a demanded value first.
        moves.sort_by_key(|m| {
            let hot = match *m {
                PsoMove::Drain { slot, value, .. } => demanded.contains(&(slot, value)),
                PsoMove::Issue { p, .. } => match self.base.next_op(p as usize) {
                    Some(Op::Rmw { addr, write, .. }) => {
                        demanded.contains(&(self.base.slot(addr), write))
                    }
                    _ => false,
                },
            };
            std::cmp::Reverse(hot)
        });
    }

    fn apply(&mut self, mv: PsoMove) -> Option<OpRef> {
        match mv {
            PsoMove::Drain {
                p,
                slot,
                value,
                index,
                ..
            } => {
                let popped = self.queues[p as usize][slot as usize].pop_front();
                debug_assert_eq!(popped, Some((value, index)));
                self.buffered[p as usize] -= 1;
                self.base.memory[slot as usize] = value;
                self.base.take_supply(slot, value);
                Some(OpRef::new(p, index))
            }
            PsoMove::Issue { p, .. } => {
                let p = p as usize;
                let op = self.base.next_op(p).expect("enabled");
                let index = self.base.frontier[p];
                self.base.frontier[p] += 1;
                match op {
                    Op::Write { addr, value } => {
                        let s = self.base.slot(addr);
                        self.queues[p][s as usize].push_back((value, index));
                        self.buffered[p] += 1;
                        None // commits at drain
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.memory[s as usize] = write;
                        self.base.take_supply(s, write);
                        Some(OpRef::new(p as u16, index))
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }

    fn undo(&mut self, mv: PsoMove) {
        match mv {
            PsoMove::Drain {
                p,
                slot,
                value,
                index,
                saved,
            } => {
                self.base.put_supply(slot, value);
                self.base.memory[slot as usize] = saved;
                self.queues[p as usize][slot as usize].push_front((value, index));
                self.buffered[p as usize] += 1;
            }
            PsoMove::Issue { p, saved } => {
                let p = p as usize;
                self.base.frontier[p] -= 1;
                match self.base.next_op(p).expect("applied") {
                    Op::Write { addr, .. } => {
                        let s = self.base.slot(addr);
                        self.queues[p][s as usize].pop_back();
                        self.buffered[p] -= 1;
                    }
                    Op::Rmw { addr, write, .. } => {
                        let s = self.base.slot(addr);
                        self.base.put_supply(s, write);
                        self.base.memory[s as usize] = saved;
                    }
                    Op::Read { .. } => unreachable!("reads are absorbed, not issued"),
                }
            }
        }
    }
}
