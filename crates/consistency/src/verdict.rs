//! Verdicts for consistency-model verification.

use vermem_coherence::SearchStats;
use vermem_trace::Schedule;

/// Why a trace violates a consistency model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationClass {
    /// Some address is not even coherent (detected by the per-address
    /// prechecks); every model in the §6.2 family is therefore violated.
    PerAddressCoherence(vermem_coherence::Violation),
    /// All static checks pass but no schedule satisfying the model's order
    /// and value rules exists.
    NoConsistentSchedule,
}

/// A consistency violation report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyViolation {
    /// The failure class.
    pub class: ViolationClass,
}

impl std::fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.class {
            ViolationClass::PerAddressCoherence(v) => {
                write!(f, "consistency violated via incoherence: {v}")
            }
            ViolationClass::NoConsistentSchedule => {
                write!(
                    f,
                    "no schedule satisfies the model's ordering and value rules"
                )
            }
        }
    }
}

/// Answer to a consistency-model query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsistencyVerdict {
    /// The trace adheres to the model; the witness schedule is attached.
    Consistent(Schedule),
    /// The trace violates the model.
    Violating(ConsistencyViolation),
    /// The solver's budget was exhausted (or it was cancelled) before an
    /// answer was known; the kernel's counters report how far it got.
    Unknown {
        /// Search statistics at the moment the solver gave up.
        stats: SearchStats,
    },
}

impl ConsistencyVerdict {
    /// True if a witness schedule was found.
    pub fn is_consistent(&self) -> bool {
        matches!(self, ConsistencyVerdict::Consistent(_))
    }

    /// True if a violation was proven.
    pub fn is_violating(&self) -> bool {
        matches!(self, ConsistencyVerdict::Violating(_))
    }

    /// The witness schedule, if consistent.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            ConsistencyVerdict::Consistent(s) => Some(s),
            _ => None,
        }
    }

    /// The search statistics, if the verdict is inconclusive.
    pub fn unknown_stats(&self) -> Option<&SearchStats> {
        match self {
            ConsistencyVerdict::Unknown { stats } => Some(stats),
            _ => None,
        }
    }
}
