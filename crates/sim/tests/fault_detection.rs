//! End-to-end dynamic verification (the paper's §1 motivation): run the
//! MESI machine, inject protocol faults, and check that the coherence
//! verifier catches what a broken memory system produces — with no false
//! positives on healthy runs.

use vermem_coherence::{solve_with_write_order, verify_execution, Verdict};
use vermem_sim::{random_program, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig};

fn workload(seed: u64) -> vermem_sim::Program {
    random_program(&WorkloadConfig {
        cpus: 3,
        instrs_per_cpu: 30,
        addrs: 2,
        write_fraction: 0.45,
        rmw_fraction: 0.0,
        seed,
    })
}

#[test]
fn healthy_runs_never_flag() {
    for seed in 0..30 {
        let cap = Machine::run(
            &workload(seed),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        assert!(
            verify_execution(&cap.trace).is_coherent(),
            "false positive on a fault-free run (seed {seed})"
        );
    }
}

#[test]
fn healthy_tso_runs_never_flag() {
    for seed in 0..30 {
        let cap = Machine::run(
            &workload(1000 + seed),
            MachineConfig {
                store_buffers: true,
                seed,
                ..Default::default()
            },
        );
        assert!(
            verify_execution(&cap.trace).is_coherent(),
            "false positive on a fault-free TSO run (seed {seed})"
        );
    }
}

/// Runs a shared-counter (all-RMW) workload with one fault plan; RMW
/// chains pin orderings tightly, so protocol faults that merely leave
/// stale data become observable violations.
fn detected_counter(kind: FaultKind, seed: u64) -> bool {
    let program = vermem_sim::shared_counter(3, 8);
    let cap = Machine::run(
        &program,
        MachineConfig {
            seed,
            faults: vec![FaultPlan { kind, at_step: 6 }],
            ..Default::default()
        },
    );
    !verify_execution(&cap.trace).is_coherent()
}

/// Runs the workload with one fault plan; returns whether the verifier
/// flagged the execution.
fn detected(kind: FaultKind, seed: u64) -> bool {
    let cap = Machine::run(
        &workload(seed),
        MachineConfig {
            seed,
            faults: vec![FaultPlan { kind, at_step: 10 }],
            ..Default::default()
        },
    );
    !verify_execution(&cap.trace).is_coherent()
}

#[test]
fn corrupt_fill_is_detected() {
    let mut hits = 0;
    for seed in 0..25 {
        if detected(
            FaultKind::CorruptFill {
                cpu: 1,
                xor: 0xDEAD_0000,
            },
            seed,
        ) {
            hits += 1;
        }
    }
    // A corrupted fill yields a never-written value: detected whenever the
    // fault actually fires and the value is consumed.
    assert!(hits >= 10, "corrupt-fill detection too low: {hits}/25");
}

#[test]
fn drop_invalidation_is_detected_sometimes() {
    let mut hits = 0;
    for seed in 0..40 {
        if detected_counter(FaultKind::DropInvalidation { victim_cpu: 2 }, seed) {
            hits += 1;
        }
    }
    // Stale lines only matter if subsequently read while observably stale.
    assert!(hits > 0, "dropped invalidations never detected");
}

#[test]
fn lost_write_is_detected_sometimes() {
    let mut hits = 0;
    for seed in 0..40 {
        if detected(FaultKind::LostWrite { cpu: 0 }, seed) {
            hits += 1;
        }
    }
    assert!(hits > 0, "lost writes never detected");
}

#[test]
fn stale_fill_is_detected_sometimes() {
    let mut hits = 0;
    for seed in 0..40 {
        if detected_counter(FaultKind::StaleFill { cpu: 1 }, seed) {
            hits += 1;
        }
    }
    assert!(hits > 0, "stale fills never detected");
}

#[test]
fn write_order_capture_verifies_healthy_runs_in_polynomial_time() {
    // §5.2: with the machine's committed write order, verification is the
    // O(n²) insertion algorithm rather than exponential search.
    for seed in 0..20 {
        let cap = Machine::run(
            &workload(2000 + seed),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        for (addr, order) in &cap.write_order {
            let verdict = solve_with_write_order(&cap.trace, *addr, order);
            assert!(
                matches!(verdict, Verdict::Coherent(_)),
                "write-order fast path must accept healthy runs (seed {seed}, {addr:?})"
            );
        }
    }
}

#[test]
fn write_order_capture_flags_faulty_runs() {
    let mut hits = 0;
    for seed in 0..25 {
        let cap = Machine::run(
            &workload(3000 + seed),
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::CorruptFill { cpu: 0, xor: 0xBAD },
                    at_step: 5,
                }],
                ..Default::default()
            },
        );
        let flagged =
            cap.write_order.iter().any(|(addr, order)| {
                !solve_with_write_order(&cap.trace, *addr, order).is_coherent()
            }) || !verify_execution(&cap.trace).is_coherent();
        if flagged {
            hits += 1;
        }
    }
    assert!(hits >= 15, "write-order path detection too low: {hits}/25");
}

#[test]
fn detection_agrees_between_exact_and_write_order_paths_on_healthy_runs() {
    for seed in 0..15 {
        let cap = Machine::run(
            &workload(4000 + seed),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        let exact = verify_execution(&cap.trace).is_coherent();
        let fast = cap
            .write_order
            .iter()
            .all(|(addr, order)| solve_with_write_order(&cap.trace, *addr, order).is_coherent());
        // The write-order path is *stricter* (it checks the specific
        // hardware order); on healthy runs both must accept.
        assert!(exact && fast, "seed {seed}");
    }
}
