//! Differential suite for the streaming engine (`coherence::stream`): the
//! sharded bounded-memory verifier must produce **bit-identical** results
//! to the batch `verify_execution_par` — same verdict, same first
//! violation, same aggregated `SearchStats`, same `TierStats` — on every
//! input family (litmus, generated, healthy MESI captures, fault-injected
//! captures), at jobs ∈ {1, 2, 8} and window ∈ {16, 256, unbounded}.
//!
//! Batch traces are streamed through their v2 (proc-major) encoding;
//! simulator captures are additionally streamed through the v3 temporal
//! event log (`vermem_sim::event_stream_bytes`) — the feed a real memory
//! system would emit — which must agree with the batch verdict too.

use vermem_coherence::{
    verify_execution_par, ExecutionReport, RecorderConfig, StreamConfig, VmcVerifier,
};
use vermem_sim::{
    event_stream_bytes, random_program, FaultKind, FaultPlan, Machine, MachineConfig,
    WorkloadConfig,
};
use vermem_trace::binary::encode_trace;
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::Trace;

const JOBS: [usize; 3] = [1, 2, 8];
const WINDOWS: [Option<usize>; 3] = [Some(16), Some(256), None];

fn stream_config(window: Option<usize>, jobs: usize, temporal: bool) -> StreamConfig {
    StreamConfig {
        window,
        jobs,
        temporal,
        verifier: VmcVerifier::new(),
        recorder: None,
        hot_path: Default::default(),
    }
}

/// Stream `bytes` at every (jobs, window) combination and require
/// bit-identical agreement with the batch report on `trace`.
fn assert_stream_parity(trace: &Trace, bytes: &[u8], temporal: bool, ctx: &str) -> ExecutionReport {
    let batch = verify_execution_par(trace, &VmcVerifier::new(), 1);
    for jobs in JOBS {
        for window in WINDOWS {
            let report =
                vermem_coherence::verify_stream_bytes(bytes, stream_config(window, jobs, temporal))
                    .unwrap_or_else(|e| panic!("{ctx}: stream decode failed: {e}"));
            assert!(
                report.verdict.matches_batch(&batch.verdict),
                "{ctx}: verdict drift at jobs={jobs} window={window:?}: \
                 stream {:?} vs batch {:?}",
                report.verdict,
                batch.verdict
            );
            assert_eq!(
                report.stats, batch.stats,
                "{ctx}: stats drift at jobs={jobs} window={window:?}"
            );
            assert_eq!(
                report.tiers, batch.tiers,
                "{ctx}: tier accounting drift at jobs={jobs} window={window:?}"
            );
            assert_eq!(
                report.addresses, batch.addresses,
                "{ctx}: address count drift at jobs={jobs} window={window:?}"
            );
        }
    }
    batch
}

#[test]
fn litmus_traces_stream_bit_identically() {
    for test in vermem_consistency::litmus::all_litmus_tests() {
        let bytes = encode_trace(&test.trace);
        assert_stream_parity(&test.trace, &bytes, false, &format!("litmus {}", test.name));
    }
}

#[test]
fn generated_traces_stream_bit_identically() {
    for seed in 0..4u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 120,
            addrs: 5,
            value_reuse: 0.5,
            seed,
            ..Default::default()
        });
        let bytes = encode_trace(&t);
        let batch = assert_stream_parity(&t, &bytes, false, &format!("gen seed {seed}"));
        assert!(batch.is_coherent(), "SC-generated traces are coherent");
    }
}

#[test]
fn healthy_sim_captures_stream_bit_identically() {
    for seed in 0..4u64 {
        let cap = Machine::run(
            &random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 30,
                addrs: 4,
                write_fraction: 0.45,
                rmw_fraction: 0.1,
                seed,
            }),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        // v2 proc-major file encoding…
        let v2 = encode_trace(&cap.trace);
        let batch = assert_stream_parity(&cap.trace, &v2, false, &format!("healthy v2 {seed}"));
        assert!(batch.is_coherent(), "fault-free runs verify (seed {seed})");
        // …and the v3 temporal event log the machine actually emitted.
        let v3 = event_stream_bytes(&cap).expect("SC capture streams");
        assert_stream_parity(&cap.trace, &v3, true, &format!("healthy v3 {seed}"));
    }
}

#[test]
fn fault_injected_captures_stream_bit_identically() {
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xDEAD_0000,
        },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
        FaultKind::DropInvalidation { victim_cpu: 2 },
    ];
    let mut incoherent_runs = 0;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..5u64 {
            let cap = Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu: 25,
                    addrs: 4,
                    write_fraction: 0.5,
                    rmw_fraction: 0.0,
                    seed: 700 + seed,
                }),
                MachineConfig {
                    seed,
                    faults: vec![FaultPlan { kind, at_step: 8 }],
                    ..Default::default()
                },
            );
            let v2 = encode_trace(&cap.trace);
            let batch = assert_stream_parity(&cap.trace, &v2, false, &format!("fault {k}/{seed}"));
            let v3 = event_stream_bytes(&cap).expect("SC capture streams");
            assert_stream_parity(&cap.trace, &v3, true, &format!("fault {k}/{seed} v3"));
            if !batch.is_coherent() {
                incoherent_runs += 1;
            }
        }
    }
    assert!(
        incoherent_runs >= 4,
        "too few incoherent executions to exercise the violation path: {incoherent_runs}/20"
    );
}

#[test]
fn flight_recorder_never_perturbs_stream_results() {
    // The forensic flight recorder is a write-only side channel: with the
    // per-shard ring and certificate capture enabled, verdict, stats, tier
    // accounting and address counts stay bit-identical to the batch report
    // (and hence to the recorder-off stream) at every thread count —
    // exercised on both healthy and fault-injected temporal streams.
    for seed in 0..3u64 {
        for faulty in [false, true] {
            let faults = if faulty {
                vec![FaultPlan {
                    kind: FaultKind::CorruptFill {
                        cpu: 1,
                        xor: 0xDEAD_0000,
                    },
                    at_step: 6,
                }]
            } else {
                Vec::new()
            };
            let cap = Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu: 25,
                    addrs: 3,
                    write_fraction: 0.5,
                    rmw_fraction: 0.0,
                    seed: 500 + seed,
                }),
                MachineConfig {
                    seed,
                    faults,
                    ..Default::default()
                },
            );
            let v3 = event_stream_bytes(&cap).expect("SC capture streams");
            let batch = verify_execution_par(&cap.trace, &VmcVerifier::new(), 1);
            for jobs in JOBS {
                let cfg = StreamConfig {
                    recorder: Some(RecorderConfig::default()),
                    ..stream_config(Some(64), jobs, true)
                };
                let report = vermem_coherence::verify_stream_bytes(&v3, cfg).expect("decode");
                let ctx = format!("recorder seed {seed} faulty {faulty} jobs {jobs}");
                assert!(
                    report.verdict.matches_batch(&batch.verdict),
                    "{ctx}: verdict drift: stream {:?} vs batch {:?}",
                    report.verdict,
                    batch.verdict
                );
                assert_eq!(report.stats, batch.stats, "{ctx}: stats drift");
                assert_eq!(report.tiers, batch.tiers, "{ctx}: tier drift");
                assert_eq!(report.addresses, batch.addresses, "{ctx}: address drift");
                if faulty && !report.detections.is_empty() {
                    assert!(
                        !report.forensics.is_empty(),
                        "{ctx}: detections without forensic bundles"
                    );
                }
            }
        }
    }
}

#[test]
fn temporal_streams_of_faulty_runs_surface_detections() {
    // At least one fault-injected temporal stream must produce a detection
    // event with a measurable issue→detect latency — the p99 receipt's
    // data source.
    let mut detections = 0usize;
    let mut latencies = 0usize;
    for seed in 0..6u64 {
        let cap = Machine::run(
            &random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 25,
                addrs: 3,
                write_fraction: 0.5,
                rmw_fraction: 0.0,
                seed: 900 + seed,
            }),
            MachineConfig {
                seed,
                faults: vec![FaultPlan {
                    kind: FaultKind::CorruptFill {
                        cpu: 1,
                        xor: 0xBEEF_0000,
                    },
                    at_step: 6,
                }],
                ..Default::default()
            },
        );
        let v3 = event_stream_bytes(&cap).expect("SC capture streams");
        let report = vermem_coherence::verify_stream_bytes(&v3, stream_config(Some(64), 1, true))
            .expect("decode");
        detections += report.detections.len();
        latencies += report.detect_latencies_us.len();
        if !report.detections.is_empty() {
            assert!(report.p99_detect_latency_us().is_some());
        }
    }
    assert!(detections > 0, "no fault surfaced a streaming detection");
    assert!(latencies >= detections, "every detection carries a latency");
}
