//! Property tests for the simulators: for *arbitrary* programs, the
//! snooping machine without store buffers is sequentially consistent, the
//! TSO machine satisfies TSO, the directory machine is SC, and both
//! capture write orders that re-verify through the §5.2 fast path.

use vermem_sim::{
    DirectoryConfig, DirectoryMachine, Instr, Machine, MachineConfig, Program, RmwKind,
};
use vermem_trace::{Addr, Value};
use vermem_util::prop::PropConfig;
use vermem_util::rng::StdRng;
use vermem_util::{prop_assert, prop_check};

fn arb_instr(rng: &mut StdRng, addrs: u32, next_val: &mut u64) -> Instr {
    let addr = Addr(rng.gen_range(0..addrs));
    match rng.gen_range(0..10u8) {
        0..=3 => Instr::Read(addr),
        4..=6 => {
            let v = *next_val;
            *next_val += 1;
            Instr::Write(addr, Value(v))
        }
        7 => Instr::Rmw(addr, RmwKind::Increment),
        8 => Instr::Rmw(addr, RmwKind::Swap(Value(1_000_000 + u64::from(addr.0)))),
        _ => Instr::Fence,
    }
}

/// 1–3 CPUs, each with up to `size` (≤ 12) instructions; distinct write
/// values so read provenance is unambiguous.
fn arb_program(rng: &mut StdRng, size: usize) -> Program {
    let mut next_val = 1u64;
    let cpus = rng.gen_range(1..4usize);
    let streams: Vec<Vec<Instr>> = (0..cpus)
        .map(|_| {
            let len = rng.gen_range(0..=size.min(12));
            (0..len).map(|_| arb_instr(rng, 3, &mut next_val)).collect()
        })
        .collect();
    Program::from_streams(streams)
}

fn arb_case(rng: &mut StdRng, size: usize, max_seed: u64) -> (Program, u64) {
    let program = arb_program(rng, size);
    (program, rng.gen_range(0..max_seed))
}

#[test]
fn snooping_sc_machine_is_sequentially_consistent() {
    prop_check!(
        PropConfig::with_cases(64),
        |rng, size| arb_case(rng, size, 1000),
        |(program, seed): &(Program, u64)| {
            let cap = Machine::run(
                program,
                MachineConfig {
                    seed: *seed,
                    ..Default::default()
                },
            );
            let v = vermem_consistency::solve_sc_backtracking(
                &cap.trace,
                &vermem_consistency::KernelConfig::default(),
            );
            prop_assert!(v.is_consistent(), "trace: {:?}", cap.trace);
            Ok(())
        }
    );
}

#[test]
fn tso_machine_satisfies_tso() {
    prop_check!(
        PropConfig::with_cases(64),
        |rng, size| arb_case(rng, size, 1000),
        |(program, seed): &(Program, u64)| {
            let cap = Machine::run(
                program,
                MachineConfig {
                    store_buffers: true,
                    seed: *seed,
                    ..Default::default()
                },
            );
            let v = vermem_consistency::solve_model_sat(
                &cap.trace,
                vermem_consistency::MemoryModel::Tso,
            );
            prop_assert!(v.is_consistent(), "trace: {:?}", cap.trace);
            Ok(())
        }
    );
}

#[test]
fn directory_machine_is_sequentially_consistent() {
    prop_check!(
        PropConfig::with_cases(64),
        |rng, size| arb_case(rng, size, 1000),
        |(program, seed): &(Program, u64)| {
            let cap = DirectoryMachine::run(
                program,
                DirectoryConfig {
                    seed: *seed,
                    ..Default::default()
                },
            );
            let v = vermem_consistency::solve_sc_backtracking(
                &cap.trace,
                &vermem_consistency::KernelConfig::default(),
            );
            prop_assert!(v.is_consistent(), "trace: {:?}", cap.trace);
            Ok(())
        }
    );
}

#[test]
fn write_orders_reverify_on_both_machines() {
    prop_check!(
        PropConfig::with_cases(64),
        |rng, size| arb_case(rng, size, 500),
        |(program, seed): &(Program, u64)| {
            let snoop = Machine::run(
                program,
                MachineConfig {
                    seed: *seed,
                    ..Default::default()
                },
            );
            for (addr, order) in &snoop.write_order {
                prop_assert!(
                    vermem_coherence::solve_with_write_order(&snoop.trace, *addr, order)
                        .is_coherent()
                );
            }
            let dir = DirectoryMachine::run(
                program,
                DirectoryConfig {
                    seed: *seed,
                    ..Default::default()
                },
            );
            for (addr, order) in &dir.write_order {
                prop_assert!(
                    vermem_coherence::solve_with_write_order(&dir.trace, *addr, order)
                        .is_coherent()
                );
            }
            Ok(())
        }
    );
}

#[test]
fn tiny_caches_stay_coherent() {
    prop_check!(
        PropConfig::with_cases(64),
        |rng, size| arb_case(rng, size, 200),
        |(program, seed): &(Program, u64)| {
            // A single-line cache maximizes evictions and writebacks.
            let cap = Machine::run(
                program,
                MachineConfig {
                    cache_lines: 1,
                    seed: *seed,
                    ..Default::default()
                },
            );
            prop_assert!(vermem_coherence::verify_execution(&cap.trace).is_coherent());
            Ok(())
        }
    );
}
