//! Property tests for the simulators: for *arbitrary* programs, the
//! snooping machine without store buffers is sequentially consistent, the
//! TSO machine satisfies TSO, the directory machine is SC, and both
//! capture write orders that re-verify through the §5.2 fast path.

use proptest::prelude::*;
use vermem_sim::{
    DirectoryConfig, DirectoryMachine, Instr, Machine, MachineConfig, Program, RmwKind,
};
use vermem_trace::{Addr, Value};

fn arb_instr(addrs: u32, next_val: std::rc::Rc<std::cell::Cell<u64>>) -> impl Strategy<Value = Instr> {
    (0u8..10, 0..addrs).prop_map(move |(kind, a)| {
        let addr = Addr(a);
        match kind {
            0..=3 => Instr::Read(addr),
            4..=6 => {
                let v = next_val.get();
                next_val.set(v + 1);
                Instr::Write(addr, Value(v))
            }
            7 => Instr::Rmw(addr, RmwKind::Increment),
            8 => Instr::Rmw(addr, RmwKind::Swap(Value(1_000_000 + u64::from(a)))),
            _ => Instr::Fence,
        }
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    let next_val = std::rc::Rc::new(std::cell::Cell::new(1u64));
    prop::collection::vec(
        prop::collection::vec(arb_instr(3, next_val.clone()), 0..12),
        1..4,
    )
    .prop_map(Program::from_streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snooping_sc_machine_is_sequentially_consistent(
        program in arb_program(),
        seed in 0u64..1000,
    ) {
        let cap = Machine::run(&program, MachineConfig { seed, ..Default::default() });
        let v = vermem_consistency::solve_sc_backtracking(
            &cap.trace,
            &vermem_consistency::VscConfig::default(),
        );
        prop_assert!(v.is_consistent(), "trace: {:?}", cap.trace);
    }

    #[test]
    fn tso_machine_satisfies_tso(program in arb_program(), seed in 0u64..1000) {
        let cap = Machine::run(
            &program,
            MachineConfig { store_buffers: true, seed, ..Default::default() },
        );
        let v = vermem_consistency::solve_model_sat(
            &cap.trace,
            vermem_consistency::MemoryModel::Tso,
        );
        prop_assert!(v.is_consistent(), "trace: {:?}", cap.trace);
    }

    #[test]
    fn directory_machine_is_sequentially_consistent(
        program in arb_program(),
        seed in 0u64..1000,
    ) {
        let cap = DirectoryMachine::run(&program, DirectoryConfig { seed, ..Default::default() });
        let v = vermem_consistency::solve_sc_backtracking(
            &cap.trace,
            &vermem_consistency::VscConfig::default(),
        );
        prop_assert!(v.is_consistent(), "trace: {:?}", cap.trace);
    }

    #[test]
    fn write_orders_reverify_on_both_machines(program in arb_program(), seed in 0u64..500) {
        let snoop = Machine::run(&program, MachineConfig { seed, ..Default::default() });
        for (addr, order) in &snoop.write_order {
            prop_assert!(
                vermem_coherence::solve_with_write_order(&snoop.trace, *addr, order)
                    .is_coherent()
            );
        }
        let dir = DirectoryMachine::run(&program, DirectoryConfig { seed, ..Default::default() });
        for (addr, order) in &dir.write_order {
            prop_assert!(
                vermem_coherence::solve_with_write_order(&dir.trace, *addr, order)
                    .is_coherent()
            );
        }
    }

    #[test]
    fn tiny_caches_stay_coherent(program in arb_program(), seed in 0u64..200) {
        // A single-line cache maximizes evictions and writebacks.
        let cap = Machine::run(
            &program,
            MachineConfig { cache_lines: 1, seed, ..Default::default() },
        );
        prop_assert!(vermem_coherence::verify_execution(&cap.trace).is_coherent());
    }
}
