//! Differential suite for the tiered verifier (PR 6): the default
//! `closure,exact` pipeline must produce **bit-identical** results to the
//! `exact`-only ablation — same verdict, same witnesses, same first
//! violation, same aggregated `SearchStats` — on every input family
//! (litmus, generated, healthy MESI captures, fault-injected captures) and
//! at every thread count in {1, 2, 8}. The only permitted difference is
//! the per-tier accounting itself: the frontline may decide strictly more
//! addresses than the ablation, never fewer.

use vermem_coherence::{
    verify_execution_par, verify_execution_with, ExecutionReport, PruneConfig, SearchConfig,
    TierConfig, VmcVerifier,
};
use vermem_sim::{random_program, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig};
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::Trace;

const JOBS: [usize; 3] = [1, 2, 8];

fn tiered() -> VmcVerifier {
    VmcVerifier {
        tier: TierConfig::tiered(),
        ..VmcVerifier::new()
    }
}

fn exact_only() -> VmcVerifier {
    VmcVerifier {
        tier: TierConfig::exact_only(),
        ..VmcVerifier::new()
    }
}

/// Assert the full tier-parity contract on one trace; returns the tiered
/// jobs=1 report for family-level accounting.
fn assert_tier_parity(trace: &Trace, ctx: &str) -> ExecutionReport {
    // Sequential engines agree bit-for-bit, witnesses included: the
    // frontline computes exactly what the exact search's own pre-passes
    // would have computed.
    let seq_tiered = verify_execution_with(trace, &tiered());
    let seq_exact = verify_execution_with(trace, &exact_only());
    assert_eq!(seq_tiered, seq_exact, "{ctx}: sequential verdict drift");

    let base_tiered = verify_execution_par(trace, &tiered(), 1);
    let base_exact = verify_execution_par(trace, &exact_only(), 1);
    assert_eq!(base_tiered.verdict, seq_tiered, "{ctx}: par jobs=1 drift");
    assert_eq!(
        base_tiered.stats, base_exact.stats,
        "{ctx}: tiered stats diverged from exact-only"
    );
    assert_eq!(base_tiered.verdict, base_exact.verdict, "{ctx}");
    // Accounting sanity: both pipelines account every address they
    // processed, and the frontline never decides fewer than the ablation.
    assert_eq!(base_tiered.tiers.total(), base_exact.tiers.total(), "{ctx}");
    assert!(
        base_tiered.tiers.frontline_decided >= base_exact.tiers.frontline_decided,
        "{ctx}: frontline decided fewer addresses than the exact ablation"
    );

    for jobs in JOBS {
        for (label, verifier, base) in [
            ("closure,exact", tiered(), &base_tiered),
            ("exact", exact_only(), &base_exact),
        ] {
            let par = verify_execution_par(trace, &verifier, jobs);
            assert_eq!(
                par.verdict, base.verdict,
                "{ctx}: verdict drift at jobs={jobs} under tier={label}"
            );
            assert_eq!(
                par.stats, base.stats,
                "{ctx}: stats drift at jobs={jobs} under tier={label}"
            );
            assert_eq!(
                par.tiers, base.tiers,
                "{ctx}: tier accounting drift at jobs={jobs} under tier={label}"
            );
        }
    }
    base_tiered
}

#[test]
fn litmus_traces_keep_tier_parity_at_every_thread_count() {
    for test in vermem_consistency::litmus::all_litmus_tests() {
        let report = assert_tier_parity(&test.trace, &format!("litmus {}", test.name));
        // Litmus traces are tiny and single-writer-heavy: the frontline
        // must decide all of them without touching the exact tier.
        assert_eq!(
            report.tiers.escalated, 0,
            "litmus {} escalated unexpectedly",
            test.name
        );
    }
}

#[test]
fn generated_traces_keep_tier_parity_at_every_thread_count() {
    for seed in 0..4u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 120,
            addrs: 5,
            value_reuse: 0.5,
            seed,
            ..Default::default()
        });
        let report = assert_tier_parity(&t, &format!("gen seed {seed}"));
        assert!(
            report.is_coherent(),
            "SC-generated traces are coherent by construction"
        );
    }
}

#[test]
fn healthy_sim_captures_keep_tier_parity_at_every_thread_count() {
    let mut frontline = 0u64;
    let mut total = 0u64;
    for seed in 0..4u64 {
        let cap = Machine::run(
            &random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 30,
                addrs: 4,
                write_fraction: 0.45,
                rmw_fraction: 0.1,
                seed,
            }),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        let report = assert_tier_parity(&cap.trace, &format!("healthy sim seed {seed}"));
        assert!(
            report.is_coherent(),
            "fault-free runs must verify (seed {seed})"
        );
        frontline += report.tiers.frontline_decided;
        total += report.tiers.total();
    }
    // The headline claim of the tier split (also gated on the committed
    // bench receipt by scripts/verify.sh): healthy captures are decided
    // overwhelmingly in polynomial time.
    assert!(
        frontline * 10 >= total * 9,
        "frontline decided only {frontline}/{total} healthy-sim addresses (< 90%)"
    );
}

#[test]
fn fault_injected_captures_keep_tier_parity_at_every_thread_count() {
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xDEAD_0000,
        },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
        FaultKind::DropInvalidation { victim_cpu: 2 },
    ];
    let mut incoherent_runs = 0;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..5u64 {
            let cap = Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu: 25,
                    addrs: 4,
                    write_fraction: 0.5,
                    rmw_fraction: 0.0,
                    seed: 700 + seed,
                }),
                MachineConfig {
                    seed,
                    faults: vec![FaultPlan { kind, at_step: 8 }],
                    ..Default::default()
                },
            );
            let report = assert_tier_parity(&cap.trace, &format!("fault {k} seed {seed}"));
            if !report.is_coherent() {
                incoherent_runs += 1;
            }
        }
    }
    assert!(
        incoherent_runs >= 4,
        "too few incoherent executions to exercise the violation path: {incoherent_runs}/20"
    );
}

#[test]
fn tier_parity_holds_with_window_pruning_disabled() {
    // `--prune=none` turns the window inference off globally; the
    // frontline honours the knob (it *is* the window pass), so both tier
    // pipelines collapse to the identical unpruned search.
    let with_prune_none = |tier: TierConfig| VmcVerifier {
        search: SearchConfig {
            prune: PruneConfig::none(),
            ..Default::default()
        },
        tier,
        ..VmcVerifier::new()
    };
    for seed in 0..3u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 3,
            total_ops: 80,
            addrs: 4,
            value_reuse: 0.6,
            seed: 40 + seed,
            ..Default::default()
        });
        let a = verify_execution_par(&t, &with_prune_none(TierConfig::tiered()), 2);
        let b = verify_execution_par(&t, &with_prune_none(TierConfig::exact_only()), 2);
        assert_eq!(a.verdict, b.verdict, "seed {seed}");
        assert_eq!(a.stats, b.stats, "seed {seed}");
        assert_eq!(
            a.tiers, b.tiers,
            "seed {seed}: with windows off no closure runs"
        );
    }
}
