//! Differential suite for the PR-4 inference layer under the parallel
//! per-address engine: for every `PruneConfig` combination and every
//! thread count in {1, 2, 8}, the execution verdict (and the first
//! violation when incoherent) must match the unpruned sequential baseline
//! — on generated traces, healthy MESI simulator captures, and
//! fault-injected incoherent captures.

use vermem_coherence::{
    verify_execution_par, verify_execution_with, ExecutionVerdict, PruneConfig, SearchConfig,
    VmcVerifier,
};
use vermem_sim::{random_program, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig};
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::Trace;

const JOBS: [usize; 3] = [1, 2, 8];

fn all_combos() -> [PruneConfig; 8] {
    std::array::from_fn(|bits| PruneConfig {
        windows: bits & 1 != 0,
        symmetry: bits & 2 != 0,
        nogoods: bits & 4 != 0,
    })
}

fn verifier_with(prune: PruneConfig) -> VmcVerifier {
    VmcVerifier {
        search: SearchConfig {
            prune,
            ..Default::default()
        },
        ..VmcVerifier::new()
    }
}

/// Assert the full prune-parity contract on one trace; returns whether it
/// is coherent (per the unpruned baseline).
fn assert_prune_parity(trace: &Trace, ctx: &str) -> bool {
    let baseline = verify_execution_with(trace, &verifier_with(PruneConfig::none()));
    for combo in all_combos() {
        let verifier = verifier_with(combo);
        let seq = verify_execution_with(trace, &verifier);
        match (&baseline, &seq) {
            (ExecutionVerdict::Coherent(_), ExecutionVerdict::Coherent(_)) => {}
            (ExecutionVerdict::Incoherent(a), ExecutionVerdict::Incoherent(b)) => {
                assert_eq!(a, b, "{ctx}: first-violation drift under {combo:?}");
            }
            (a, b) => panic!("{ctx}: verdict class drift under {combo:?}: {a:?} vs {b:?}"),
        }
        // The parallel engine must agree with its own sequential run at
        // every thread count, stats included (thread-count invariance).
        let par1 = verify_execution_par(trace, &verifier, 1);
        assert_eq!(par1.verdict, seq, "{ctx}: jobs=1 drift under {combo:?}");
        for jobs in JOBS {
            let par = verify_execution_par(trace, &verifier, jobs);
            assert_eq!(
                par.verdict, seq,
                "{ctx}: verdict drift at jobs={jobs} under {combo:?}"
            );
            assert_eq!(
                par.stats, par1.stats,
                "{ctx}: stats drift at jobs={jobs} under {combo:?}"
            );
        }
    }
    baseline.is_coherent()
}

#[test]
fn generated_traces_keep_prune_parity_at_every_thread_count() {
    for seed in 0..4u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 120,
            addrs: 5,
            value_reuse: 0.5,
            seed,
            ..Default::default()
        });
        let coherent = assert_prune_parity(&t, &format!("gen seed {seed}"));
        assert!(coherent, "SC-generated traces are coherent by construction");
    }
}

#[test]
fn healthy_sim_captures_keep_prune_parity_at_every_thread_count() {
    for seed in 0..4u64 {
        let cap = Machine::run(
            &random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 30,
                addrs: 4,
                write_fraction: 0.45,
                rmw_fraction: 0.1,
                seed,
            }),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        let coherent = assert_prune_parity(&cap.trace, &format!("healthy sim seed {seed}"));
        assert!(coherent, "fault-free runs must verify (seed {seed})");
    }
}

#[test]
fn fault_injected_captures_keep_prune_parity_at_every_thread_count() {
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xDEAD_0000,
        },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
        FaultKind::DropInvalidation { victim_cpu: 2 },
    ];
    let mut incoherent_runs = 0;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..5u64 {
            let cap = Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu: 25,
                    addrs: 4,
                    write_fraction: 0.5,
                    rmw_fraction: 0.0,
                    seed: 700 + seed,
                }),
                MachineConfig {
                    seed,
                    faults: vec![FaultPlan { kind, at_step: 8 }],
                    ..Default::default()
                },
            );
            if !assert_prune_parity(&cap.trace, &format!("fault {k} seed {seed}")) {
                incoherent_runs += 1;
            }
        }
    }
    assert!(
        incoherent_runs >= 4,
        "too few incoherent executions to exercise the violation path: {incoherent_runs}/20"
    );
}
