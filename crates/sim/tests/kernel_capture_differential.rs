//! Kernel parity on *captured* executions: traces recorded from the MESI
//! simulator (healthy and fault-injected) must get the same verdict from
//! each kernel-backed operational engine (SC, TSO, PSO) as from the
//! axiomatic SAT oracle — under both memo-key representations and with
//! feasibility pruning on or off.

use vermem_consistency::{
    solve_model_sat, verify_model_operational, ConsistencyVerdict, KernelConfig, MemoryModel,
};
use vermem_sim::{random_program, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig};
use vermem_trace::Trace;

const OPERATIONAL: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

fn knob_grid() -> [KernelConfig; 4] {
    std::array::from_fn(|bits| KernelConfig {
        feasibility: bits & 1 == 0,
        legacy_keys: bits & 2 != 0,
        ..Default::default()
    })
}

/// Assert operational/axiomatic parity on one capture; returns whether it
/// is sequentially consistent.
fn assert_capture_parity(trace: &Trace, ctx: &str) -> bool {
    let mut sc = false;
    for model in OPERATIONAL {
        let oracle = solve_model_sat(trace, model).is_consistent();
        if model == MemoryModel::Sc {
            sc = oracle;
        }
        for cfg in knob_grid() {
            let (verdict, _stats) = verify_model_operational(trace, model, &cfg);
            assert!(
                !matches!(verdict, ConsistencyVerdict::Unknown { .. }),
                "{ctx}: {model} unbudgeted capture run returned Unknown"
            );
            assert_eq!(
                verdict.is_consistent(),
                oracle,
                "{ctx}: {model} drift on capture under {cfg:?}"
            );
        }
    }
    sc
}

fn capture(seed: u64, faults: Vec<FaultPlan>) -> Trace {
    Machine::run(
        &random_program(&WorkloadConfig {
            cpus: 3,
            instrs_per_cpu: 9,
            addrs: 3,
            write_fraction: 0.45,
            rmw_fraction: 0.1,
            seed,
        }),
        MachineConfig {
            seed,
            faults,
            ..Default::default()
        },
    )
    .trace
}

#[test]
fn healthy_captures_keep_kernel_parity() {
    for seed in 0..5u64 {
        let t = capture(1_000 + seed, vec![]);
        let sc = assert_capture_parity(&t, &format!("healthy seed {seed}"));
        assert!(
            sc,
            "fault-free MESI runs are sequentially consistent (seed {seed})"
        );
    }
}

#[test]
fn fault_injected_captures_keep_kernel_parity() {
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xBAD_0000,
        },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
        FaultKind::DropInvalidation { victim_cpu: 2 },
    ];
    let mut violating = 0u32;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..4u64 {
            let t = capture(2_000 + seed, vec![FaultPlan { kind, at_step: 6 }]);
            if !assert_capture_parity(&t, &format!("fault {k} seed {seed}")) {
                violating += 1;
            }
        }
    }
    assert!(
        violating >= 3,
        "too few SC-violating captures to exercise the refutation path: {violating}/16"
    );
}
