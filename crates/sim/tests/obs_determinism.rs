//! Differential determinism for the observability layer: turning metrics
//! and trace recording **on must not change anything the verifier or the
//! simulator computes** — verdicts, aggregated [`SearchStats`] (including
//! the always-on memo hit/miss counts), captured traces, event logs, or
//! the frozen PRNG streams behind them. Obs is a write-only side channel.
//!
//! The obs toggle is process-global, so this whole suite lives in one
//! `#[test]` (integration tests in a file share a process and would race
//! on the toggle otherwise). The CLI and unit suites run in their own
//! processes and are unaffected.

use vermem_coherence::{
    verify_execution_par, verify_execution_with, RecorderConfig, StreamConfig, VmcVerifier,
};
use vermem_sim::{
    event_stream_bytes, random_program, FaultKind, FaultPlan, Machine, MachineConfig,
    WorkloadConfig,
};
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::Trace;
use vermem_util::obs;

const JOBS: [usize; 3] = [1, 2, 8];

/// Run `f` with obs disabled, then again with obs enabled (discarding what
/// it records), and return both results for comparison.
fn differential<T>(mut f: impl FnMut() -> T) -> (T, T) {
    obs::set_enabled(false);
    let off = f();
    obs::set_enabled(true);
    let on = f();
    obs::set_enabled(false);
    obs::reset();
    (off, on)
}

fn check_trace(trace: &Trace, verifier: &VmcVerifier, ctx: &str) {
    let seq = verify_execution_with(trace, verifier);
    for jobs in JOBS {
        let (off, on) = differential(|| verify_execution_par(trace, verifier, jobs));
        assert_eq!(
            off.verdict, seq,
            "{ctx}: obs-off verdict drift, jobs={jobs}"
        );
        assert_eq!(on.verdict, seq, "{ctx}: obs-on verdict drift, jobs={jobs}");
        assert_eq!(
            off.stats, on.stats,
            "{ctx}: SearchStats changed with obs on, jobs={jobs}"
        );
        assert_eq!(off.addresses, on.addresses, "{ctx}: jobs={jobs}");
        assert_eq!(off.jobs, on.jobs, "{ctx}: jobs={jobs}");
    }
}

#[test]
fn obs_toggle_changes_no_observable_result() {
    let verifier = VmcVerifier::new();

    // 1. Property-generated coherent traces.
    for seed in 0..6u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 120,
            addrs: 5,
            value_reuse: 0.5,
            seed,
            ..Default::default()
        });
        check_trace(&t, &verifier, &format!("gen seed {seed}"));
    }

    // 2. The MESI simulator's PRNG stream is frozen: the same seed must
    //    capture the identical trace and event log whether obs records the
    //    run or not (obs never consumes simulator randomness).
    let mut incoherent = 0;
    for seed in 0..6u64 {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 40,
            addrs: 4,
            write_fraction: 0.5,
            rmw_fraction: 0.05,
            seed,
        });
        let healthy = MachineConfig {
            seed,
            ..Default::default()
        };
        let (off, on) = differential(|| Machine::run(&program, healthy.clone()));
        assert_eq!(off.trace, on.trace, "sim trace drift, seed {seed}");
        assert_eq!(
            off.event_log, on.event_log,
            "sim event log drift, seed {seed}"
        );
        assert_eq!(off.stats, on.stats, "sim stats drift, seed {seed}");
        check_trace(&off.trace, &verifier, &format!("sim seed {seed}"));

        // 3. Fault-injected (mostly incoherent) captures: the early-cancel
        //    path of the parallel engine must stay deterministic under obs.
        let faulty = MachineConfig {
            seed,
            faults: vec![FaultPlan {
                kind: FaultKind::CorruptFill {
                    cpu: 1,
                    xor: 0xBEEF_0000,
                },
                at_step: 8,
            }],
            ..Default::default()
        };
        let (off, on) = differential(|| Machine::run(&program, faulty.clone()));
        assert_eq!(off.trace, on.trace, "faulty trace drift, seed {seed}");
        if !verify_execution_with(&off.trace, &verifier).is_coherent() {
            incoherent += 1;
        }
        check_trace(&off.trace, &verifier, &format!("faulty sim seed {seed}"));

        // 4. The live-telemetry stack: streaming the same temporal event
        //    log with the global obs toggle on AND the flight recorder
        //    enabled must leave the stream verdict, stats and tier
        //    accounting bit-identical to the plain obs-off run.
        let cap = Machine::run(&program, faulty.clone());
        let v3 = event_stream_bytes(&cap).expect("SC capture streams");
        for jobs in JOBS {
            let plain_cfg = || StreamConfig {
                window: Some(64),
                jobs,
                temporal: true,
                verifier: VmcVerifier::new(),
                recorder: None,
                hot_path: Default::default(),
            };
            let live_cfg = || StreamConfig {
                recorder: Some(RecorderConfig::default()),
                ..plain_cfg()
            };
            let (off, on) = differential(|| {
                (
                    vermem_coherence::verify_stream_bytes(&v3, plain_cfg()).expect("decodes"),
                    vermem_coherence::verify_stream_bytes(&v3, live_cfg()).expect("decodes"),
                )
            });
            for (label, report) in [("plain", &off.1), ("obs-on plain", &on.0), ("live", &on.1)] {
                let ctx = format!("live obs seed {seed} jobs {jobs} ({label})");
                assert_eq!(off.0.verdict, report.verdict, "{ctx}: verdict drift");
                assert_eq!(off.0.stats, report.stats, "{ctx}: stats drift");
                assert_eq!(off.0.tiers, report.tiers, "{ctx}: tier drift");
                assert_eq!(off.0.addresses, report.addresses, "{ctx}: address drift");
            }
        }
    }
    assert!(
        incoherent >= 2,
        "too few incoherent runs to exercise cancellation under obs: {incoherent}/6"
    );
}
