//! Differential determinism suite for the parallel per-address engine:
//! [`vermem_coherence::verify_execution_par`] must return a verdict (and
//! aggregated search stats) *bit-identical* to the sequential engine at
//! every thread count — on healthy property-generated traces, on MESI
//! simulator captures, and on fault-injected incoherent executions where
//! early cancellation actually fires.

use vermem_coherence::{verify_execution_par, verify_execution_with, VmcVerifier};
use vermem_sim::{random_program, FaultKind, FaultPlan, Machine, MachineConfig, WorkloadConfig};
use vermem_trace::gen::{gen_sc_trace, GenConfig};
use vermem_trace::Trace;

const JOBS: [usize; 3] = [1, 2, 8];

/// Assert the full determinism contract on one trace: verdict equals the
/// sequential engine's and the stats are thread-count invariant.
fn assert_deterministic(trace: &Trace, verifier: &VmcVerifier, ctx: &str) -> bool {
    let seq = verify_execution_with(trace, verifier);
    let baseline = verify_execution_par(trace, verifier, 1);
    assert_eq!(
        baseline.verdict, seq,
        "{ctx}: jobs=1 differs from sequential"
    );
    for jobs in JOBS {
        let par = verify_execution_par(trace, verifier, jobs);
        assert_eq!(par.verdict, seq, "{ctx}: verdict drift at jobs={jobs}");
        assert_eq!(
            par.stats, baseline.stats,
            "{ctx}: stats drift at jobs={jobs}"
        );
        assert_eq!(par.addresses, trace.addresses().len(), "{ctx}");
    }
    seq.is_coherent()
}

#[test]
fn generated_sc_traces_are_deterministic_across_thread_counts() {
    let verifier = VmcVerifier::new();
    for seed in 0..12u64 {
        let (t, _) = gen_sc_trace(&GenConfig {
            procs: 4,
            total_ops: 160,
            addrs: 7,
            value_reuse: 0.5,
            seed,
            ..Default::default()
        });
        let coherent = assert_deterministic(&t, &verifier, &format!("gen seed {seed}"));
        assert!(coherent, "SC-generated traces are coherent by construction");
    }
}

#[test]
fn healthy_sim_captures_are_deterministic_across_thread_counts() {
    let verifier = VmcVerifier::new();
    for seed in 0..8u64 {
        let cap = Machine::run(
            &random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 40,
                addrs: 5,
                write_fraction: 0.45,
                rmw_fraction: 0.1,
                seed,
            }),
            MachineConfig {
                seed,
                ..Default::default()
            },
        );
        let coherent =
            assert_deterministic(&cap.trace, &verifier, &format!("healthy sim seed {seed}"));
        assert!(coherent, "fault-free runs must verify (seed {seed})");
    }
}

#[test]
fn fault_injected_incoherent_captures_are_deterministic_across_thread_counts() {
    // Fault-injected runs exercise the cancellation path: the first failing
    // address must be reported identically at every thread count. Sweep
    // fault classes and require that a healthy share of runs actually
    // produce incoherent executions, so the incoherent branch is covered.
    let verifier = VmcVerifier::new();
    let kinds = [
        FaultKind::CorruptFill {
            cpu: 1,
            xor: 0xDEAD_0000,
        },
        FaultKind::LostWrite { cpu: 0 },
        FaultKind::StaleFill { cpu: 1 },
        FaultKind::DropInvalidation { victim_cpu: 2 },
    ];
    let mut incoherent_runs = 0;
    for (k, kind) in kinds.into_iter().enumerate() {
        for seed in 0..10u64 {
            let cap = Machine::run(
                &random_program(&WorkloadConfig {
                    cpus: 4,
                    instrs_per_cpu: 30,
                    addrs: 4,
                    write_fraction: 0.5,
                    rmw_fraction: 0.0,
                    seed: 500 + seed,
                }),
                MachineConfig {
                    seed,
                    faults: vec![FaultPlan { kind, at_step: 8 }],
                    ..Default::default()
                },
            );
            let coherent =
                assert_deterministic(&cap.trace, &verifier, &format!("fault {k} seed {seed}"));
            if !coherent {
                incoherent_runs += 1;
            }
        }
    }
    assert!(
        incoherent_runs >= 5,
        "too few incoherent executions to exercise cancellation: {incoherent_runs}/40"
    );
}

#[test]
fn multi_violation_capture_reports_first_failing_address_at_every_thread_count() {
    // Corrupt fills across many addresses tend to produce violations at
    // several addresses at once; the parallel engine must still report the
    // same (first) one as the sequential engine.
    let verifier = VmcVerifier::new();
    let mut checked = 0;
    for seed in 0..20u64 {
        let cap = Machine::run(
            &random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 50,
                addrs: 8,
                write_fraction: 0.55,
                rmw_fraction: 0.0,
                seed: 900 + seed,
            }),
            MachineConfig {
                seed,
                faults: vec![
                    FaultPlan {
                        kind: FaultKind::CorruptFill {
                            cpu: 0,
                            xor: 0xBAD0_0000,
                        },
                        at_step: 6,
                    },
                    FaultPlan {
                        kind: FaultKind::CorruptFill {
                            cpu: 2,
                            xor: 0x0BAD_0000,
                        },
                        at_step: 14,
                    },
                ],
                ..Default::default()
            },
        );
        let seq = verify_execution_with(&cap.trace, &verifier);
        if seq.is_coherent() {
            continue;
        }
        checked += 1;
        for jobs in JOBS {
            let par = verify_execution_par(&cap.trace, &verifier, jobs);
            assert_eq!(par.verdict, seq, "seed {seed} jobs {jobs}");
        }
    }
    assert!(
        checked >= 3,
        "too few incoherent double-fault runs: {checked}"
    );
}
