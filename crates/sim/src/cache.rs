//! A per-processor cache: direct-mapped, one word per line (word-granular
//! coherence keeps value tracking exact; see the crate docs).

use crate::mesi::MesiState;
use vermem_trace::{Addr, Value};

/// One cache line: the cached address, its word, and its MESI state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Line {
    /// Address cached in this line (meaningful when state is valid).
    pub addr: Addr,
    /// Cached word.
    pub value: Value,
    /// Coherence state.
    pub state: MesiState,
}

impl Line {
    fn empty() -> Line {
        Line {
            addr: Addr(0),
            value: Value(0),
            state: MesiState::Invalid,
        }
    }
}

/// A direct-mapped cache.
#[derive(Clone, Debug)]
pub struct Cache {
    lines: Vec<Line>,
}

impl Cache {
    /// A cache with `num_lines` direct-mapped lines.
    pub fn new(num_lines: usize) -> Self {
        assert!(num_lines > 0, "cache needs at least one line");
        Cache {
            lines: vec![Line::empty(); num_lines],
        }
    }

    fn index(&self, addr: Addr) -> usize {
        addr.0 as usize % self.lines.len()
    }

    /// The line that `addr` maps to.
    pub fn line(&self, addr: Addr) -> &Line {
        &self.lines[self.index(addr)]
    }

    /// Mutable access to the line `addr` maps to.
    pub fn line_mut(&mut self, addr: Addr) -> &mut Line {
        let i = self.index(addr);
        &mut self.lines[i]
    }

    /// The valid line currently holding exactly `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<&Line> {
        let line = self.line(addr);
        (line.state.is_valid() && line.addr == addr).then_some(line)
    }

    /// Mutable variant of [`Cache::lookup`].
    pub fn lookup_mut(&mut self, addr: Addr) -> Option<&mut Line> {
        let i = self.index(addr);
        let line = &mut self.lines[i];
        (line.state.is_valid() && line.addr == addr).then_some(line)
    }

    /// Install `addr` in its line with the given value and state, returning
    /// the victim line if a *different* valid address had to be evicted.
    pub fn fill(&mut self, addr: Addr, value: Value, state: MesiState) -> Option<Line> {
        let i = self.index(addr);
        let victim = self.lines[i];
        let evicted = (victim.state.is_valid() && victim.addr != addr).then_some(victim);
        self.lines[i] = Line { addr, value, state };
        evicted
    }

    /// Iterate over all lines (for diagnostics and fault injection).
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_lookup() {
        let mut c = Cache::new(4);
        assert!(c.lookup(Addr(1)).is_none());
        assert_eq!(c.fill(Addr(1), Value(7), MesiState::Exclusive), None);
        let line = c.lookup(Addr(1)).expect("filled");
        assert_eq!(line.value, Value(7));
        assert_eq!(line.state, MesiState::Exclusive);
    }

    #[test]
    fn conflict_eviction_reports_victim() {
        let mut c = Cache::new(2);
        c.fill(Addr(0), Value(1), MesiState::Modified);
        // Addr(2) maps to the same line in a 2-line cache.
        let victim = c
            .fill(Addr(2), Value(9), MesiState::Exclusive)
            .expect("conflict");
        assert_eq!(victim.addr, Addr(0));
        assert_eq!(victim.value, Value(1));
        assert!(victim.state.is_dirty());
        assert!(c.lookup(Addr(0)).is_none());
    }

    #[test]
    fn refill_same_address_is_not_eviction() {
        let mut c = Cache::new(2);
        c.fill(Addr(0), Value(1), MesiState::Shared);
        assert_eq!(c.fill(Addr(0), Value(2), MesiState::Modified), None);
        assert_eq!(c.lookup(Addr(0)).unwrap().value, Value(2));
    }

    #[test]
    fn invalid_line_never_matches() {
        let mut c = Cache::new(2);
        c.fill(Addr(0), Value(1), MesiState::Shared);
        c.line_mut(Addr(0)).state = MesiState::Invalid;
        assert!(c.lookup(Addr(0)).is_none());
    }
}
