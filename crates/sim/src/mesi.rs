//! MESI cache-line states and snoop transition logic.

use std::fmt;

/// The four MESI states of a cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: one of possibly several clean copies.
    Shared,
    /// Invalid: no valid copy.
    Invalid,
}

impl MesiState {
    /// The line holds usable data.
    pub fn is_valid(&self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// The line may be written without a bus transaction.
    pub fn can_write_silently(&self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// The line must be written back on eviction or remote read.
    pub fn is_dirty(&self) -> bool {
        matches!(self, MesiState::Modified)
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Bus transactions a processor can issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusTransaction {
    /// Read miss: request a shared copy.
    BusRd,
    /// Write miss: request an exclusive copy (invalidating others).
    BusRdX,
    /// Write hit on a Shared line: invalidate other copies without a data
    /// transfer.
    BusUpgr,
}

/// What a snooping cache must do when it observes a transaction on a line
/// it holds in the given state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnoopAction {
    /// New state for the snooped line.
    pub next_state: MesiState,
    /// The snooper must supply/flush its (dirty) data.
    pub flush: bool,
}

/// MESI snoop transition: state of the *snooping* cache's line when another
/// processor issues `txn` on the same address.
pub fn snoop_transition(state: MesiState, txn: BusTransaction) -> SnoopAction {
    use BusTransaction::*;
    use MesiState::*;
    match (state, txn) {
        (Modified, BusRd) => SnoopAction {
            next_state: Shared,
            flush: true,
        },
        (Modified, BusRdX) => SnoopAction {
            next_state: Invalid,
            flush: true,
        },
        (Modified, BusUpgr) => {
            // Cannot occur in a correct protocol: BusUpgr implies the issuer
            // holds Shared, which excludes a remote Modified copy. Treated
            // as invalidate-with-flush for robustness under fault injection.
            SnoopAction {
                next_state: Invalid,
                flush: true,
            }
        }
        (Exclusive, BusRd) => SnoopAction {
            next_state: Shared,
            flush: false,
        },
        (Exclusive, BusRdX | BusUpgr) => SnoopAction {
            next_state: Invalid,
            flush: false,
        },
        (Shared, BusRd) => SnoopAction {
            next_state: Shared,
            flush: false,
        },
        (Shared, BusRdX | BusUpgr) => SnoopAction {
            next_state: Invalid,
            flush: false,
        },
        (Invalid, _) => SnoopAction {
            next_state: Invalid,
            flush: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BusTransaction::*;
    use MesiState::*;

    #[test]
    fn state_predicates() {
        assert!(Modified.is_valid() && Modified.is_dirty() && Modified.can_write_silently());
        assert!(Exclusive.is_valid() && !Exclusive.is_dirty() && Exclusive.can_write_silently());
        assert!(Shared.is_valid() && !Shared.can_write_silently());
        assert!(!Invalid.is_valid());
    }

    #[test]
    fn modified_flushes_on_remote_read() {
        let a = snoop_transition(Modified, BusRd);
        assert_eq!(
            a,
            SnoopAction {
                next_state: Shared,
                flush: true
            }
        );
    }

    #[test]
    fn modified_flushes_and_invalidates_on_remote_write() {
        let a = snoop_transition(Modified, BusRdX);
        assert_eq!(
            a,
            SnoopAction {
                next_state: Invalid,
                flush: true
            }
        );
    }

    #[test]
    fn shared_invalidates_on_upgrade() {
        let a = snoop_transition(Shared, BusUpgr);
        assert_eq!(
            a,
            SnoopAction {
                next_state: Invalid,
                flush: false
            }
        );
    }

    #[test]
    fn exclusive_downgrades_quietly() {
        let a = snoop_transition(Exclusive, BusRd);
        assert_eq!(
            a,
            SnoopAction {
                next_state: Shared,
                flush: false
            }
        );
    }

    #[test]
    fn invalid_ignores_everything() {
        for txn in [BusRd, BusRdX, BusUpgr] {
            assert_eq!(
                snoop_transition(Invalid, txn),
                SnoopAction {
                    next_state: Invalid,
                    flush: false
                }
            );
        }
    }
}
