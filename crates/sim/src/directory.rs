//! A directory-based MSI coherence machine — the distributed-memory-
//! controller organization the paper's introduction names alongside
//! snooping hierarchies.
//!
//! Instead of broadcasting on a bus, each address has a home **directory**
//! entry tracking its global state: uncached, shared by a set of CPUs, or
//! owned exclusively. Misses send `GetS`/`GetM` requests to the directory,
//! which forwards invalidations/fetches to the relevant caches only.
//! Transactions are atomic (the textbook model), the machine is
//! sequentially consistent, and the same fault classes as the snooping
//! machine can be injected — including directory-specific ones
//! (out-of-date sharer sets manifest exactly like dropped invalidations).

use crate::cache::Cache;
use crate::fault::{FaultPlan, FaultState};
use crate::machine::{CapturedExecution, MachineStats};
use crate::mesi::MesiState;
use crate::program::{Instr, Program, RmwKind};
use std::collections::BTreeMap;
use vermem_trace::{Addr, Op, OpRef, ProcId, ProcessHistory, Trace, Value};
use vermem_util::rng::StdRng;

/// Global state of one address in the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line.
    Uncached,
    /// Clean copies at the listed CPUs.
    Shared(Vec<usize>),
    /// One CPU owns the line (possibly dirty).
    Owned(usize),
}

/// Configuration for the directory machine.
#[derive(Clone, Debug)]
pub struct DirectoryConfig {
    /// Direct-mapped lines per CPU cache.
    pub cache_lines: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// One-shot faults (same classes as the snooping machine).
    pub faults: Vec<FaultPlan>,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            cache_lines: 8,
            seed: 0xD1E,
            faults: Vec::new(),
        }
    }
}

/// The directory-based multiprocessor.
pub struct DirectoryMachine {
    cfg: DirectoryConfig,
    caches: Vec<Cache>,
    memory: BTreeMap<Addr, Value>,
    directory: BTreeMap<Addr, DirState>,
    histories: Vec<ProcessHistory>,
    write_order: BTreeMap<Addr, Vec<OpRef>>,
    event_log: Vec<(ProcId, Op)>,
    faults: FaultState,
    stats: MachineStats,
}

impl DirectoryMachine {
    /// Execute `program` to completion under the directory protocol.
    pub fn run(program: &Program, cfg: DirectoryConfig) -> CapturedExecution {
        let mut span = vermem_util::span!("sim.run");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let faults = FaultState::new(&cfg.faults);
        let mut m = DirectoryMachine {
            caches: (0..program.num_cpus())
                .map(|_| Cache::new(cfg.cache_lines))
                .collect(),
            memory: BTreeMap::new(),
            directory: BTreeMap::new(),
            histories: vec![ProcessHistory::new(); program.num_cpus()],
            write_order: BTreeMap::new(),
            event_log: Vec::new(),
            faults,
            stats: MachineStats::default(),
            cfg,
        };

        let mut pc = vec![0usize; program.num_cpus()];
        loop {
            let ready: Vec<usize> = (0..program.num_cpus())
                .filter(|&c| pc[c] < program.streams()[c].len())
                .collect();
            if ready.is_empty() {
                break;
            }
            let cpu = ready[rng.gen_range(0..ready.len())];
            m.stats.steps += 1;
            let instr = program.streams()[cpu][pc[cpu]];
            pc[cpu] += 1;
            m.execute(cpu, instr);
        }

        // Final flush of owned dirty lines for the memory image.
        for cache in &m.caches {
            for line in cache.lines() {
                if line.state.is_dirty() {
                    m.memory.insert(line.addr, line.value);
                }
            }
        }

        let mut trace = Trace::from_histories(m.histories);
        let final_memory = m.memory.clone();
        for (&addr, &value) in &final_memory {
            trace.set_final(addr, value);
        }
        if span.is_recording() {
            span.arg("cpus", program.num_cpus() as u64);
            span.arg("steps", m.stats.steps);
            m.stats.flush_obs();
        }
        CapturedExecution {
            trace,
            write_order: m.write_order,
            event_log: m.event_log,
            final_memory,
            stats: m.stats,
        }
    }

    fn record(&mut self, cpu: usize, op: Op) -> OpRef {
        let index = self.histories[cpu].len() as u32;
        self.histories[cpu].push(op);
        OpRef::new(cpu as u16, index)
    }

    fn dir(&mut self, addr: Addr) -> &mut DirState {
        self.directory.entry(addr).or_insert(DirState::Uncached)
    }

    fn execute(&mut self, cpu: usize, instr: Instr) {
        match instr {
            Instr::Read(addr) => {
                let value = self.load(cpu, addr);
                self.record(cpu, Op::Read { addr, value });
                self.event_log
                    .push((ProcId(cpu as u16), Op::Read { addr, value }));
            }
            Instr::Write(addr, value) => {
                let op_ref = self.record(cpu, Op::Write { addr, value });
                self.store(cpu, addr, value, op_ref);
                self.event_log
                    .push((ProcId(cpu as u16), Op::Write { addr, value }));
            }
            Instr::Rmw(addr, kind) => {
                let old = self.get_exclusive(cpu, addr);
                let new = match kind {
                    RmwKind::Increment => Value(old.0.wrapping_add(1)),
                    RmwKind::Swap(v) => v,
                    RmwKind::CompareAndSwap { expected, new } => {
                        if old == expected {
                            new
                        } else {
                            old
                        }
                    }
                };
                let line = self.caches[cpu].lookup_mut(addr).expect("exclusive");
                line.value = new;
                line.state = MesiState::Modified;
                let op_ref = self.record(
                    cpu,
                    Op::Rmw {
                        addr,
                        read: old,
                        write: new,
                    },
                );
                self.write_order.entry(addr).or_default().push(op_ref);
                self.event_log.push((
                    ProcId(cpu as u16),
                    Op::Rmw {
                        addr,
                        read: old,
                        write: new,
                    },
                ));
            }
            Instr::Fence => {} // SC machine: nothing buffered
        }
    }

    fn load(&mut self, cpu: usize, addr: Addr) -> Value {
        if let Some(line) = self.caches[cpu].lookup(addr) {
            self.stats.hits += 1;
            return line.value;
        }
        // GetS to the directory.
        self.stats.misses += 1;
        let state = self.dir(addr).clone();
        if let DirState::Owned(owner) = state {
            // Fetch: owner writes back and downgrades to Shared — unless a
            // stale-fill fault swallows the writeback.
            let stale = self.faults.stale_fill(self.stats.steps, cpu);
            if let Some(line) = self.caches[owner].lookup(addr) {
                if !stale {
                    self.memory.insert(addr, line.value);
                    self.stats.writebacks += 1;
                }
                let line = self.caches[owner].lookup_mut(addr).expect("owner");
                line.state = MesiState::Shared;
            }
            *self.dir(addr) = DirState::Shared(vec![owner, cpu]);
        } else {
            let mut sharers = match state {
                DirState::Shared(s) => s,
                _ => Vec::new(),
            };
            if !sharers.contains(&cpu) {
                sharers.push(cpu);
            }
            *self.dir(addr) = DirState::Shared(sharers);
        }
        let mut value = self.memory.get(&addr).copied().unwrap_or(Value::INITIAL);
        if let Some(mask) = self.faults.corrupt_fill(self.stats.steps, cpu) {
            value = Value(value.0 ^ mask.0);
        }
        self.fill(cpu, addr, value, MesiState::Shared);
        value
    }

    /// Obtain exclusive ownership; returns the pre-write value.
    fn get_exclusive(&mut self, cpu: usize, addr: Addr) -> Value {
        if let Some(line) = self.caches[cpu].lookup(addr) {
            if line.state.is_dirty() {
                self.stats.hits += 1;
                return line.value;
            }
        }
        // GetM to the directory.
        self.stats.misses += 1;
        let state = self.dir(addr).clone();
        match state {
            DirState::Owned(owner) if owner != cpu => {
                let stale = self.faults.stale_fill(self.stats.steps, cpu);
                if let Some(line) = self.caches[owner].lookup(addr) {
                    if !stale {
                        self.memory.insert(addr, line.value);
                        self.stats.writebacks += 1;
                    }
                }
                self.invalidate_at(owner, addr);
            }
            DirState::Shared(sharers) => {
                for s in sharers {
                    if s != cpu {
                        self.invalidate_at(s, addr);
                    }
                }
            }
            _ => {}
        }
        *self.dir(addr) = DirState::Owned(cpu);
        let value = match self.caches[cpu].lookup(addr) {
            Some(line) => line.value, // was Shared locally: upgrade
            None => {
                let mut v = self.memory.get(&addr).copied().unwrap_or(Value::INITIAL);
                if let Some(mask) = self.faults.corrupt_fill(self.stats.steps, cpu) {
                    v = Value(v.0 ^ mask.0);
                }
                self.fill(cpu, addr, v, MesiState::Modified);
                v
            }
        };
        let line = self.caches[cpu]
            .lookup_mut(addr)
            .expect("filled or upgraded");
        line.state = MesiState::Modified;
        value
    }

    fn store(&mut self, cpu: usize, addr: Addr, value: Value, op_ref: OpRef) {
        let _ = self.get_exclusive(cpu, addr);
        let lost = self.faults.lose_write(self.stats.steps, cpu);
        let line = self.caches[cpu].lookup_mut(addr).expect("exclusive");
        if !lost {
            line.value = value;
        }
        line.state = MesiState::Modified;
        self.write_order.entry(addr).or_default().push(op_ref);
    }

    fn invalidate_at(&mut self, cpu: usize, addr: Addr) {
        if self.faults.drop_invalidation(self.stats.steps, cpu) {
            return; // the fault: sharer keeps a stale copy
        }
        if let Some(line) = self.caches[cpu].lookup_mut(addr) {
            line.state = MesiState::Invalid;
            self.stats.invalidations += 1;
        }
    }

    fn fill(&mut self, cpu: usize, addr: Addr, value: Value, state: MesiState) {
        if let Some(victim) = self.caches[cpu].fill(addr, value, state) {
            if victim.state.is_dirty() {
                // PutM: write back and clear the directory entry.
                self.memory.insert(victim.addr, victim.value);
                self.stats.writebacks += 1;
                *self.dir(victim.addr) = DirState::Uncached;
            } else {
                // Drop this CPU from the sharer set.
                let d = self.dir(victim.addr);
                if let DirState::Shared(sharers) = d {
                    sharers.retain(|&s| s != cpu);
                    if sharers.is_empty() {
                        *d = DirState::Uncached;
                    }
                }
            }
        }
    }

    /// Current directory state of an address (for tests and diagnostics).
    pub fn directory_state(&self, addr: Addr) -> Option<&DirState> {
        self.directory.get(&addr)
    }

    /// Access the configuration.
    pub fn config(&self) -> &DirectoryConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{random_program, shared_counter, WorkloadConfig};

    #[test]
    fn single_cpu_round_trip() {
        let p = Program::from_streams(vec![vec![
            Instr::Write(Addr(0), Value(7)),
            Instr::Read(Addr(0)),
        ]]);
        let cap = DirectoryMachine::run(&p, DirectoryConfig::default());
        assert_eq!(
            cap.trace.histories()[0].ops()[1],
            Op::Read {
                addr: Addr(0),
                value: Value(7)
            }
        );
        assert_eq!(cap.final_memory.get(&Addr(0)), Some(&Value(7)));
    }

    #[test]
    fn runs_are_sequentially_consistent() {
        for seed in 0..10 {
            let p = random_program(&WorkloadConfig {
                cpus: 3,
                instrs_per_cpu: 20,
                addrs: 3,
                write_fraction: 0.4,
                rmw_fraction: 0.1,
                seed,
            });
            let cap = DirectoryMachine::run(
                &p,
                DirectoryConfig {
                    seed,
                    ..Default::default()
                },
            );
            let verdict = vermem_consistency::solve_sc_backtracking(
                &cap.trace,
                &vermem_consistency::KernelConfig::default(),
            );
            assert!(
                verdict.is_consistent(),
                "directory machine must be SC (seed {seed})"
            );
        }
    }

    #[test]
    fn counter_increments_serialize() {
        let cap = DirectoryMachine::run(&shared_counter(4, 6), DirectoryConfig::default());
        assert_eq!(cap.final_memory.get(&Addr(0)), Some(&Value(24)));
        assert!(vermem_coherence::verify_execution(&cap.trace).is_coherent());
    }

    #[test]
    fn dropped_invalidation_detected_on_counter_workload() {
        let mut hits = 0;
        for seed in 0..30 {
            let cap = DirectoryMachine::run(
                &shared_counter(3, 8),
                DirectoryConfig {
                    seed,
                    faults: vec![FaultPlan {
                        kind: crate::fault::FaultKind::DropInvalidation { victim_cpu: 1 },
                        at_step: 6,
                    }],
                    ..Default::default()
                },
            );
            if !vermem_coherence::verify_execution(&cap.trace).is_coherent() {
                hits += 1;
            }
        }
        assert!(hits > 0, "directory invalidation drops never detected");
    }

    #[test]
    fn corrupt_fill_detected() {
        let mut hits = 0;
        for seed in 0..25 {
            let p = random_program(&WorkloadConfig {
                cpus: 3,
                instrs_per_cpu: 30,
                addrs: 2,
                write_fraction: 0.45,
                rmw_fraction: 0.0,
                seed,
            });
            let cap = DirectoryMachine::run(
                &p,
                DirectoryConfig {
                    seed,
                    faults: vec![FaultPlan {
                        kind: crate::fault::FaultKind::CorruptFill {
                            cpu: 1,
                            xor: 0xDEAD,
                        },
                        at_step: 8,
                    }],
                    ..Default::default()
                },
            );
            if !vermem_coherence::verify_execution(&cap.trace).is_coherent() {
                hits += 1;
            }
        }
        assert!(hits >= 8, "corrupt fill detection too low: {hits}/25");
    }

    #[test]
    fn agrees_with_snooping_machine_on_final_state() {
        // Same program, same seed policy: both machines end with the same
        // final memory for a deterministic single-CPU program.
        let p = Program::from_streams(vec![vec![
            Instr::Write(Addr(0), Value(1)),
            Instr::Write(Addr(1), Value(2)),
            Instr::Rmw(Addr(0), RmwKind::Increment),
        ]]);
        let dir = DirectoryMachine::run(&p, DirectoryConfig::default());
        let snoop = crate::machine::Machine::run(&p, crate::machine::MachineConfig::default());
        assert_eq!(dir.final_memory, snoop.final_memory);
    }

    #[test]
    fn write_order_capture_works() {
        let p = random_program(&WorkloadConfig {
            cpus: 3,
            instrs_per_cpu: 20,
            addrs: 2,
            write_fraction: 0.5,
            rmw_fraction: 0.1,
            seed: 4,
        });
        let cap = DirectoryMachine::run(&p, DirectoryConfig::default());
        for (addr, order) in &cap.write_order {
            assert!(
                vermem_coherence::solve_with_write_order(&cap.trace, *addr, order).is_coherent(),
                "directory write order must verify at {addr:?}"
            );
        }
    }
}
