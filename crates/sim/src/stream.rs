//! Capture-to-stream adapter: serialize a [`CapturedExecution`]'s event
//! log as a version-3 binary event stream for the streaming verifier
//! (`vermem_coherence::stream`).
//!
//! The machine's event log records writes at *commit* time and reads/RMWs
//! at execution time — the temporal feed a real write-invalidate memory
//! system can emit (Qadeer's logical-order-equals-temporal-order
//! observation). The v3 framing assigns each operation its program-order
//! identity from per-process counters, which is only faithful when each
//! process's events appear in its program order. That holds for the
//! sequentially-consistent machine (`store_buffers: false`); TSO captures
//! commit a process's writes *after* younger reads have executed, so the
//! adapter checks the invariant and refuses reordered logs rather than
//! silently mislabeling operations.

use crate::machine::CapturedExecution;
use vermem_trace::binary::encode_event_stream;
use vermem_trace::ProcId;

/// Why a capture cannot be serialized as a v3 event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamAdapterError {
    /// This process's event-log order diverges from its program order
    /// (store-buffer reordering): the v3 framing cannot label its ops.
    Reordered(ProcId),
}

impl std::fmt::Display for StreamAdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamAdapterError::Reordered(p) => write!(
                f,
                "process {} commits out of program order (store buffers?); \
                 cannot serialize as a v3 event stream",
                p.0
            ),
        }
    }
}

impl std::error::Error for StreamAdapterError {}

/// Serialize `capture` as a v3 event stream carrying the trace's
/// initial/final values, so a streaming verification of the bytes checks
/// exactly the same problem as a batch verification of `capture.trace`.
///
/// Errors if any process's event order is not its program order (see the
/// module docs); captures from the SC machine always succeed.
pub fn event_stream_bytes(capture: &CapturedExecution) -> Result<Vec<u8>, StreamAdapterError> {
    let trace = &capture.trace;
    let mut next = vec![0usize; trace.num_procs()];
    for &(proc, op) in &capture.event_log {
        let p = usize::from(proc.0);
        let expected = trace
            .histories()
            .get(p)
            .and_then(|h| h.op(next[p]))
            .ok_or(StreamAdapterError::Reordered(proc))?;
        if expected != op {
            return Err(StreamAdapterError::Reordered(proc));
        }
        next[p] += 1;
    }
    for (p, h) in trace.histories().iter().enumerate() {
        if next[p] != h.len() {
            return Err(StreamAdapterError::Reordered(ProcId(p as u16)));
        }
    }
    Ok(encode_event_stream(
        trace.num_procs() as u16,
        trace.initial_values(),
        trace.final_values(),
        &capture.event_log,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use crate::workload::{random_program, WorkloadConfig};

    fn sc_capture(seed: u64) -> CapturedExecution {
        let program = random_program(&WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 40,
            addrs: 6,
            seed,
            ..Default::default()
        });
        Machine::run(
            &program,
            MachineConfig {
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sc_captures_serialize_and_round_trip() {
        for seed in 0..4u64 {
            let capture = sc_capture(seed);
            let bytes = event_stream_bytes(&capture).expect("SC capture streams");
            // The decoded stream reassembles into the captured trace.
            let decoded = vermem_trace::binary::decode_trace(&bytes).expect("decode");
            assert_eq!(decoded.num_procs(), capture.trace.num_procs());
            assert_eq!(decoded.num_ops(), capture.trace.num_ops());
            assert_eq!(decoded.histories(), capture.trace.histories());
            assert_eq!(decoded.initial_values(), capture.trace.initial_values());
            assert_eq!(decoded.final_values(), capture.trace.final_values());
        }
    }

    #[test]
    fn tso_reordered_captures_are_refused() {
        // Store buffers with a low drain probability reorder commits past
        // younger reads; find a seed that exhibits it and check the typed
        // refusal. (Some seeds may drain eagerly enough to stay ordered —
        // that's fine, they just don't exercise the error arm.)
        let mut saw_reorder = false;
        for seed in 0..16u64 {
            let program = random_program(&WorkloadConfig {
                cpus: 4,
                instrs_per_cpu: 60,
                addrs: 4,
                seed,
                ..Default::default()
            });
            let capture = Machine::run(
                &program,
                MachineConfig {
                    store_buffers: true,
                    store_buffer_capacity: 8,
                    drain_probability: 0.05,
                    seed,
                    ..Default::default()
                },
            );
            match event_stream_bytes(&capture) {
                Ok(_) => {}
                Err(StreamAdapterError::Reordered(_)) => saw_reorder = true,
            }
        }
        assert!(saw_reorder, "no seed exhibited store-buffer reordering");
    }
}
