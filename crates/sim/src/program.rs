//! Per-processor instruction streams executed by the simulator.

use vermem_trace::{Addr, Value};

/// How an atomic read-modify-write computes its new value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// Fetch-and-increment: writes `read + 1`.
    Increment,
    /// Atomic exchange: writes the given value.
    Swap(Value),
    /// Compare-and-swap: writes `new` iff the read equals `expected`;
    /// otherwise the operation still executes atomically but writes back
    /// the value it read (recorded as an RMW either way).
    CompareAndSwap {
        /// Value the location must hold for the swap to take effect.
        expected: Value,
        /// Value installed on success.
        new: Value,
    },
}

/// One instruction of a processor's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Load from an address; the returned value is recorded in the trace.
    Read(Addr),
    /// Store a value to an address.
    Write(Addr, Value),
    /// Atomic read-modify-write.
    Rmw(Addr, RmwKind),
    /// Drain this processor's store buffer (a full fence). No-op when the
    /// machine runs without store buffers.
    Fence,
}

/// A whole-machine workload: one instruction stream per processor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    streams: Vec<Vec<Instr>>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from per-processor streams.
    pub fn from_streams(streams: Vec<Vec<Instr>>) -> Self {
        Program { streams }
    }

    /// Add a processor with the given stream; returns its index.
    pub fn push_stream(&mut self, stream: Vec<Instr>) -> usize {
        self.streams.push(stream);
        self.streams.len() - 1
    }

    /// The per-processor streams.
    pub fn streams(&self) -> &[Vec<Instr>] {
        &self.streams
    }

    /// Number of processors.
    pub fn num_cpus(&self) -> usize {
        self.streams.len()
    }

    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// True if no instructions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_accounting() {
        let mut p = Program::new();
        assert!(p.is_empty());
        let c0 = p.push_stream(vec![Instr::Read(Addr(0)), Instr::Write(Addr(0), Value(1))]);
        let c1 = p.push_stream(vec![Instr::Rmw(Addr(0), RmwKind::Increment)]);
        assert_eq!((c0, c1), (0, 1));
        assert_eq!(p.num_cpus(), 2);
        assert_eq!(p.len(), 3);
    }
}
