//! Workload program generators for the simulator.

use crate::program::{Instr, Program, RmwKind};
use vermem_trace::{Addr, Value};
use vermem_util::rng::StdRng;

/// Parameters for random workload generation.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of processors.
    pub cpus: usize,
    /// Instructions per processor.
    pub instrs_per_cpu: usize,
    /// Number of distinct shared addresses.
    pub addrs: usize,
    /// Probability of a write (vs read), before RMW selection.
    pub write_fraction: f64,
    /// Probability of an atomic RMW.
    pub rmw_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            cpus: 4,
            instrs_per_cpu: 32,
            addrs: 4,
            write_fraction: 0.4,
            rmw_fraction: 0.1,
            seed: 1,
        }
    }
}

/// Uniformly random loads/stores/atomics. Written values are globally
/// unique (never the initial value), so violations are maximally visible to
/// the verifiers.
pub fn random_program(cfg: &WorkloadConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut next_value = 1u64;
    let mut streams = Vec::with_capacity(cfg.cpus);
    for _ in 0..cfg.cpus {
        let mut s = Vec::with_capacity(cfg.instrs_per_cpu);
        for _ in 0..cfg.instrs_per_cpu {
            let addr = Addr(rng.gen_range(0..cfg.addrs) as u32);
            let instr = if rng.gen_bool(cfg.rmw_fraction) {
                Instr::Rmw(addr, RmwKind::Increment)
            } else if rng.gen_bool(cfg.write_fraction) {
                let v = Value(next_value);
                next_value += 1;
                Instr::Write(addr, v)
            } else {
                Instr::Read(addr)
            };
            s.push(instr);
        }
        streams.push(s);
    }
    Program::from_streams(streams)
}

/// A producer/consumer (message-passing) workload: `pairs` producer CPUs
/// each write a payload then set a flag; matching consumer CPUs poll the
/// flag then read the payload. Exercises the invalidation-heavy pattern
/// where dropped invalidations cause stale reads.
pub fn producer_consumer(pairs: usize, rounds: usize) -> Program {
    let mut streams = Vec::with_capacity(pairs * 2);
    for p in 0..pairs {
        let payload = Addr((2 * p) as u32);
        let flag = Addr((2 * p + 1) as u32);
        let mut producer = Vec::new();
        let mut consumer = Vec::new();
        for r in 0..rounds {
            let v = Value((100 * (p as u64 + 1)) + r as u64);
            producer.push(Instr::Write(payload, v));
            producer.push(Instr::Fence);
            producer.push(Instr::Write(flag, Value(r as u64 + 1)));
            consumer.push(Instr::Read(flag));
            consumer.push(Instr::Read(payload));
        }
        streams.push(producer);
        streams.push(consumer);
    }
    Program::from_streams(streams)
}

/// A shared-counter workload: every CPU performs `increments`
/// fetch-and-increment atomics on one location, then reads it back.
pub fn shared_counter(cpus: usize, increments: usize) -> Program {
    let ctr = Addr(0);
    let streams = (0..cpus)
        .map(|_| {
            let mut s = vec![Instr::Rmw(ctr, RmwKind::Increment); increments];
            s.push(Instr::Read(ctr));
            s
        })
        .collect();
    Program::from_streams(streams)
}

/// Contended ping-pong: two CPUs alternately write and read two locations,
/// maximizing coherence traffic.
pub fn ping_pong(rounds: usize) -> Program {
    let a = Addr(0);
    let b = Addr(1);
    let mut s0 = Vec::new();
    let mut s1 = Vec::new();
    for r in 0..rounds {
        let v = Value(1 + r as u64);
        s0.push(Instr::Write(a, v));
        s0.push(Instr::Read(b));
        s1.push(Instr::Write(b, v));
        s1.push(Instr::Read(a));
    }
    Program::from_streams(vec![s0, s1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_program_shape() {
        let cfg = WorkloadConfig {
            cpus: 3,
            instrs_per_cpu: 10,
            ..Default::default()
        };
        let p = random_program(&cfg);
        assert_eq!(p.num_cpus(), 3);
        assert_eq!(p.len(), 30);
    }

    #[test]
    fn random_program_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(random_program(&cfg), random_program(&cfg));
    }

    #[test]
    fn producer_consumer_shape() {
        let p = producer_consumer(2, 3);
        assert_eq!(p.num_cpus(), 4);
        // Producer: 3 instrs/round; consumer: 2.
        assert_eq!(p.streams()[0].len(), 9);
        assert_eq!(p.streams()[1].len(), 6);
    }

    #[test]
    fn shared_counter_final_value() {
        let p = shared_counter(4, 5);
        let cap = crate::machine::Machine::run(&p, crate::machine::MachineConfig::default());
        assert_eq!(cap.final_memory.get(&Addr(0)), Some(&Value(20)));
    }

    #[test]
    fn ping_pong_generates_traffic() {
        let p = ping_pong(8);
        let cap = crate::machine::Machine::run(&p, crate::machine::MachineConfig::default());
        assert!(cap.stats.invalidations > 0, "ping-pong must invalidate");
    }
}
