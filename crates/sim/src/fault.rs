//! Protocol fault injection: the hardware-error classes the paper's
//! dynamic-verification motivation targets (§1).
//!
//! Faults are one-shot and deterministic: each plan arms at a global step
//! and fires at the next eligible protocol event, so a faulty run is
//! exactly reproducible from its seed and plan list.

use vermem_trace::Value;

/// A class of protocol fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The victim CPU ignores its next invalidation snoop, leaving a stale
    /// line that later reads may consume (a lost invalidate message).
    DropInvalidation {
        /// CPU whose snoop is dropped.
        victim_cpu: usize,
    },
    /// The CPU's next cache fill XORs the incoming word with a mask (a data
    /// corruption on the fill path).
    CorruptFill {
        /// CPU whose fill is corrupted.
        cpu: usize,
        /// Non-zero corruption mask.
        xor: u64,
    },
    /// The CPU's next committed write performs all coherence transitions
    /// but fails to update the data (a dropped store).
    LostWrite {
        /// CPU whose store is dropped.
        cpu: usize,
    },
    /// The CPU's next miss fills straight from memory, ignoring a remote
    /// Modified copy (a missed owner-supply).
    StaleFill {
        /// CPU whose fill bypasses the owner.
        cpu: usize,
    },
}

/// A one-shot fault: fires at the first eligible event at or after
/// `at_step` global machine steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault class.
    pub kind: FaultKind,
    /// Global step from which the fault is armed.
    pub at_step: u64,
}

/// Tracks pending fault plans during a run.
#[derive(Clone, Debug, Default)]
pub struct FaultState {
    plans: Vec<(FaultPlan, bool)>, // (plan, fired)
}

impl FaultState {
    /// Initialize from a plan list.
    pub fn new(plans: &[FaultPlan]) -> Self {
        FaultState {
            plans: plans.iter().map(|&p| (p, false)).collect(),
        }
    }

    /// Number of plans that have fired.
    pub fn fired(&self) -> usize {
        self.plans.iter().filter(|(_, fired)| *fired).count()
    }

    /// True if every plan has fired.
    pub fn all_fired(&self) -> bool {
        self.plans.iter().all(|(_, fired)| *fired)
    }

    fn take(&mut self, step: u64, matcher: impl Fn(&FaultKind) -> bool) -> Option<FaultKind> {
        for (plan, fired) in &mut self.plans {
            if !*fired && step >= plan.at_step && matcher(&plan.kind) {
                *fired = true;
                return Some(plan.kind);
            }
        }
        None
    }

    /// Should this CPU drop its pending invalidation snoop?
    pub fn drop_invalidation(&mut self, step: u64, cpu: usize) -> bool {
        self.take(
            step,
            |k| matches!(k, FaultKind::DropInvalidation { victim_cpu } if *victim_cpu == cpu),
        )
        .is_some()
    }

    /// Corruption mask for this CPU's fill, if armed.
    pub fn corrupt_fill(&mut self, step: u64, cpu: usize) -> Option<Value> {
        match self.take(
            step,
            |k| matches!(k, FaultKind::CorruptFill { cpu: c, .. } if *c == cpu),
        ) {
            Some(FaultKind::CorruptFill { xor, .. }) => Some(Value(xor)),
            _ => None,
        }
    }

    /// Should this CPU's committing write lose its data?
    pub fn lose_write(&mut self, step: u64, cpu: usize) -> bool {
        self.take(
            step,
            |k| matches!(k, FaultKind::LostWrite { cpu: c } if *c == cpu),
        )
        .is_some()
    }

    /// Should this CPU's fill bypass a remote owner?
    pub fn stale_fill(&mut self, step: u64, cpu: usize) -> bool {
        self.take(
            step,
            |k| matches!(k, FaultKind::StaleFill { cpu: c } if *c == cpu),
        )
        .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_fire_once_and_only_after_arming() {
        let mut fs = FaultState::new(&[FaultPlan {
            kind: FaultKind::LostWrite { cpu: 1 },
            at_step: 10,
        }]);
        assert!(!fs.lose_write(5, 1), "not armed yet");
        assert!(!fs.lose_write(10, 0), "wrong cpu");
        assert!(fs.lose_write(10, 1), "fires");
        assert!(!fs.lose_write(11, 1), "one-shot");
        assert!(fs.all_fired());
    }

    #[test]
    fn matchers_are_kind_specific() {
        let mut fs = FaultState::new(&[FaultPlan {
            kind: FaultKind::CorruptFill { cpu: 0, xor: 0xFF },
            at_step: 0,
        }]);
        assert!(!fs.drop_invalidation(0, 0));
        assert_eq!(fs.corrupt_fill(0, 0), Some(Value(0xFF)));
        assert_eq!(fs.fired(), 1);
    }
}
