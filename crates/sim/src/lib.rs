//! # vermem-sim
//!
//! An executable multiprocessor memory-system substrate for the `vermem`
//! verifier suite: per-CPU MESI caches on an atomic snooping bus over a
//! word-granular shared memory, with optional TSO store buffers
//! (store-to-load forwarding) and deterministic protocol fault injection.
//!
//! The paper motivates its complexity study with *dynamic verification*:
//! checking the execution of real (possibly faulty) memory-system hardware.
//! This crate plays the role of that hardware. It produces exactly the
//! verifiers' input — per-process operation [traces](vermem_trace::Trace)
//! in program order with observed values — plus the per-address committed
//! **write order**, the §5.2 augmentation under which coherence checking is
//! polynomial.
//!
//! Simplifications (documented substitutions per DESIGN.md): lines hold a
//! single word (so coherence is word-granular and captured values are
//! exact), and bus transactions are atomic (the classic textbook snooping
//! model). Neither affects the verifier-facing semantics: the machine is
//! sequentially consistent without store buffers, TSO with them, and
//! injected faults produce precisely the violation classes the verifiers
//! are designed to catch.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod directory;
pub mod fault;
pub mod machine;
pub mod mesi;
pub mod program;
pub mod stream;
pub mod workload;

pub use directory::{DirState, DirectoryConfig, DirectoryMachine};
pub use fault::{FaultKind, FaultPlan};
pub use machine::{CapturedExecution, Machine, MachineConfig, MachineStats};
pub use mesi::MesiState;
pub use program::{Instr, Program, RmwKind};
pub use stream::{event_stream_bytes, StreamAdapterError};
pub use workload::{ping_pong, producer_consumer, random_program, shared_counter, WorkloadConfig};
