//! The multiprocessor machine: MESI caches on a snooping bus over a word
//! memory, optional per-CPU store buffers (TSO mode), deterministic seeded
//! scheduling, trace capture and write-order capture (§5.2's augmented
//! memory system).

use crate::cache::Cache;
use crate::fault::{FaultPlan, FaultState};
use crate::mesi::{snoop_transition, BusTransaction, MesiState};
use crate::program::{Instr, Program, RmwKind};
use std::collections::{BTreeMap, VecDeque};
use vermem_trace::{Addr, Op, OpRef, ProcId, ProcessHistory, Trace, Value};
use vermem_util::rng::StdRng;

/// Machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Direct-mapped lines per CPU cache.
    pub cache_lines: usize,
    /// Enable per-CPU FIFO store buffers with store-to-load forwarding
    /// (TSO); without them every access commits in issue order (SC).
    pub store_buffers: bool,
    /// Store buffer capacity (entries) when enabled.
    pub store_buffer_capacity: usize,
    /// Probability per scheduling step that a CPU with a non-empty buffer
    /// drains one entry instead of issuing its next instruction.
    pub drain_probability: f64,
    /// Scheduler / drain RNG seed.
    pub seed: u64,
    /// One-shot protocol faults to inject.
    pub faults: Vec<FaultPlan>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cache_lines: 8,
            store_buffers: false,
            store_buffer_capacity: 4,
            drain_probability: 0.3,
            seed: 0xFEED,
            faults: Vec::new(),
        }
    }
}

/// Counters from a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Cache hits (reads and silent writes).
    pub hits: u64,
    /// Misses requiring a bus transaction with data transfer.
    pub misses: u64,
    /// Invalidations performed by snoopers.
    pub invalidations: u64,
    /// Dirty writebacks (snooper flushes and evictions).
    pub writebacks: u64,
    /// Store-buffer drains.
    pub drains: u64,
    /// Global scheduling steps executed.
    pub steps: u64,
}

impl MachineStats {
    /// Render as a `sim` section of the unified run report (the one
    /// shared pretty-printer in [`vermem_util::obs::report`]).
    pub fn to_report(&self) -> vermem_util::obs::report::RunReportSection {
        vermem_util::obs::report::RunReportSection::new("sim")
            .with("hits", self.hits)
            .with("misses", self.misses)
            .with("invalidations", self.invalidations)
            .with("writebacks", self.writebacks)
            .with("drains", self.drains)
            .with("steps", self.steps)
    }

    /// Batch-flush these counters into the metrics registry under
    /// `sim.*`. No-op when observability is disabled.
    pub fn flush_obs(&self) {
        use vermem_util::obs;
        if !obs::enabled() {
            return;
        }
        obs::counter_add("sim.hits", self.hits);
        obs::counter_add("sim.misses", self.misses);
        obs::counter_add("sim.invalidations", self.invalidations);
        obs::counter_add("sim.writebacks", self.writebacks);
        obs::counter_add("sim.drains", self.drains);
        obs::counter_add("sim.steps", self.steps);
    }
}

/// Everything captured from a run: the per-process operation trace (issue
/// order = program order), the per-address write order in commit order, and
/// the final memory image.
#[derive(Clone, Debug)]
pub struct CapturedExecution {
    /// The execution trace (input to the verifiers).
    pub trace: Trace,
    /// For each address, the committed write order — the §5.2 augmentation
    /// that makes coherence verification polynomial.
    pub write_order: BTreeMap<Addr, Vec<OpRef>>,
    /// Final memory contents (coherent view after full drain), usable as
    /// final-value constraints.
    pub final_memory: BTreeMap<Addr, Value>,
    /// The global event stream in machine order — writes at *commit* time,
    /// reads and RMWs at execution time — i.e. exactly the feed for the
    /// streaming checker (`vermem_coherence::OnlineVerifier`).
    pub event_log: Vec<(ProcId, Op)>,
    /// Run statistics.
    pub stats: MachineStats,
}

struct BufferedStore {
    addr: Addr,
    value: Value,
    op_ref: OpRef,
}

/// The simulated multiprocessor.
pub struct Machine {
    cfg: MachineConfig,
    caches: Vec<Cache>,
    memory: BTreeMap<Addr, Value>,
    buffers: Vec<VecDeque<BufferedStore>>,
    histories: Vec<ProcessHistory>,
    write_order: BTreeMap<Addr, Vec<OpRef>>,
    event_log: Vec<(ProcId, Op)>,
    faults: FaultState,
    stats: MachineStats,
    rng: StdRng,
}

impl Machine {
    /// Build a machine for `num_cpus` processors.
    pub fn new(num_cpus: usize, cfg: MachineConfig) -> Self {
        let faults = FaultState::new(&cfg.faults);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Machine {
            caches: (0..num_cpus).map(|_| Cache::new(cfg.cache_lines)).collect(),
            memory: BTreeMap::new(),
            buffers: (0..num_cpus).map(|_| VecDeque::new()).collect(),
            histories: vec![ProcessHistory::new(); num_cpus],
            write_order: BTreeMap::new(),
            event_log: Vec::new(),
            faults,
            stats: MachineStats::default(),
            cfg,
            rng,
        }
    }

    /// Execute `program` to completion (all instructions issued, all store
    /// buffers drained) and return the captured execution.
    pub fn run(program: &Program, cfg: MachineConfig) -> CapturedExecution {
        let mut span = vermem_util::span!("sim.run");
        let mut m = Machine::new(program.num_cpus(), cfg);
        let mut pc = vec![0usize; program.num_cpus()];
        loop {
            // CPUs that can still act: instructions left or buffer entries.
            let ready: Vec<usize> = (0..program.num_cpus())
                .filter(|&c| pc[c] < program.streams()[c].len() || !m.buffers[c].is_empty())
                .collect();
            if ready.is_empty() {
                break;
            }
            let cpu = ready[m.rng.gen_range(0..ready.len())];
            m.stats.steps += 1;

            let must_drain = pc[cpu] >= program.streams()[cpu].len();
            let wants_drain = !m.buffers[cpu].is_empty()
                && (must_drain || m.rng.gen_bool(m.cfg.drain_probability));
            if wants_drain {
                m.drain_one(cpu);
                continue;
            }
            let instr = program.streams()[cpu][pc[cpu]];
            pc[cpu] += 1;
            m.execute(cpu, instr);
        }
        debug_assert!(m.buffers.iter().all(VecDeque::is_empty));

        // Flush dirty lines so the memory image is the coherent final state.
        for cache in &m.caches {
            for line in cache.lines() {
                if line.state.is_dirty() {
                    m.memory.insert(line.addr, line.value);
                }
            }
        }

        let mut trace = Trace::from_histories(m.histories);
        let final_memory = m.memory.clone();
        for (&addr, &value) in &final_memory {
            trace.set_final(addr, value);
        }
        if span.is_recording() {
            span.arg("cpus", program.num_cpus() as u64);
            span.arg("steps", m.stats.steps);
            m.stats.flush_obs();
        }
        CapturedExecution {
            trace,
            write_order: m.write_order,
            event_log: m.event_log,
            final_memory,
            stats: m.stats,
        }
    }

    fn record(&mut self, cpu: usize, op: Op) -> OpRef {
        let index = self.histories[cpu].len() as u32;
        self.histories[cpu].push(op);
        OpRef::new(cpu as u16, index)
    }

    fn execute(&mut self, cpu: usize, instr: Instr) {
        match instr {
            Instr::Read(addr) => {
                let value = self.load(cpu, addr);
                self.record(cpu, Op::Read { addr, value });
                self.event_log
                    .push((ProcId(cpu as u16), Op::Read { addr, value }));
            }
            Instr::Write(addr, value) => {
                let op_ref = self.record(cpu, Op::Write { addr, value });
                if self.cfg.store_buffers {
                    if self.buffers[cpu].len() >= self.cfg.store_buffer_capacity {
                        self.drain_one(cpu);
                    }
                    self.buffers[cpu].push_back(BufferedStore {
                        addr,
                        value,
                        op_ref,
                    });
                } else {
                    self.commit_write(cpu, addr, value, op_ref);
                }
            }
            Instr::Rmw(addr, kind) => {
                // Atomics drain the buffer (as on x86/SPARC) and then hold
                // the line exclusively across the read-modify-write.
                self.drain_all(cpu);
                let old = self.acquire_exclusive(cpu, addr);
                let new = match kind {
                    RmwKind::Increment => Value(old.0.wrapping_add(1)),
                    RmwKind::Swap(v) => v,
                    RmwKind::CompareAndSwap { expected, new } => {
                        if old == expected {
                            new
                        } else {
                            old
                        }
                    }
                };
                let line = self.caches[cpu].lookup_mut(addr).expect("acquired");
                line.value = new;
                line.state = MesiState::Modified;
                let op_ref = self.record(
                    cpu,
                    Op::Rmw {
                        addr,
                        read: old,
                        write: new,
                    },
                );
                self.write_order.entry(addr).or_default().push(op_ref);
                self.event_log.push((
                    ProcId(cpu as u16),
                    Op::Rmw {
                        addr,
                        read: old,
                        write: new,
                    },
                ));
            }
            Instr::Fence => {
                self.drain_all(cpu);
            }
        }
    }

    fn drain_one(&mut self, cpu: usize) {
        if let Some(entry) = self.buffers[cpu].pop_front() {
            self.stats.drains += 1;
            self.commit_write(cpu, entry.addr, entry.value, entry.op_ref);
        }
    }

    fn drain_all(&mut self, cpu: usize) {
        while !self.buffers[cpu].is_empty() {
            self.drain_one(cpu);
        }
    }

    /// A load. When the store buffer holds a store to the same address, the
    /// buffer is drained through the youngest matching entry first rather
    /// than forwarded: raw store-to-load forwarding makes the local store
    /// visible to its own loads *before* it is globally ordered, a
    /// behaviour no single global serialization can express (and hence
    /// outside the relaxed-order TSO model the verifiers check). Draining
    /// is always TSO-legal and keeps the machine's traces checkable.
    fn load(&mut self, cpu: usize, addr: Addr) -> Value {
        if self.cfg.store_buffers {
            if let Some(last_match) = self.buffers[cpu].iter().rposition(|e| e.addr == addr) {
                for _ in 0..=last_match {
                    self.drain_one(cpu);
                }
            }
        }
        if let Some(line) = self.caches[cpu].lookup(addr) {
            self.stats.hits += 1;
            return line.value;
        }
        // Miss: BusRd.
        self.stats.misses += 1;
        let shared_elsewhere = self.snoop(cpu, addr, BusTransaction::BusRd);
        let mut value = self.memory.get(&addr).copied().unwrap_or(Value::INITIAL);
        if let Some(mask) = self.faults.corrupt_fill(self.stats.steps, cpu) {
            value = Value(value.0 ^ mask.0);
        }
        let state = if shared_elsewhere {
            MesiState::Shared
        } else {
            MesiState::Exclusive
        };
        self.fill(cpu, addr, value, state);
        value
    }

    /// Obtain the line in an exclusive state, returning its current value.
    fn acquire_exclusive(&mut self, cpu: usize, addr: Addr) -> Value {
        match self.caches[cpu].lookup(addr).map(|l| (l.state, l.value)) {
            Some((state, value)) if state.can_write_silently() => {
                self.stats.hits += 1;
                value
            }
            Some((MesiState::Shared, value)) => {
                self.snoop(cpu, addr, BusTransaction::BusUpgr);
                let line = self.caches[cpu].lookup_mut(addr).expect("held shared");
                line.state = MesiState::Exclusive;
                value
            }
            _ => {
                self.stats.misses += 1;
                self.snoop(cpu, addr, BusTransaction::BusRdX);
                let value = self.memory.get(&addr).copied().unwrap_or(Value::INITIAL);
                self.fill(cpu, addr, value, MesiState::Exclusive);
                value
            }
        }
    }

    fn commit_write(&mut self, cpu: usize, addr: Addr, value: Value, op_ref: OpRef) {
        let _ = self.acquire_exclusive(cpu, addr);
        let lost = self.faults.lose_write(self.stats.steps, cpu);
        let line = self.caches[cpu].lookup_mut(addr).expect("acquired");
        if !lost {
            line.value = value;
        }
        line.state = MesiState::Modified;
        self.write_order.entry(addr).or_default().push(op_ref);
        self.event_log
            .push((ProcId(cpu as u16), Op::Write { addr, value }));
    }

    /// Broadcast `txn` for `addr` to all other caches; returns true if any
    /// other cache retains a valid copy afterwards. Dirty copies are
    /// flushed to memory so the issuer's fill observes them — unless a
    /// `StaleFill` fault swallows the flush.
    fn snoop(&mut self, cpu: usize, addr: Addr, txn: BusTransaction) -> bool {
        // A stale-fill fault is only meaningful when a remote dirty copy
        // would have supplied fresher data; don't burn the plan otherwise.
        let any_remote_dirty = (0..self.caches.len()).any(|o| {
            o != cpu
                && self.caches[o]
                    .lookup(addr)
                    .is_some_and(|l| l.state.is_dirty())
        });
        let stale = any_remote_dirty && self.faults.stale_fill(self.stats.steps, cpu);
        let mut shared = false;
        for other in 0..self.caches.len() {
            if other == cpu {
                continue;
            }
            let Some(line) = self.caches[other].lookup(addr) else {
                continue;
            };
            let action = snoop_transition(line.state, txn);
            if action.flush && !stale {
                self.memory.insert(addr, line.value);
                self.stats.writebacks += 1;
            }
            let invalidating = action.next_state == MesiState::Invalid;
            if invalidating && self.faults.drop_invalidation(self.stats.steps, other) {
                // Fault: the victim keeps its stale copy.
                shared = true;
                continue;
            }
            if invalidating {
                self.stats.invalidations += 1;
            }
            let line = self.caches[other].lookup_mut(addr).expect("present");
            line.state = action.next_state;
            if line.state.is_valid() {
                shared = true;
            }
        }
        shared
    }

    fn fill(&mut self, cpu: usize, addr: Addr, value: Value, state: MesiState) {
        if let Some(victim) = self.caches[cpu].fill(addr, value, state) {
            if victim.state.is_dirty() {
                self.memory.insert(victim.addr, victim.value);
                self.stats.writebacks += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::check_sc_schedule;

    fn run_sc(program: &Program, seed: u64) -> CapturedExecution {
        Machine::run(
            program,
            MachineConfig {
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn single_cpu_read_write() {
        let p = Program::from_streams(vec![vec![
            Instr::Write(Addr(0), Value(7)),
            Instr::Read(Addr(0)),
        ]]);
        let cap = run_sc(&p, 1);
        let h = &cap.trace.histories()[0];
        assert_eq!(
            h.ops()[0],
            Op::Write {
                addr: Addr(0),
                value: Value(7)
            }
        );
        assert_eq!(
            h.ops()[1],
            Op::Read {
                addr: Addr(0),
                value: Value(7)
            }
        );
        assert_eq!(cap.final_memory.get(&Addr(0)), Some(&Value(7)));
    }

    #[test]
    fn uninitialized_reads_return_initial() {
        let p = Program::from_streams(vec![vec![Instr::Read(Addr(3))]]);
        let cap = run_sc(&p, 1);
        assert_eq!(
            cap.trace.histories()[0].ops()[0],
            Op::Read {
                addr: Addr(3),
                value: Value::INITIAL
            }
        );
    }

    #[test]
    fn rmw_increment_chain_across_cpus() {
        let p = Program::from_streams(vec![
            vec![Instr::Rmw(Addr(0), RmwKind::Increment); 3],
            vec![Instr::Rmw(Addr(0), RmwKind::Increment); 3],
        ]);
        let cap = run_sc(&p, 42);
        assert_eq!(cap.final_memory.get(&Addr(0)), Some(&Value(6)));
        // Write order at addr 0 has all six RMWs.
        assert_eq!(cap.write_order[&Addr(0)].len(), 6);
    }

    #[test]
    fn compare_and_swap_semantics() {
        let p = Program::from_streams(vec![vec![
            Instr::Rmw(
                Addr(0),
                RmwKind::CompareAndSwap {
                    expected: Value(0),
                    new: Value(5),
                },
            ),
            Instr::Rmw(
                Addr(0),
                RmwKind::CompareAndSwap {
                    expected: Value(0),
                    new: Value(9),
                },
            ),
        ]]);
        let cap = run_sc(&p, 1);
        let ops = cap.trace.histories()[0].ops();
        assert_eq!(
            ops[0],
            Op::Rmw {
                addr: Addr(0),
                read: Value(0),
                write: Value(5)
            }
        );
        // Second CAS fails and writes back what it read.
        assert_eq!(
            ops[1],
            Op::Rmw {
                addr: Addr(0),
                read: Value(5),
                write: Value(5)
            }
        );
    }

    #[test]
    fn cache_eviction_writes_back_dirty_lines() {
        // Two addresses mapping to the same line in a 1-line cache.
        let p = Program::from_streams(vec![vec![
            Instr::Write(Addr(0), Value(1)),
            Instr::Write(Addr(1), Value(2)),
            Instr::Read(Addr(0)),
        ]]);
        let cap = Machine::run(
            &p,
            MachineConfig {
                cache_lines: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            cap.trace.histories()[0].ops()[2],
            Op::Read {
                addr: Addr(0),
                value: Value(1)
            }
        );
        assert!(cap.stats.writebacks > 0);
    }

    #[test]
    fn sharing_then_writing_invalidates() {
        let p = Program::from_streams(vec![
            vec![Instr::Read(Addr(0)), Instr::Write(Addr(0), Value(1))],
            vec![Instr::Read(Addr(0)), Instr::Read(Addr(0))],
        ]);
        let cap = run_sc(&p, 7);
        assert!(cap.stats.steps >= 4);
        // Whatever the interleaving, the captured trace must be coherent;
        // spot-check via the exact verifier.
        assert!(vermem_coherence::verify_execution(&cap.trace).is_coherent());
    }

    #[test]
    fn sc_mode_runs_are_sequentially_consistent() {
        for seed in 0..10 {
            let p = crate::workload::random_program(&crate::workload::WorkloadConfig {
                cpus: 3,
                instrs_per_cpu: 20,
                addrs: 3,
                write_fraction: 0.4,
                rmw_fraction: 0.1,
                seed,
            });
            let cap = run_sc(&p, seed);
            let verdict = vermem_consistency::solve_sc_backtracking(
                &cap.trace,
                &vermem_consistency::KernelConfig::default(),
            );
            let s = verdict
                .schedule()
                .unwrap_or_else(|| panic!("SC-mode machine must produce SC traces (seed {seed})"));
            check_sc_schedule(&cap.trace, s).unwrap();
        }
    }

    #[test]
    fn tso_mode_runs_are_coherent_per_address() {
        for seed in 0..10 {
            let p = crate::workload::random_program(&crate::workload::WorkloadConfig {
                cpus: 3,
                instrs_per_cpu: 25,
                addrs: 2,
                write_fraction: 0.5,
                rmw_fraction: 0.0,
                seed: 100 + seed,
            });
            let cap = Machine::run(
                &p,
                MachineConfig {
                    store_buffers: true,
                    seed: 100 + seed,
                    ..Default::default()
                },
            );
            assert!(
                vermem_coherence::verify_execution(&cap.trace).is_coherent(),
                "TSO machine must stay coherent (seed {seed})"
            );
        }
    }

    #[test]
    fn store_buffering_litmus_outcome_reachable_under_tso() {
        // Drive SB until the relaxed outcome appears: with store buffers it
        // must be reachable for some seed; the outcome must violate SC but
        // satisfy TSO.
        let p = Program::from_streams(vec![
            vec![Instr::Write(Addr(0), Value(1)), Instr::Read(Addr(1))],
            vec![Instr::Write(Addr(1), Value(1)), Instr::Read(Addr(0))],
        ]);
        let mut seen_relaxed = false;
        for seed in 0..200 {
            let cap = Machine::run(
                &p,
                MachineConfig {
                    store_buffers: true,
                    drain_probability: 0.1,
                    seed,
                    ..Default::default()
                },
            );
            let r0 = cap.trace.histories()[0].ops()[1].read_value().unwrap();
            let r1 = cap.trace.histories()[1].ops()[1].read_value().unwrap();
            if r0 == Value(0) && r1 == Value(0) {
                seen_relaxed = true;
                let sc = vermem_consistency::solve_sc_backtracking(
                    &cap.trace,
                    &vermem_consistency::KernelConfig::default(),
                );
                assert!(sc.is_violating(), "SB relaxed outcome must violate SC");
                let tso = vermem_consistency::solve_model_sat(
                    &cap.trace,
                    vermem_consistency::MemoryModel::Tso,
                );
                assert!(tso.is_consistent(), "SB relaxed outcome is TSO-legal");
                break;
            }
        }
        assert!(
            seen_relaxed,
            "store buffers should expose the SB reordering"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = crate::workload::random_program(&crate::workload::WorkloadConfig {
            cpus: 2,
            instrs_per_cpu: 15,
            addrs: 2,
            write_fraction: 0.5,
            rmw_fraction: 0.2,
            seed: 3,
        });
        let a = Machine::run(
            &p,
            MachineConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let b = Machine::run(
            &p,
            MachineConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.write_order, b.write_order);
    }
}
