//! Property tests for the PR-4 inference layer: every one of the 8
//! `PruneConfig` combinations must agree with the unpruned PR-2 baseline
//! search — same coherence verdict on every address, same first violation
//! when incoherent — on coherent generated traces AND fault-injected
//! mutants. A companion differential asserts the monotonicity contract:
//! pruning only ever removes explored states, never adds them.

use vermem_coherence::{solve_backtracking_with_stats, PruneConfig, SearchConfig, Verdict};
use vermem_trace::gen::{gen_hard_coherent, gen_sc_trace, inject_violation, GenConfig};
use vermem_trace::{Addr, Trace};
use vermem_util::prop::PropConfig;
use vermem_util::rng::StdRng;
use vermem_util::{prop_assert, prop_check};

/// All 8 subsets of {windows, symmetry, nogoods}.
fn all_combos() -> [PruneConfig; 8] {
    std::array::from_fn(|bits| PruneConfig {
        windows: bits & 1 != 0,
        symmetry: bits & 2 != 0,
        nogoods: bits & 4 != 0,
    })
}

fn cfg_with(prune: PruneConfig) -> SearchConfig {
    SearchConfig {
        prune,
        ..Default::default()
    }
}

/// Check one (trace, addr): every combo agrees with the unpruned baseline
/// on the verdict class, on the violation when incoherent, and explores at
/// most as many states.
fn assert_combo_parity(trace: &Trace, addr: Addr, ctx: &str) {
    let (base_verdict, base_stats) =
        solve_backtracking_with_stats(trace, addr, &cfg_with(PruneConfig::none()));
    for combo in all_combos() {
        let (verdict, stats) = solve_backtracking_with_stats(trace, addr, &cfg_with(combo));
        match (&base_verdict, &verdict) {
            (Verdict::Coherent(_), Verdict::Coherent(_)) => {}
            (Verdict::Incoherent(a), Verdict::Incoherent(b)) => {
                assert_eq!(a, b, "{ctx}: first-violation drift under {combo:?}");
            }
            (a, b) => panic!("{ctx}: verdict class drift under {combo:?}: {a:?} vs {b:?}"),
        }
        // Monotonicity: the pruned visited-state set is a subset of the
        // baseline's, so the counter can only shrink.
        assert!(
            stats.states <= base_stats.states,
            "{ctx}: {combo:?} explored {} states, baseline {}",
            stats.states,
            base_stats.states
        );
    }
}

fn arb_gen_config(rng: &mut StdRng, size: usize) -> GenConfig {
    GenConfig {
        procs: rng.gen_range(2..5usize),
        total_ops: 8 + rng.gen_range(0..(8 + 4 * size as u64)) as usize,
        addrs: rng.gen_range(1..3usize),
        write_fraction: 0.3 + f64::from(rng.gen_range(0..40u32)) / 100.0,
        rmw_fraction: f64::from(rng.gen_range(0..30u32)) / 100.0,
        value_reuse: f64::from(rng.gen_range(0..80u32)) / 100.0,
        seed: rng.gen_range(0..u64::MAX),
    }
}

#[test]
fn prop_all_combos_agree_on_coherent_traces() {
    prop_check!(
        PropConfig::with_cases(48),
        |rng, size| gen_sc_trace(&arb_gen_config(rng, size)).0,
        |trace: &Trace| {
            for addr in trace.addresses() {
                assert_combo_parity(trace, addr, "coherent");
            }
            Ok(())
        }
    );
}

#[test]
fn prop_all_combos_agree_on_fault_injected_traces() {
    use vermem_trace::gen::ViolationKind::*;
    prop_check!(
        PropConfig::with_cases(48),
        |rng, size| {
            let trace = gen_sc_trace(&arb_gen_config(rng, size)).0;
            let kind =
                [CorruptReadValue, StaleRead, LostWrite, ReorderAdjacent][rng.gen_range(0..4usize)];
            let seed = rng.gen_range(0..1000u64);
            (trace, kind, seed)
        },
        |(trace, kind, seed): &(Trace, _, u64)| {
            let Some((mutated, _)) = inject_violation(trace, *kind, *seed) else {
                return Ok(()); // no eligible site — vacuously fine
            };
            for addr in mutated.addresses() {
                assert_combo_parity(&mutated, addr, "injected");
            }
            prop_assert!(true);
            Ok(())
        }
    );
}

/// Hard coherent instances (the NP-complete cell) where the search does
/// real backtracking: parity and monotonicity must survive deep trees too.
#[test]
fn hard_coherent_instances_keep_parity_and_monotonicity() {
    for seed in 0..6u64 {
        let (trace, _) = gen_hard_coherent(4, 7, 2, seed);
        assert_combo_parity(&trace, Addr::ZERO, &format!("hard seed {seed}"));
    }
}

/// The `SearchStats` counters themselves stay self-consistent under
/// pruning: memo discipline (`memo_misses == states` with memoization on)
/// holds for every combo, and prune counters are zero when their technique
/// is off.
#[test]
fn prune_counters_are_gated_by_their_technique() {
    for seed in 0..4u64 {
        let (trace, _) = gen_hard_coherent(4, 7, 2, seed);
        for combo in all_combos() {
            let (_, stats) = solve_backtracking_with_stats(&trace, Addr::ZERO, &cfg_with(combo));
            assert_eq!(
                stats.memo_misses, stats.states,
                "memo discipline broken under {combo:?}"
            );
            if !combo.windows {
                assert_eq!(stats.window_prunes, 0, "{combo:?}");
            }
            if !combo.symmetry {
                assert_eq!(stats.symmetry_prunes, 0, "{combo:?}");
            }
            if !combo.nogoods {
                assert_eq!(stats.nogood_hits, 0, "{combo:?}");
                assert_eq!(stats.nogoods_learned, 0, "{combo:?}");
            }
        }
    }
}
