//! Counting-allocator harness for the dense streaming hot path.
//!
//! The dense-slab rework promises that steady-state ingest performs *no*
//! heap allocation: every table, queue, scratch buffer, and retention
//! vector reaches its working-set high-water mark during warmup and then
//! only reuses memory. This binary installs a counting
//! `#[global_allocator]` and asserts exactly that on a single-threaded
//! (`jobs = 1`) engine — warm up on the front of a long stream, then
//! require the allocation counter to stay put across the middle chunks.
//! (The library crates `forbid(unsafe_code)`; the allocator shim lives
//! here, in an integration-test binary, where the forbid does not apply.)
//!
//! The binary is `harness = false`: libtest's own threads (output
//! capture, timing) allocate and would race the process-global counter,
//! so the whole check runs as a plain single-threaded `main()`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use vermem_coherence::{StreamConfig, StreamVerifier, VmcVerifier};
use vermem_trace::binary::encode_event_stream;
use vermem_trace::{Op, ProcId};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    // A steady-state workload: one write, then a long run of reads of
    // that value alternating between two processes. Every read places
    // immediately (no deferred queues grow), the write-count and
    // placement tables stay at fixed size, and window retirement drains
    // the retention buffer in place — so after warmup the per-event path
    // has nothing left to grow.
    let mut events: Vec<(ProcId, Op)> = vec![(ProcId(0), Op::w(1u64))];
    for i in 0..200_000usize {
        events.push((ProcId((i % 2) as u16), Op::r(1u64)));
    }
    let bytes = encode_event_stream(2, &BTreeMap::new(), &BTreeMap::new(), &events);

    let mut engine = StreamVerifier::new(StreamConfig {
        window: Some(16),
        jobs: 1,
        temporal: false,
        verifier: VmcVerifier::new(),
        recorder: None,
        hot_path: Default::default(),
    });

    const CHUNK: usize = 4096;
    let chunks: Vec<&[u8]> = bytes.chunks(CHUNK).collect();
    let warmup = chunks.len() / 4;
    let measured = chunks.len() * 3 / 4;

    for piece in &chunks[..warmup] {
        engine.ingest(piece).expect("stream decodes");
    }
    let warm_events = engine.events();
    assert!(warm_events > 10_000, "warmup must cover real ingest volume");

    let before = allocs();
    for piece in &chunks[warmup..measured] {
        engine.ingest(piece).expect("stream decodes");
    }
    let delta = allocs() - before;
    let measured_events = engine.events() - warm_events;
    assert!(
        measured_events > 50_000,
        "measured span must be substantial"
    );
    assert_eq!(
        delta, 0,
        "dense steady-state ingest allocated {delta} times over {measured_events} events"
    );

    for piece in &chunks[measured..] {
        engine.ingest(piece).expect("stream decodes");
    }
    engine.end_input().expect("clean end of stream");
    assert!(!engine.needs_replay(), "sealed workload needs no replay");
    let report = engine.finish();
    assert!(report.is_coherent(), "workload is coherent by construction");
    assert_eq!(report.events, events.len() as u64);

    println!("stream_alloc: {measured_events} steady-state events allocated 0 times — ok");
}
