//! VMC with a known read-map (Figure 5.3 row "1 Write/Value"): linear-time
//! verification for simple reads/writes when every data value is written at
//! most once, so each read is bound to its unique writer.
//!
//! Every write forms a *block* together with the reads of its value; reads
//! of the (never-rewritten) initial value form a virtual first block. A
//! coherent schedule exists iff the block precedence graph induced by
//! program order is acyclic, because within a block the write simply comes
//! first and reads never change memory state.

use crate::backtrack::precheck_ops;
use crate::verdict::{Verdict, Violation, ViolationKind};
use std::collections::HashMap;
use vermem_trace::{check_coherent_schedule, Addr, AddrOps, OpRef, Schedule, Trace, Value};

/// True if the read-map fast path applies to the operations at `addr`:
/// simple reads/writes only, every value written at most once, and no write
/// re-installs the initial value (which would make read binding ambiguous).
pub fn applicable(trace: &Trace, addr: Addr) -> bool {
    applicable_ops(&AddrOps::of(trace, addr))
}

/// As [`applicable`], decided in O(values) from the cached structure of a
/// pre-built per-address index entry (no trace scan).
pub fn applicable_ops(ops: &AddrOps) -> bool {
    !ops.has_rmw() && ops.max_writes_per_value() <= 1 && ops.writes_of(ops.initial()) == 0
}

/// Decide coherence at `addr` assuming [`applicable`]. O(n) modulo hashing.
///
/// # Panics
/// Debug-asserts applicability; behaviour is unspecified otherwise.
pub fn solve_readmap(trace: &Trace, addr: Addr) -> Verdict {
    let verdict = solve_readmap_ops(&AddrOps::of(trace, addr));
    if let Verdict::Coherent(witness) = &verdict {
        debug_assert!(
            check_coherent_schedule(trace, addr, witness).is_ok(),
            "read-map solver produced invalid witness"
        );
    }
    verdict
}

/// As [`solve_readmap`], on a pre-built per-address index entry.
pub fn solve_readmap_ops(indexed: &AddrOps) -> Verdict {
    debug_assert!(
        applicable_ops(indexed),
        "read-map fast path preconditions violated"
    );
    let addr = indexed.addr();
    if let Some(v) = precheck_ops(indexed) {
        return Verdict::Incoherent(v);
    }
    let initial = indexed.initial();

    // Flatten the per-address operations (proc-major, program order, the
    // same order the historical trace scan produced); block 0 is the
    // virtual initial block, block (w+1) belongs to the w-th write.
    let ops: Vec<(OpRef, vermem_trace::Op)> = indexed.iter().collect();
    let mut writer_block: HashMap<Value, usize> = HashMap::new();
    let mut write_of_block: Vec<Option<usize>> = vec![None]; // block 0 has no write
    for (i, (_, op)) in ops.iter().enumerate() {
        if let Some(v) = op.written_value() {
            let b = write_of_block.len();
            write_of_block.push(Some(i));
            writer_block.insert(v, b);
        }
    }
    let nblocks = write_of_block.len();

    // Assign each op to a block.
    let block_of = |i: usize| -> usize {
        let op = ops[i].1;
        match op.written_value() {
            Some(v) => writer_block[&v],
            None => {
                let v = op.read_value().expect("simple read");
                if v == initial {
                    0
                } else {
                    writer_block[&v] // exists after precheck + applicability
                }
            }
        }
    };

    // Per-process index ranges into the flat `ops` (the layout is
    // proc-major, so each process owns one contiguous range).
    let mut proc_ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(indexed.per_proc().len());
    let mut start = 0usize;
    for pp in indexed.per_proc() {
        proc_ranges.push(start..start + pp.len());
        start += pp.len();
    }

    // A read program-order-before its own writer is a same-block cycle.
    for range in &proc_ranges {
        let mut writes_seen: HashMap<usize, u32> = HashMap::new(); // block -> write index
        for i in range.clone() {
            if ops[i].1.is_writing() {
                writes_seen.insert(block_of(i), ops[i].0.index);
            }
        }
        for i in range.clone() {
            if !ops[i].1.is_writing() {
                let b = block_of(i);
                if let Some(&widx) = writes_seen.get(&b) {
                    if ops[i].0.index < widx {
                        return Verdict::Incoherent(Violation {
                            addr,
                            kind: ViolationKind::PrecedenceCycle {
                                cycle: vec![
                                    ops[i].0,
                                    OpRef {
                                        proc: ops[i].0.proc,
                                        index: widx,
                                    },
                                ],
                            },
                        });
                    }
                }
            }
        }
    }

    // Block precedence edges from consecutive same-process operations, plus
    // block 0 before everything (initial reads precede the first write).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    let mut indeg = vec![0usize; nblocks];
    let add_edge = |adj: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        adj[a].push(b);
        indeg[b] += 1;
    };
    for b in 1..nblocks {
        add_edge(&mut adj, &mut indeg, 0, b);
    }
    for range in &proc_ranges {
        for i in range.clone().skip(1) {
            let (a, b) = (block_of(i - 1), block_of(i));
            if a != b {
                add_edge(&mut adj, &mut indeg, a, b);
            }
        }
    }

    // Final value: its block must carry no outgoing edges so it can be last.
    let final_block = indexed.final_value().map(|f| {
        if f == initial {
            // Applicability excludes rewrites of d_I, and precheck accepted,
            // so there are no writes at all; block 0 is trivially last.
            0
        } else {
            writer_block[&f]
        }
    });
    if let Some(fb) = final_block {
        if !adj[fb].is_empty() {
            return Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::FinalValueUnwritable {
                    value: indexed.final_value().expect("checked"),
                },
            });
        }
    }

    // Kahn's algorithm; if a final block is required, emit it last.
    let mut queue: Vec<usize> = (0..nblocks)
        .filter(|&b| indeg[b] == 0 && Some(b) != final_block)
        .collect();
    let mut order: Vec<usize> = Vec::with_capacity(nblocks);
    while let Some(b) = queue.pop() {
        order.push(b);
        for &next in &adj[b] {
            indeg[next] -= 1;
            if indeg[next] == 0 && Some(next) != final_block {
                queue.push(next);
            }
        }
    }
    if let Some(fb) = final_block {
        // fb's in-degree must have been fully satisfied.
        if indeg[fb] == 0 {
            order.push(fb);
        }
    }
    if order.len() != nblocks {
        let cycle: Vec<OpRef> = (0..nblocks)
            .filter(|&b| !order.contains(&b))
            .filter_map(|b| write_of_block[b].map(|i| ops[i].0))
            .collect();
        return Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::PrecedenceCycle { cycle },
        });
    }

    // Emit the schedule: per block, the write then its reads in (proc,
    // program-order) order.
    let mut reads_of_block: Vec<Vec<OpRef>> = vec![Vec::new(); nblocks];
    for (i, (r, op)) in ops.iter().enumerate() {
        if !op.is_writing() {
            reads_of_block[block_of(i)].push(*r);
        }
    }
    let mut refs: Vec<OpRef> = Vec::with_capacity(ops.len());
    for &b in &order {
        if let Some(wi) = write_of_block[b] {
            refs.push(ops[wi].0);
        }
        let mut reads = reads_of_block[b].clone();
        reads.sort_unstable();
        refs.extend(reads);
    }
    Verdict::Coherent(Schedule::from_refs(refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{solve_backtracking, SearchConfig};
    use vermem_trace::{Op, TraceBuilder};

    #[test]
    fn applicability() {
        let ok = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64)])
            .build();
        assert!(applicable(&ok, Addr::ZERO));
        let dup = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(1u64)])
            .build();
        assert!(!applicable(&dup, Addr::ZERO));
        let rmw = TraceBuilder::new().proc([Op::rw(0u64, 1u64)]).build();
        assert!(!applicable(&rmw, Addr::ZERO));
        let rewrites_initial = TraceBuilder::new().proc([Op::w(0u64)]).build();
        assert!(!applicable(&rewrites_initial, Addr::ZERO));
    }

    #[test]
    fn coherent_chain() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64), Op::r(1u64)])
            .build();
        // Blocks {W1,R1-reads}, {W2,...}: P0 needs B1<B2, P1 needs B2<B1 →
        // cycle → incoherent. (Matches exact solver.)
        let v = solve_readmap(&t, Addr::ZERO);
        assert!(matches!(
            v.violation().unwrap().kind,
            ViolationKind::PrecedenceCycle { .. }
        ));
        let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
        assert!(exact.is_incoherent());
    }

    #[test]
    fn coherent_case_with_witness() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64)])
            .proc([Op::r(1u64), Op::r(2u64)])
            .build();
        let v = solve_readmap(&t, Addr::ZERO);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn read_before_own_writer_incoherent() {
        let t = TraceBuilder::new().proc([Op::r(1u64), Op::w(1u64)]).build();
        let v = solve_readmap(&t, Addr::ZERO);
        assert!(matches!(
            v.violation().unwrap().kind,
            ViolationKind::PrecedenceCycle { .. }
        ));
    }

    #[test]
    fn initial_reads_precede_writes() {
        let t = TraceBuilder::new()
            .proc([Op::w(5u64)])
            .proc([Op::r(0u64), Op::r(5u64)])
            .build();
        let v = solve_readmap(&t, Addr::ZERO);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn initial_read_after_write_program_order_incoherent() {
        // P0: W(5) then R(0): the initial-read must precede all writes but
        // follows one in program order.
        let t = TraceBuilder::new().proc([Op::w(5u64), Op::r(0u64)]).build();
        assert!(solve_readmap(&t, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn final_value_placement() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(2u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = solve_readmap(&t, Addr::ZERO);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn final_value_with_outgoing_constraint_incoherent() {
        // P0: W(1) then W(2): final must be 1, but W(1) precedes W(2) in
        // program order → W(1)'s block can't be last.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64)])
            .final_value(0u32, 1u64)
            .build();
        assert!(solve_readmap(&t, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn agrees_with_exact_on_random_unique_write_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let procs = rng.gen_range(1..=4);
            let mut next_val = 1u64;
            let mut written: Vec<u64> = Vec::new();
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            let v = next_val;
                            next_val += 1;
                            written.push(v);
                            Op::w(v)
                        } else if !written.is_empty() && rng.gen_bool(0.8) {
                            Op::r(written[rng.gen_range(0..written.len())])
                        } else {
                            Op::r(0u64)
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            if !applicable(&t, Addr::ZERO) {
                continue;
            }
            let fast = solve_readmap(&t, Addr::ZERO);
            let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
            assert_eq!(
                fast.is_coherent(),
                exact.is_coherent(),
                "divergence on seed {seed}: {t:?}"
            );
        }
    }
}
