//! The model-agnostic exact-search kernel: **one** memoized backtracking
//! engine under every operational consistency search.
//!
//! The paper's §6 lifts VMC hardness to the whole consistency family (VSC,
//! VSCC, TSO, ...), and the verifiers for those models are instances of a
//! single parameterized search (cf. Chini & Saivasan's consistency-algorithm
//! framework): explore the reachable states of an operational machine,
//! memoize states already refuted, accept when every operation has
//! committed. This module is that search, extracted from the engineering
//! substrate of [`crate::backtrack`] and exposed behind the
//! [`TransitionSystem`] trait so the VSC interleaving machine and the
//! TSO/PSO store-buffer machines (in `vermem-consistency`) run on the same
//! memo, budget, cancellation, statistics and observability stack as the
//! production VMC engine.
//!
//! ## What the kernel owns vs. what the system owns
//!
//! The **kernel** owns the commit schedule, the visited-state memo, the
//! state budget, the [`CancelToken`] poll, [`SearchStats`] and the
//! batch-flushed observability counters. The **system** owns the machine
//! state (frontiers, store buffers, memory) and defines: which moves are
//! enabled (in preferred exploration order), how to apply/undo one move,
//! which pending reads can be absorbed for free, when a state is accepting,
//! a sound feasibility check, and — critically — the *canonical state key*.
//!
//! ## Key-canonicalization contract
//!
//! [`TransitionSystem::state_key`] must emit an **injective** encoding of
//! the post-absorption search state into `u64` words: two states may
//! produce the same word sequence only if they are the same state
//! (variable-length parts must be length-prefixed). The kernel never
//! hashes a key down to fewer bits than the system emitted — short keys
//! (≤ 2 words) are stored verbatim in a zero-allocation
//! [`FxHashSet`] tier, longer keys are interned exactly once through
//! [`SliceInterner`] and re-probed by dense id — because a colliding
//! "already visited" answer would be an unsound refutation. The legacy
//! representation ([`KernelConfig::legacy_keys`], the ablation baseline)
//! keeps the same exactness but allocates a `Vec<u64>` per probe and pays
//! SipHash, which is precisely the 2003-era `visited: HashSet<(Vec<_>,..)>`
//! cost model this kernel replaces.

use crate::backtrack::SearchStats;
use std::collections::HashSet;
use vermem_trace::OpRef;
use vermem_util::hash::FxHashSet;
use vermem_util::intern::SliceInterner;
use vermem_util::obs;
use vermem_util::pool::CancelToken;

/// Budget and ablation knobs for a kernel search. Flipping any knob
/// changes performance only, never verdicts.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Maximum distinct states to visit before giving up with
    /// [`KernelOutcome::BudgetExhausted`]. `None` = unlimited.
    pub max_states: Option<u64>,
    /// Sound feasibility pruning ([`TransitionSystem::infeasible`]):
    /// refute states from which no completion can exist (counted in
    /// [`SearchStats::window_prunes`]). On by default.
    pub feasibility: bool,
    /// Use the pre-kernel memo representation — a SipHash `HashSet`
    /// keyed by a freshly allocated `Vec<u64>` per probe — instead of the
    /// packed/interned Fx tiers. Ablation knob only: the memoized state
    /// set, the explored state sequence and all [`SearchStats`] are
    /// bit-identical under both representations.
    pub legacy_keys: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            max_states: None,
            feasibility: true,
            legacy_keys: false,
        }
    }
}

impl KernelConfig {
    /// Config with a state budget and all optimizations at their defaults.
    pub fn with_budget(max_states: u64) -> Self {
        KernelConfig {
            max_states: Some(max_states),
            ..Default::default()
        }
    }
}

/// How a kernel search ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelOutcome {
    /// An accepting run exists; the commit order (a model witness
    /// schedule) is attached.
    Accepted(Vec<OpRef>),
    /// The full reachable state space was explored without acceptance:
    /// the trace is *not* reachable under the system's semantics.
    Refuted,
    /// The state budget ran out before an answer was known.
    BudgetExhausted,
    /// The [`CancelToken`] fired before an answer was known.
    Cancelled,
}

/// An operational consistency machine, explored by [`run_search`].
///
/// Implementations own the mutable machine state; the kernel drives it
/// strictly in apply/undo (LIFO) discipline, so implementations may store
/// undo information inside [`TransitionSystem::Move`] captured at
/// enumeration time.
pub trait TransitionSystem {
    /// One branching move, cheap to copy. Enumeration-time state (e.g. the
    /// memory value a drain will overwrite) may be embedded for undo.
    type Move: Copy;

    /// Number of commits a complete run performs (= total operations).
    fn total_commits(&self) -> usize;

    /// Called only when every operation has committed: is the machine
    /// quiescent and are the final-value constraints satisfied?
    fn accepting(&self) -> bool;

    /// Greedily commit every *zero-effect* enabled move — pending reads
    /// that match current memory and are not blocked — pushing committed
    /// refs onto `commits`. Must be verdict-preserving (the exchange
    /// argument: a zero-effect commit changes no machine state and only
    /// enables more moves) and must push only moves undoable by
    /// [`TransitionSystem::retract_read`].
    fn absorb(&mut self, commits: &mut Vec<OpRef>);

    /// Undo one absorbed read (the kernel pops them in reverse order).
    fn retract_read(&mut self, r: OpRef);

    /// Sound refutation: `true` only if **no** completion can exist from
    /// this state (e.g. a frontier read demands a value with zero
    /// remaining supply). Consulted when [`KernelConfig::feasibility`] is
    /// on; counted in [`SearchStats::window_prunes`].
    fn infeasible(&self) -> bool;

    /// Emit the canonical state key (see the module docs for the
    /// injectivity contract). `key` arrives empty.
    fn state_key(&self, key: &mut Vec<u64>);

    /// Should the kernel memoize visited states? Default `true`.
    ///
    /// Systems whose state is uniquely determined by the path of moves
    /// that reached it (tree-shaped state graphs — e.g. monotone
    /// witness-construction searches where every decision is recorded
    /// forever) may return `false`: no state is ever reachable twice, so
    /// the memo could never hit and probing it is pure overhead. With
    /// memoization off the kernel skips key construction entirely;
    /// [`SearchStats::memo_hits`] and [`SearchStats::memo_misses`] stay 0
    /// while [`SearchStats::states`] still counts every search node (so
    /// budgets keep their meaning).
    fn memoize(&self) -> bool {
        true
    }

    /// Enumerate the enabled state-changing moves, in preferred
    /// exploration order (first pushed is explored first).
    fn enabled_moves(&self, moves: &mut Vec<Self::Move>);

    /// Apply `mv`; returns the operation it commits, if any (store-buffer
    /// writes commit at drain, not at issue).
    fn apply(&mut self, mv: Self::Move) -> Option<OpRef>;

    /// Reverse [`TransitionSystem::apply`]`(mv)`. Called with the machine
    /// exactly in the post-apply state.
    fn undo(&mut self, mv: Self::Move);
}

/// Pack a per-process frontier into key words: one byte per process in a
/// single word when the instance shape allows (`packed`, decided once per
/// instance via [`frontier_packs`]), one word per process otherwise.
pub fn encode_frontier(frontier: &[u32], packed: bool, key: &mut Vec<u64>) {
    if packed {
        let mut word = 0u64;
        for (p, &f) in frontier.iter().enumerate() {
            debug_assert!(f <= u8::MAX as u32 && p < 8, "packed key precondition");
            word |= u64::from(f) << (8 * p);
        }
        key.push(word);
    } else {
        key.extend(frontier.iter().map(|&f| u64::from(f)));
    }
}

/// True when every frontier of this instance packs into one `u64`:
/// at most 8 processes with at most 255 operations each.
pub fn frontier_packs(history_lens: impl ExactSizeIterator<Item = usize>) -> bool {
    history_lens.len() <= 8 && {
        let mut ok = true;
        for len in history_lens {
            ok &= len <= u8::MAX as usize;
        }
        ok
    }
}

/// The visited-state set. Both representations memoize exactly the same
/// key set; they differ only in encoding and hasher.
enum Memo {
    /// Two Fx-hashed tiers: keys of ≤ 2 words live length-tagged in a flat
    /// set (zero allocations per probe); longer keys are interned once and
    /// never re-allocated. Keys of different length are never equal, so
    /// routing by length preserves exactness.
    Fast {
        small: FxHashSet<(u64, u64, u8)>,
        long: SliceInterner<u64>,
    },
    /// The pre-kernel cost model: SipHash, one `Vec` allocation per probe.
    Legacy {
        seen: HashSet<Vec<u64>>,
        probes: u64,
    },
}

impl Memo {
    fn new(cfg: &KernelConfig) -> Memo {
        if cfg.legacy_keys {
            Memo::Legacy {
                seen: HashSet::new(),
                probes: 0,
            }
        } else {
            Memo::Fast {
                small: FxHashSet::default(),
                long: SliceInterner::new(),
            }
        }
    }

    /// Record `key`; true iff it was not already present.
    fn insert(&mut self, key: &[u64]) -> bool {
        match self {
            Memo::Fast { small, long } => match *key {
                [] => small.insert((0, 0, 0)),
                [a] => small.insert((a, 0, 1)),
                [a, b] => small.insert((a, b, 2)),
                _ => long.intern(key).1,
            },
            Memo::Legacy { seen, probes } => {
                *probes += 1;
                seen.insert(key.to_vec())
            }
        }
    }

    /// Heap allocations attributable to key storage/probing: the receipt
    /// metric behind the kernel-vs-legacy claim. Legacy allocates on every
    /// probe; the fast tiers allocate once per distinct *long* key and
    /// never for short keys.
    fn key_allocs(&self) -> u64 {
        match self {
            Memo::Fast { long, .. } => long.allocations(),
            Memo::Legacy { probes, .. } => *probes,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Memo::Fast { .. } => "fast",
            Memo::Legacy { .. } => "legacy",
        }
    }
}

/// Run the memoized backtracking search over `sys`.
///
/// The returned [`SearchStats`] obey the same contract as the VMC
/// engine's: always-on, deterministic, identical whether observability is
/// enabled or not, with `memo_misses == states` for memoizing systems
/// (memoization is integral to the kernel; systems that opt out via
/// [`TransitionSystem::memoize`] report `memo_hits == memo_misses == 0`). One observability batch-flush happens per call — never
/// per state — under the same `search.*` counter names the VMC engine
/// uses, plus `kernel.memo.*` for the key-tier accounting.
pub fn run_search<S: TransitionSystem>(
    sys: &mut S,
    cfg: &KernelConfig,
    cancel: Option<&CancelToken>,
) -> (KernelOutcome, SearchStats) {
    let total = sys.total_commits();
    let memoize = sys.memoize();
    let mut kernel = Kernel {
        sys,
        memo: Memo::new(cfg),
        memoize,
        commits: Vec::with_capacity(total),
        total,
        max_states: cfg.max_states,
        feasibility: cfg.feasibility,
        cancel,
        stats: SearchStats::default(),
        budget_hit: false,
        cancelled: false,
        key_scratch: Vec::new(),
        depth_hist: if obs::enabled() {
            Some(obs::Histogram::new())
        } else {
            None
        },
    };
    let found = kernel.dfs();
    let Kernel {
        memo,
        commits,
        stats,
        budget_hit,
        cancelled,
        depth_hist,
        ..
    } = kernel;

    if obs::enabled() {
        obs::counter_add("search.states", stats.states);
        obs::counter_add("search.branches", stats.branches);
        obs::counter_add("search.memo.hits", stats.memo_hits);
        obs::counter_add("search.memo.misses", stats.memo_misses);
        obs::counter_add("search.window.prunes", stats.window_prunes);
        obs::counter_add("kernel.memo.key_allocs", memo.key_allocs());
        obs::counter_add(&format!("kernel.memo.keys.{}", memo.kind()), 1);
        if let Some(h) = &depth_hist {
            obs::merge_histogram("search.depth", h);
        }
    }

    let outcome = if found {
        debug_assert_eq!(commits.len(), total, "accepting run must be complete");
        KernelOutcome::Accepted(commits)
    } else if cancelled {
        KernelOutcome::Cancelled
    } else if budget_hit {
        KernelOutcome::BudgetExhausted
    } else {
        KernelOutcome::Refuted
    };
    (outcome, stats)
}

/// Poll the cancel token once per this many states.
const CANCEL_POLL_MASK: u64 = 0x3FF;

struct Kernel<'a, S: TransitionSystem> {
    sys: &'a mut S,
    memo: Memo,
    /// Cached [`TransitionSystem::memoize`] answer for this run.
    memoize: bool,
    commits: Vec<OpRef>,
    total: usize,
    max_states: Option<u64>,
    feasibility: bool,
    cancel: Option<&'a CancelToken>,
    stats: SearchStats,
    budget_hit: bool,
    cancelled: bool,
    /// Key-construction scratch: probing allocates nothing beyond the
    /// memo's own storage.
    key_scratch: Vec<u64>,
    /// `Some` only while observability is enabled: per-state commit
    /// depths, batch-merged into the registry at solve end.
    depth_hist: Option<obs::Histogram>,
}

impl<S: TransitionSystem> Kernel<'_, S> {
    /// Returns true if an accepting run was found (left in `self.commits`).
    fn dfs(&mut self) -> bool {
        // Greedy absorption of zero-effect moves.
        let absorbed_base = self.commits.len();
        self.sys.absorb(&mut self.commits);

        macro_rules! fail {
            () => {{
                while self.commits.len() > absorbed_base {
                    let r = self.commits.pop().expect("non-empty");
                    self.sys.retract_read(r);
                }
                return false;
            }};
        }

        // Completion check.
        if self.commits.len() == self.total {
            if self.sys.accepting() {
                return true;
            }
            fail!();
        }

        // Memoization: one exact probe per state (skipped entirely for
        // tree-shaped systems that opted out — their memo never hits).
        if self.memoize {
            let mut key = std::mem::take(&mut self.key_scratch);
            key.clear();
            self.sys.state_key(&mut key);
            let fresh = self.memo.insert(&key);
            self.key_scratch = key;
            if !fresh {
                self.stats.memo_hits += 1;
                fail!();
            }
            self.stats.memo_misses += 1;
        }
        self.stats.states += 1;
        if let Some(h) = &mut self.depth_hist {
            h.record(self.commits.len() as u64);
        }

        // Budget and cooperative cancellation.
        if let Some(max) = self.max_states {
            if self.stats.states > max {
                self.budget_hit = true;
                fail!();
            }
        }
        if let Some(c) = self.cancel {
            if self.stats.states & CANCEL_POLL_MASK == 0 && c.is_cancelled() {
                self.cancelled = true;
                fail!();
            }
        }

        // Sound feasibility refutation (the per-model frontier bound).
        if self.feasibility && self.sys.infeasible() {
            self.stats.window_prunes += 1;
            fail!();
        }

        let mut moves = Vec::new();
        self.sys.enabled_moves(&mut moves);
        for mv in moves {
            self.stats.branches += 1;
            let committed = self.sys.apply(mv);
            if let Some(r) = committed {
                self.commits.push(r);
            }
            if self.dfs() {
                return true;
            }
            if committed.is_some() {
                self.commits.pop();
            }
            self.sys.undo(mv);
        }
        fail!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy system: `n` independent counters, each stepped to 2, with an
    /// optional "forbidden" full state making the instance refutable.
    /// Commit refs are (proc, step).
    struct Counters {
        vals: Vec<u32>,
        limit: u32,
        accept: bool,
    }

    impl TransitionSystem for Counters {
        type Move = usize;

        fn total_commits(&self) -> usize {
            self.vals.len() * self.limit as usize
        }
        fn accepting(&self) -> bool {
            self.accept
        }
        fn absorb(&mut self, _commits: &mut Vec<OpRef>) {}
        fn retract_read(&mut self, _r: OpRef) {
            unreachable!("no absorption in the toy system")
        }
        fn infeasible(&self) -> bool {
            false
        }
        fn state_key(&self, key: &mut Vec<u64>) {
            key.extend(self.vals.iter().map(|&v| u64::from(v)));
        }
        fn enabled_moves(&self, moves: &mut Vec<usize>) {
            for (p, &v) in self.vals.iter().enumerate() {
                if v < self.limit {
                    moves.push(p);
                }
            }
        }
        fn apply(&mut self, p: usize) -> Option<OpRef> {
            let step = self.vals[p];
            self.vals[p] += 1;
            Some(OpRef::new(p as u16, step))
        }
        fn undo(&mut self, p: usize) {
            self.vals[p] -= 1;
        }
    }

    #[test]
    fn accepting_run_has_full_commit_order() {
        let mut sys = Counters {
            vals: vec![0; 3],
            limit: 2,
            accept: true,
        };
        let (outcome, stats) = run_search(&mut sys, &KernelConfig::default(), None);
        match outcome {
            KernelOutcome::Accepted(commits) => assert_eq!(commits.len(), 6),
            other => panic!("expected accepted, got {other:?}"),
        }
        assert!(stats.states > 0);
        assert_eq!(stats.memo_misses, stats.states);
    }

    #[test]
    fn refutation_memoizes_the_full_lattice() {
        // 3 counters to 2 with acceptance off: the memoized search visits
        // each interior lattice point exactly once — 3^3 = 27 states minus
        // the full corner (completion is checked before memoization).
        let mut sys = Counters {
            vals: vec![0; 3],
            limit: 2,
            accept: false,
        };
        let (outcome, stats) = run_search(&mut sys, &KernelConfig::default(), None);
        assert_eq!(outcome, KernelOutcome::Refuted);
        assert_eq!(stats.states, 26);
        assert!(stats.memo_hits > 0, "lattice re-entries must hit the memo");
    }

    #[test]
    fn legacy_keys_explore_the_identical_state_sequence() {
        for n in 1..=4usize {
            let run = |legacy: bool| {
                let mut sys = Counters {
                    vals: vec![0; n],
                    limit: 2,
                    accept: false,
                };
                run_search(
                    &mut sys,
                    &KernelConfig {
                        legacy_keys: legacy,
                        ..Default::default()
                    },
                    None,
                )
            };
            let (o_fast, s_fast) = run(false);
            let (o_legacy, s_legacy) = run(true);
            assert_eq!(o_fast, o_legacy, "n={n}");
            assert_eq!(s_fast, s_legacy, "n={n}");
        }
    }

    /// [`Counters`] with memoization opted out: the diamond lattice is
    /// re-explored as a tree.
    struct TreeCounters(Counters);

    impl TransitionSystem for TreeCounters {
        type Move = usize;

        fn total_commits(&self) -> usize {
            self.0.total_commits()
        }
        fn accepting(&self) -> bool {
            self.0.accepting()
        }
        fn absorb(&mut self, commits: &mut Vec<OpRef>) {
            self.0.absorb(commits)
        }
        fn retract_read(&mut self, r: OpRef) {
            self.0.retract_read(r)
        }
        fn infeasible(&self) -> bool {
            self.0.infeasible()
        }
        fn state_key(&self, key: &mut Vec<u64>) {
            self.0.state_key(key)
        }
        fn memoize(&self) -> bool {
            false
        }
        fn enabled_moves(&self, moves: &mut Vec<usize>) {
            self.0.enabled_moves(moves)
        }
        fn apply(&mut self, p: usize) -> Option<OpRef> {
            self.0.apply(p)
        }
        fn undo(&mut self, p: usize) {
            self.0.undo(p)
        }
    }

    #[test]
    fn memoize_opt_out_counts_states_without_memo_traffic() {
        let mut sys = TreeCounters(Counters {
            vals: vec![0; 3],
            limit: 2,
            accept: false,
        });
        let (outcome, stats) = run_search(&mut sys, &KernelConfig::default(), None);
        assert_eq!(outcome, KernelOutcome::Refuted);
        assert_eq!(stats.memo_hits, 0, "no probes at all without memoization");
        assert_eq!(stats.memo_misses, 0);
        // The 3-counter lattice re-explored as a tree visits strictly more
        // nodes than the 26 memoized interior points.
        assert!(stats.states > 26, "tree exploration, not lattice");

        // Budgets still bite without a memo.
        let mut sys = TreeCounters(Counters {
            vals: vec![0; 4],
            limit: 2,
            accept: false,
        });
        let (outcome, stats) = run_search(&mut sys, &KernelConfig::with_budget(5), None);
        assert_eq!(outcome, KernelOutcome::BudgetExhausted);
        assert!(stats.states > 5);
    }

    #[test]
    fn budget_reports_exhaustion() {
        let mut sys = Counters {
            vals: vec![0; 4],
            limit: 2,
            accept: false,
        };
        let (outcome, stats) = run_search(&mut sys, &KernelConfig::with_budget(5), None);
        assert_eq!(outcome, KernelOutcome::BudgetExhausted);
        // Past the cap every fresh state is pruned immediately, so the
        // overshoot is bounded by the open siblings (same contract as the
        // VMC engine's budget).
        assert!(stats.states > 5, "cap must have been crossed");
        let full = {
            let mut sys = Counters {
                vals: vec![0; 4],
                limit: 2,
                accept: false,
            };
            run_search(&mut sys, &KernelConfig::default(), None)
                .1
                .states
        };
        assert!(stats.states < full, "budget must truncate the search");
    }

    #[test]
    fn pre_cancelled_token_aborts() {
        // The poll mask means tiny searches may finish before the first
        // poll; use a space big enough to cross it.
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut sys = Counters {
            vals: vec![0; 7],
            limit: 3,
            accept: false,
        };
        let (outcome, _) = run_search(&mut sys, &KernelConfig::default(), Some(&cancel));
        assert_eq!(outcome, KernelOutcome::Cancelled);
    }

    #[test]
    fn key_allocs_small_tier_is_zero() {
        let mut sys = Counters {
            vals: vec![0; 2],
            limit: 2,
            accept: false,
        };
        let cfg = KernelConfig::default();
        let mut memo_probe = Memo::new(&cfg);
        assert!(memo_probe.insert(&[1, 2]));
        assert!(!memo_probe.insert(&[1, 2]));
        assert_eq!(memo_probe.key_allocs(), 0, "2-word keys never allocate");
        assert!(memo_probe.insert(&[1, 2, 3]));
        assert_eq!(memo_probe.key_allocs(), 1);

        let (_, stats) = run_search(&mut sys, &cfg, None);
        assert!(stats.states > 0);
    }

    #[test]
    fn memo_tiers_never_cross_collide() {
        let cfg = KernelConfig::default();
        let mut memo = Memo::new(&cfg);
        // Same leading words, different lengths: all distinct keys.
        assert!(memo.insert(&[]));
        assert!(memo.insert(&[0]));
        assert!(memo.insert(&[0, 0]));
        assert!(memo.insert(&[0, 0, 0]));
        assert!(memo.insert(&[0, 0, 0, 0]));
        assert!(!memo.insert(&[0, 0, 0]));
        assert!(!memo.insert(&[]));
    }

    #[test]
    fn frontier_packing_helpers() {
        let mut key = Vec::new();
        encode_frontier(&[1, 2, 3], true, &mut key);
        assert_eq!(key, vec![1 | (2 << 8) | (3 << 16)]);
        key.clear();
        encode_frontier(&[1, 2, 3], false, &mut key);
        assert_eq!(key, vec![1, 2, 3]);
        assert!(frontier_packs([4usize, 255].into_iter()));
        assert!(!frontier_packs([256usize].into_iter()));
        assert!(!frontier_packs(vec![1usize; 9].into_iter()));
    }
}
