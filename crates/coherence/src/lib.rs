//! # vermem-coherence
//!
//! The core of the `vermem` suite: deciding **Verifying Memory Coherence**
//! (VMC, Definition 4.1 of Cantin, Lipasti & Smith) — given the per-process
//! histories of an execution and an address, does a coherent schedule of
//! the operations at that address exist?
//!
//! VMC is NP-complete (Theorem 4.2), so this crate pairs exact solvers with
//! every polynomial special case from the paper's Figure 5.3:
//!
//! | Figure 5.3 case | module | entry point |
//! |---|---|---|
//! | general (NP-complete) | [`backtrack`] | [`solve_backtracking`] |
//! | general via SAT | [`sat_encode`] | [`solve_sat`] |
//! | constant #processes, O(n^k) | [`backtrack`] (memoized) | [`solve_backtracking`] |
//! | 1 write/value (read-map), O(n) | [`readmap`] | [`readmap::solve_readmap`] |
//! | 1 op/process simple, O(n lg n) | [`one_op`] | [`one_op::solve_one_op`] |
//! | 1 op/process RMW, O(n²)→O(n) | [`rmw`] | [`rmw::solve_rmw_one_op`] |
//! | RMW read-map, O(n lg n)→O(n) | [`rmw`] | [`rmw::solve_rmw_readmap`] |
//! | write order given, O(n²)/O(n) (§5.2) | [`write_order`] | [`solve_with_write_order`] |
//!
//! The [`verify`] entry point classifies the instance (via
//! [`vermem_trace::classify`]) and dispatches to the cheapest applicable
//! algorithm; [`verify_execution`] applies it per address, which by the
//! definition in §3 decides coherence of the whole execution.
//!
//! ## Tiered verification
//!
//! By default the general (NP-complete) case no longer goes straight to
//! the exact search: a polynomial constraint-**closure** frontline
//! ([`closure`], TSOtool-style per Roy et al.) runs first and decides most
//! real addresses outright, escalating only ambiguous residues to the
//! exact tier — with the already-computed constraint table, so nothing is
//! analyzed twice. [`TierConfig`] selects the pipeline
//! (`closure,exact`, the default, vs the `exact` ablation); verdicts and
//! [`SearchStats`] are bit-identical either way (soundness argument in
//! DESIGN.md §4d), and [`par::ExecutionReport::tiers`] reports how many
//! addresses each tier decided.
//!
//! ## Streaming verification (`vermem serve`)
//!
//! Batch verification assumes the whole trace is in hand. The [`stream`]
//! module drops that assumption: [`StreamVerifier`] ingests length-prefixed
//! v3 binary event chunks from N concurrent streams, shards work per
//! address, and holds memory **bounded** by `streams × window_slack`
//! retained windows regardless of stream length — closed windows are
//! verified through the same tiered pipeline and discarded. Detections
//! surface while the stream is still running (the p99 detection latency is
//! a first-class receipt), verdicts are bit-identical to a batch run over
//! the same events, and the ingest hot path runs on allocation-free
//! dense-slab tables (the pre-dense `HashMap` baseline survives behind
//! [`HotPathConfig`] as the `--hot-path legacy` ablation). An optional
//! flight recorder ([`RecorderConfig`]) keeps a per-shard ring of recent
//! windows and emits [`ForensicBundle`] JSONL on each detection.
//!
//! ## The exact-search kernel and declared memory models
//!
//! The exponential tier itself is one reusable engine: [`kernel`] owns the
//! memo table, packed/interned keys, state budget and cancellation, and
//! searches anything implementing [`TransitionSystem`]. The VMC
//! backtracking solver is one client; the `vermem-consistency` crate's
//! *axiom framework* is another — memory models (SC, TSO, PSO, RA,
//! ARM-dob, coherence-only) are declared as `ModelSpec` **data** (relation
//! generators plus acyclicity/irreflexivity axioms) and lowered by an
//! operational compiler onto this kernel, or by a SAT compiler onto CNF as
//! a differential oracle:
//!
//! ```
//! use vermem_consistency::{verify_axiom, AxiomConfig, Engine, ModelId};
//! use vermem_trace::{Op, TraceBuilder};
//!
//! // Dekker's store-buffering idiom: both processes buffer a flag write,
//! // then read the other flag as 0 — forbidden under SC, allowed by TSO.
//! let sb = TraceBuilder::new()
//!     .proc(vec![Op::write(0, 1), Op::read(1, 0)])
//!     .proc(vec![Op::write(1, 1), Op::read(0, 0)])
//!     .build();
//! let sc = verify_axiom(&sb, ModelId::Sc, &AxiomConfig::default());
//! let tso = verify_axiom(&sb, ModelId::Tso, &AxiomConfig::default());
//! assert!(!sc.verdict.is_consistent());
//! assert!(tso.verdict.is_consistent());
//!
//! // The SAT compiler lowers the *same* ModelSpec declaration to CNF.
//! let sat = AxiomConfig { engine: Engine::Sat, ..AxiomConfig::default() };
//! assert!(!verify_axiom(&sb, ModelId::Sc, &sat).verdict.is_consistent());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backtrack;
pub mod closure;
pub mod explain;
pub mod kernel;
pub mod one_op;
pub mod online;
pub mod open_problems;
pub mod par;
pub mod readmap;
pub mod rmw;
pub mod sat_encode;
pub mod stream;
mod verdict;
pub mod windows;
pub mod write_order;

pub use backtrack::{
    solve_backtracking, solve_backtracking_with_stats, PruneConfig, SearchConfig, SearchStats,
};
pub use closure::{ClosureOutcome, Tier, TierStats};
pub use explain::{minimize_incoherent_core, ExplainConfig, MinimalCore};
pub use kernel::{KernelConfig, KernelOutcome, TransitionSystem};
pub use online::{OnlineCause, OnlineVerifier, OnlineViolation};
pub use par::{verify_execution_par, ExecutionReport};
pub use sat_encode::{encode_vmc, solve_sat, solve_sat_certified, VmcEncoding};
pub use stream::{
    verify_stream_bytes, CoreCertificate, ForensicBundle, HotPathConfig, RecorderConfig, RingEntry,
    StreamConfig, StreamMetrics, StreamReport, StreamVerdict, StreamVerifier, FORENSIC_SCHEMA,
};
pub use verdict::{Verdict, Violation, ViolationKind};
pub use write_order::solve_with_write_order;

use std::collections::BTreeMap;
use vermem_trace::{Addr, AddrIndex, AddrOps, Schedule, Trace};

/// Which algorithm the dispatcher selected for an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Linear read-map algorithm (1 write/value, simple ops).
    ReadMap,
    /// Forced-chain algorithm (all RMW, 1 write/value).
    RmwReadMap,
    /// Grouped construction (1 simple op per process).
    OneOpPerProc,
    /// Eulerian path (1 RMW per process).
    RmwOneOp,
    /// Memoized exhaustive search (general case; polynomial for constant k).
    Backtracking,
    /// CNF encoding solved with the CDCL solver.
    SatEncoding,
}

/// Solver strategy for the general (NP-complete) case.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Use polynomial fast paths when applicable, backtracking otherwise.
    #[default]
    Auto,
    /// Always use the memoized backtracking solver.
    Backtracking,
    /// Always use the SAT encoding.
    Sat,
}

/// Which verification tiers run, and in what order (`--tier` on the CLI).
///
/// The default pipeline is `closure,exact`: the polynomial constraint
/// closure ([`closure`]) fronts the exact search, which only sees
/// escalated residues. `exact` is the ablation baseline that sends every
/// general instance straight to the exponential tier. The Figure 5.3
/// polynomial fast paths are part of the dispatcher, not a tier, so they
/// run (and count as frontline-decided) under both configurations;
/// verdicts and [`SearchStats`] are bit-identical under both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierConfig {
    /// Run the closure frontline before the exact search on general
    /// instances. Only effective while `search.prune.windows` is on: the
    /// frontline *is* the window-inference pass, so `--prune=none` (and
    /// any windows-off ablation) disables it to keep ablation semantics.
    pub frontline: bool,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig::tiered()
    }
}

impl TierConfig {
    /// The default `closure,exact` pipeline.
    pub fn tiered() -> Self {
        TierConfig { frontline: true }
    }

    /// The `exact` ablation: every general instance goes straight to the
    /// exact search.
    pub fn exact_only() -> Self {
        TierConfig { frontline: false }
    }

    /// Parse a CLI spec: `closure,exact` (the default) or `exact`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "closure,exact" => Ok(Self::tiered()),
            "exact" => Ok(Self::exact_only()),
            other => Err(format!(
                "unknown tier pipeline '{other}' (expected closure,exact or exact)"
            )),
        }
    }

    /// Canonical spec string (`closure,exact` or `exact`).
    pub fn spec(&self) -> &'static str {
        if self.frontline {
            "closure,exact"
        } else {
            "exact"
        }
    }
}

/// A configured VMC verifier.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmcVerifier {
    /// Strategy for hard instances.
    pub strategy: Strategy,
    /// Budget for the backtracking search.
    pub search: SearchConfig,
    /// Tier pipeline (closure frontline on/off). Defaults to tiered.
    pub tier: TierConfig,
}

impl VmcVerifier {
    /// Verifier with default settings (auto dispatch, unlimited search).
    pub fn new() -> Self {
        Self::default()
    }

    /// Which algorithm [`VmcVerifier::verify`] would run on this instance.
    pub fn select(&self, trace: &Trace, addr: Addr) -> Algorithm {
        self.select_ops(&AddrOps::of(trace, addr))
    }

    /// As [`VmcVerifier::select`], from a pre-built per-address index entry.
    /// All applicability checks read the entry's cached structure, so
    /// selection costs O(procs + values) instead of O(total trace ops).
    pub fn select_ops(&self, ops: &AddrOps) -> Algorithm {
        match self.strategy {
            Strategy::Backtracking => Algorithm::Backtracking,
            Strategy::Sat => Algorithm::SatEncoding,
            Strategy::Auto => {
                if readmap::applicable_ops(ops) {
                    Algorithm::ReadMap
                } else if rmw::readmap_applicable_ops(ops) {
                    Algorithm::RmwReadMap
                } else if one_op::applicable_ops(ops) {
                    Algorithm::OneOpPerProc
                } else if rmw::one_op_applicable_ops(ops) {
                    Algorithm::RmwOneOp
                } else {
                    Algorithm::Backtracking
                }
            }
        }
    }

    /// Decide coherence of the operations of `trace` at `addr`.
    pub fn verify(&self, trace: &Trace, addr: Addr) -> Verdict {
        self.verify_ops(trace, &AddrOps::of(trace, addr))
    }

    /// As [`VmcVerifier::verify`], also returning the backtracking search
    /// statistics (zero for the polynomial fast paths).
    pub fn verify_with_stats(&self, trace: &Trace, addr: Addr) -> (Verdict, SearchStats) {
        self.verify_ops_with_stats(trace, &AddrOps::of(trace, addr))
    }

    /// As [`VmcVerifier::verify`], on a pre-built per-address index entry
    /// (`trace` is only consulted by the SAT strategy and by debug witness
    /// checking — no full-trace rescans on the hot path).
    pub fn verify_ops(&self, trace: &Trace, ops: &AddrOps) -> Verdict {
        self.verify_ops_with_stats(trace, ops).0
    }

    /// As [`VmcVerifier::verify_ops`], also returning the backtracking
    /// search statistics (zero for the polynomial fast paths).
    pub fn verify_ops_with_stats(&self, trace: &Trace, ops: &AddrOps) -> (Verdict, SearchStats) {
        let (verdict, stats, _) = self.verify_ops_tiered(trace, ops);
        (verdict, stats)
    }

    /// The tiered entry point: as [`VmcVerifier::verify_ops_with_stats`],
    /// also reporting which [`Tier`] decided the address.
    ///
    /// On general instances with the frontline enabled (the default), the
    /// polynomial [`closure`] runs first; only an ambiguous residue is
    /// escalated to the exact search — together with the already-computed
    /// constraint table, so the fixpoint is never analyzed twice. The
    /// verdict and stats are bit-identical to the exact-only pipeline on
    /// every input (DESIGN.md §4d), and a budget [`Verdict::Unknown`] from
    /// the exact tier always passes through unmasked.
    ///
    /// ```
    /// use vermem_coherence::{Tier, TierConfig, VmcVerifier};
    /// use vermem_trace::{Addr, AddrOps, Op, TraceBuilder};
    /// let trace = TraceBuilder::new()
    ///     .proc([Op::w(1u64), Op::r(1u64), Op::r(2u64)])
    ///     .proc([Op::w(2u64), Op::w(1u64)])
    ///     .build();
    /// let ops = AddrOps::of(&trace, Addr::ZERO);
    /// let tiered = VmcVerifier::new(); // closure,exact by default
    /// let (verdict, stats, tier) = tiered.verify_ops_tiered(&trace, &ops);
    /// let exact = VmcVerifier { tier: TierConfig::exact_only(), ..VmcVerifier::new() };
    /// let (v2, s2, t2) = exact.verify_ops_tiered(&trace, &ops);
    /// assert_eq!((verdict, stats), (v2, s2)); // bit-identical verdicts
    /// assert_eq!(t2, Tier::Exact); // but the ablation skipped the frontline
    /// ```
    pub fn verify_ops_tiered(&self, trace: &Trace, ops: &AddrOps) -> (Verdict, SearchStats, Tier) {
        self.verify_ops_tiered_inner(Some(trace), ops)
    }

    /// As [`VmcVerifier::verify_ops_tiered`], without a backing [`Trace`].
    ///
    /// Every algorithm except the SAT encoding works entirely from the
    /// [`AddrOps`] entry, so a caller that only has per-address operation
    /// lists — the streaming engine re-materialising a pinned address —
    /// gets the same verdict, [`SearchStats`], and [`Tier`] the batch path
    /// produces for an equal entry (bit-identical by construction: it *is*
    /// the same dispatch). The witness debug check (which needs the trace)
    /// is skipped.
    ///
    /// # Panics
    ///
    /// If the verifier is configured with [`Strategy::Sat`], which encodes
    /// from the full trace; detached callers must reject that strategy up
    /// front.
    pub fn verify_ops_detached(&self, ops: &AddrOps) -> (Verdict, SearchStats, Tier) {
        assert!(
            self.strategy != Strategy::Sat,
            "Strategy::Sat needs a backing trace; detached verification does not support it"
        );
        self.verify_ops_tiered_inner(None, ops)
    }

    fn verify_ops_tiered_inner(
        &self,
        trace: Option<&Trace>,
        ops: &AddrOps,
    ) -> (Verdict, SearchStats, Tier) {
        use vermem_util::obs;
        let record = obs::enabled();
        let t0 = if record { obs::now_us() } else { 0 };
        let out = match self.select_ops(ops) {
            Algorithm::ReadMap => (
                readmap::solve_readmap_ops(ops),
                SearchStats::default(),
                Tier::Frontline,
            ),
            Algorithm::RmwReadMap => (
                rmw::solve_rmw_readmap_ops(ops),
                SearchStats::default(),
                Tier::Frontline,
            ),
            Algorithm::OneOpPerProc => (
                one_op::solve_one_op_ops(ops),
                SearchStats::default(),
                Tier::Frontline,
            ),
            Algorithm::RmwOneOp => (
                rmw::solve_rmw_one_op_ops(ops),
                SearchStats::default(),
                Tier::Frontline,
            ),
            Algorithm::Backtracking => {
                // The frontline *is* the precheck + window-inference pass;
                // with `prune.windows` off the exact search would not run
                // it either, so eligibility follows the prune knob.
                if self.tier.frontline && self.search.prune.windows {
                    match closure::analyze_ops(ops) {
                        (ClosureOutcome::Coherent(s), stats) => {
                            (Verdict::Coherent(s), stats, Tier::Frontline)
                        }
                        (ClosureOutcome::Violation(v), stats) => {
                            (Verdict::Incoherent(v), stats, Tier::Frontline)
                        }
                        (ClosureOutcome::Escalate(table), _) => {
                            let (v, s) = backtrack::solve_escalated_ops_with_stats(
                                ops,
                                &self.search,
                                Some(table),
                            );
                            (v, s, Tier::Exact)
                        }
                    }
                } else {
                    let (v, s) = backtrack::solve_backtracking_ops_with_stats(ops, &self.search);
                    (v, s, Tier::Exact)
                }
            }
            Algorithm::SatEncoding => (
                solve_sat(
                    trace.expect("Strategy::Sat rejected by detached entry point"),
                    ops.addr(),
                ),
                SearchStats::default(),
                Tier::Exact,
            ),
        };
        if record {
            // Per-tier accounting: decided counts plus a latency histogram
            // per deciding tier (escalated addresses land in the exact
            // histogram with their full frontline + search duration).
            let dur = obs::now_us().saturating_sub(t0);
            match out.2 {
                Tier::Frontline => {
                    obs::counter_add("tier.frontline.decided", 1);
                    obs::histogram_record("tier.frontline.us", dur);
                }
                Tier::Exact => {
                    obs::counter_add("tier.escalated", 1);
                    obs::histogram_record("tier.exact.us", dur);
                }
            }
        }
        if let (Verdict::Coherent(witness), Some(trace)) = (&out.0, trace) {
            debug_assert!(
                vermem_trace::check_coherent_schedule(trace, ops.addr(), witness).is_ok(),
                "solver produced invalid witness"
            );
        }
        out
    }
}

/// Decide coherence at `addr` with default settings.
///
/// ```
/// use vermem_trace::{Addr, Op, TraceBuilder};
/// // P0 wrote 1 then observed 2; P1 wrote 2: coherent (P1's write lands
/// // between P0's two operations).
/// let trace = TraceBuilder::new()
///     .proc([Op::w(1u64), Op::r(2u64)])
///     .proc([Op::w(2u64)])
///     .build();
/// assert!(vermem_coherence::verify(&trace, Addr::ZERO).is_coherent());
///
/// // A value regression is impossible in any interleaving.
/// let corr = TraceBuilder::new()
///     .proc([Op::w(1u64), Op::w(2u64)])
///     .proc([Op::r(2u64), Op::r(1u64)])
///     .build();
/// assert!(vermem_coherence::verify(&corr, Addr::ZERO).is_incoherent());
/// ```
pub fn verify(trace: &Trace, addr: Addr) -> Verdict {
    VmcVerifier::new().verify(trace, addr)
}

/// Outcome of verifying a whole execution: per-address witness schedules,
/// or the first violation found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutionVerdict {
    /// Every address has a coherent schedule (the execution is coherent, §3).
    Coherent(BTreeMap<Addr, Schedule>),
    /// Some address has no coherent schedule.
    Incoherent(Violation),
    /// A budget ran out before the answer was known at some address.
    Unknown {
        /// The address whose verification was inconclusive.
        addr: Addr,
    },
}

impl ExecutionVerdict {
    /// True if the execution is coherent.
    pub fn is_coherent(&self) -> bool {
        matches!(self, ExecutionVerdict::Coherent(_))
    }
}

/// Verify coherence of every address of an execution (the paper's §3
/// definition: a coherent schedule must exist per address).
///
/// ```
/// use vermem_trace::{Op, TraceBuilder};
/// let trace = TraceBuilder::new()
///     .proc([Op::write(0u32, 1u64), Op::write(1u32, 2u64)])
///     .proc([Op::read(0u32, 1u64), Op::read(1u32, 2u64)])
///     .build();
/// assert!(vermem_coherence::verify_execution(&trace).is_coherent());
/// ```
pub fn verify_execution(trace: &Trace) -> ExecutionVerdict {
    verify_execution_with(trace, &VmcVerifier::new())
}

/// As [`verify_execution`], with explicit verifier settings.
///
/// Builds the [`AddrIndex`] once (a single O(ops) pass) and hands each
/// solver its pre-indexed entry, so whole-execution setup no longer costs
/// O(addresses × ops). Address order matches [`Trace::addresses`], so the
/// first reported violation is unchanged from the historical per-address
/// loop.
pub fn verify_execution_with(trace: &Trace, verifier: &VmcVerifier) -> ExecutionVerdict {
    let index = AddrIndex::build(trace);
    let mut witnesses = BTreeMap::new();
    for ops in index.iter() {
        match verifier.verify_ops(trace, ops) {
            Verdict::Coherent(s) => {
                witnesses.insert(ops.addr(), s);
            }
            Verdict::Incoherent(v) => return ExecutionVerdict::Incoherent(v),
            Verdict::Unknown => return ExecutionVerdict::Unknown { addr: ops.addr() },
        }
    }
    ExecutionVerdict::Coherent(witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{check_coherent_schedule, Op, TraceBuilder};

    #[test]
    fn dispatcher_selects_fast_paths() {
        let v = VmcVerifier::new();
        let readmap = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64)])
            .build();
        assert_eq!(v.select(&readmap, Addr::ZERO), Algorithm::ReadMap);

        let rmw_chain = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64), Op::rw(1u64, 2u64)])
            .build();
        assert_eq!(v.select(&rmw_chain, Addr::ZERO), Algorithm::RmwReadMap);

        let one_op = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64)])
            .build();
        assert_eq!(v.select(&one_op, Addr::ZERO), Algorithm::OneOpPerProc);

        let euler = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(1u64, 0u64)])
            .build();
        assert_eq!(v.select(&euler, Addr::ZERO), Algorithm::RmwOneOp);

        let hard = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64), Op::w(2u64)])
            .proc([Op::w(1u64), Op::r(2u64), Op::w(2u64)])
            .build();
        assert_eq!(v.select(&hard, Addr::ZERO), Algorithm::Backtracking);
    }

    #[test]
    fn strategies_force_algorithm() {
        let t = TraceBuilder::new().proc([Op::w(1u64)]).build();
        let bt = VmcVerifier {
            strategy: Strategy::Backtracking,
            ..Default::default()
        };
        assert_eq!(bt.select(&t, Addr::ZERO), Algorithm::Backtracking);
        let sat = VmcVerifier {
            strategy: Strategy::Sat,
            ..Default::default()
        };
        assert_eq!(sat.select(&t, Addr::ZERO), Algorithm::SatEncoding);
    }

    #[test]
    fn verify_execution_multi_address() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64), Op::write(1u32, 2u64)])
            .proc([Op::read(0u32, 1u64), Op::read(1u32, 2u64)])
            .build();
        match verify_execution(&t) {
            ExecutionVerdict::Coherent(w) => {
                assert_eq!(w.len(), 2);
                for (&addr, s) in &w {
                    check_coherent_schedule(&t, addr, s).unwrap();
                }
            }
            other => panic!("expected coherent, got {other:?}"),
        }
    }

    #[test]
    fn verify_execution_detects_per_address_violation() {
        let t = TraceBuilder::new()
            .proc([Op::write(0u32, 1u64)])
            .proc([Op::read(1u32, 9u64)]) // address 1 never written, 9 != d_I
            .build();
        match verify_execution(&t) {
            ExecutionVerdict::Incoherent(v) => assert_eq!(v.addr, Addr(1)),
            other => panic!("expected incoherent, got {other:?}"),
        }
    }

    #[test]
    fn all_strategies_agree_on_random_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(9000 + seed);
            let procs = rng.gen_range(1..=3);
            let mut b = TraceBuilder::new();
            for _ in 0..procs {
                let len = rng.gen_range(0..=4);
                let ops: Vec<Op> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..3u64);
                        match rng.gen_range(0..3) {
                            0 => Op::r(v),
                            1 => Op::w(v),
                            _ => Op::rw(v, rng.gen_range(0..3u64)),
                        }
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t = b.build();
            let auto = verify(&t, Addr::ZERO).is_coherent();
            let bt = VmcVerifier {
                strategy: Strategy::Backtracking,
                ..Default::default()
            }
            .verify(&t, Addr::ZERO)
            .is_coherent();
            let sat = VmcVerifier {
                strategy: Strategy::Sat,
                ..Default::default()
            }
            .verify(&t, Addr::ZERO)
            .is_coherent();
            assert_eq!(auto, bt, "auto vs backtracking, seed {seed}: {t:?}");
            assert_eq!(auto, sat, "auto vs sat, seed {seed}: {t:?}");
        }
    }
}
