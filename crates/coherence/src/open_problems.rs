//! The paper's open problems (§7), as executable objects of study.
//!
//! Two cells of Figure 5.3 are left open: VMC with **two simple operations
//! per process**, and all-RMW VMC with **values written at most twice**.
//! Neither a polynomial algorithm nor an NP-completeness proof is known.
//! This module provides instance generators for exactly those cells (shape
//! enforced by the classifier) and a probe that measures how hard the
//! exact solver finds random instances — the kind of empirical
//! reconnaissance one does before attacking an open problem. A consistent
//! absence of blow-up here is *evidence* (not proof) in the tractable
//! direction.

use crate::backtrack::{solve_backtracking_with_stats, SearchConfig};
use vermem_trace::classify::{InstanceProfile, KnownComplexity};
use vermem_trace::{Addr, Op, ProcessHistory, Trace};
use vermem_util::rng::{SliceRandom, StdRng};

/// Which open cell of Figure 5.3 to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenCell {
    /// Two simple reads/writes per process (complexity open).
    TwoSimpleOpsPerProc,
    /// All RMWs, every value written at most twice (complexity open).
    RmwTwoWritesPerValue,
}

/// Generate a random instance inside the requested open cell. Instances
/// mix coherent and incoherent cases (they are not built from a witness).
pub fn gen_open_instance(cell: OpenCell, procs: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    match cell {
        OpenCell::TwoSimpleOpsPerProc => {
            // Two passes: lay out writes first (value 1 forced twice so the
            // instance lands in the 2-writes/value column, remaining values
            // used at most twice), then fill reads from values that are
            // actually written (15% initial-value reads), so instances are
            // not trivially incoherent via never-written reads.
            let mut write_budget: Vec<u64> = vec![1, 1];
            for v in 2..=(procs as u64) {
                write_budget.push(v);
                write_budget.push(v);
            }
            write_budget.shuffle(&mut rng);
            let mut slots: Vec<Option<u64>> = Vec::with_capacity(procs * 2);
            for _ in 0..procs * 2 {
                if rng.gen_bool(0.5) {
                    slots.push(write_budget.pop());
                } else {
                    slots.push(None);
                }
            }
            let written: Vec<u64> = slots.iter().flatten().copied().collect();
            let mut histories = Vec::with_capacity(procs);
            for p in 0..procs {
                let ops: Vec<Op> = (0..2)
                    .map(|k| match slots[2 * p + k] {
                        Some(v) => Op::w(v),
                        None => {
                            let v = if written.is_empty() || rng.gen_bool(0.15) {
                                0
                            } else {
                                written[rng.gen_range(0..written.len())]
                            };
                            Op::r(v)
                        }
                    })
                    .collect();
                histories.push(ProcessHistory::from_ops(ops));
            }
            // Guarantee the 2-writes/value column even if the forced pair
            // stayed in the budget.
            if !histories
                .iter()
                .flat_map(|h| h.iter())
                .filter_map(|o| o.written_value())
                .fold(std::collections::HashMap::new(), |mut m, v| {
                    *m.entry(v).or_insert(0) += 1;
                    m
                })
                .values()
                .any(|&c| c >= 2)
            {
                // Use a fresh value so no existing count can exceed two.
                let fresh = procs as u64 + 1;
                histories[0] = ProcessHistory::from_ops([Op::w(fresh), Op::w(fresh)]);
            }
            Trace::from_histories(histories)
        }
        OpenCell::RmwTwoWritesPerValue => {
            // Build a serial RMW chain (coherent by construction) where
            // every value is written at most twice, split round-robin over
            // the processes; then, half the time, perturb it by swapping
            // two operations across processes so incoherent instances also
            // occur.
            let values = procs.max(2) as u64;
            let total_ops = 2 * values as usize;
            let mut count = vec![0u8; values as usize + 1];
            let mut current = 0u64;
            let mut chain: Vec<Op> = Vec::with_capacity(total_ops);
            for _ in 0..total_ops {
                let candidates: Vec<u64> =
                    (1..=values).filter(|&v| count[v as usize] < 2).collect();
                let Some(&v) = candidates.choose(&mut rng) else {
                    break;
                };
                count[v as usize] += 1;
                chain.push(Op::rw(current, v));
                current = v;
            }
            let mut histories: Vec<Vec<Op>> = vec![Vec::new(); procs];
            for (i, op) in chain.into_iter().enumerate() {
                histories[i % procs].push(op);
            }
            if rng.gen_bool(0.5) && procs >= 2 {
                // Cross-process swap: may or may not break coherence.
                let a = rng.gen_range(0..procs);
                let b = (a + 1 + rng.gen_range(0..procs - 1)) % procs;
                if !histories[a].is_empty() && !histories[b].is_empty() {
                    let i = rng.gen_range(0..histories[a].len());
                    let j = rng.gen_range(0..histories[b].len());
                    let tmp = histories[a][i];
                    histories[a][i] = histories[b][j];
                    histories[b][j] = tmp;
                }
            }
            Trace::from_histories(histories.into_iter().map(ProcessHistory::from_ops))
        }
    }
}

/// Per-instance state budget for [`probe_open_cell`]; a capped instance
/// counts as neither coherent nor incoherent, and its (≥ cap) state count
/// still feeds the maximum.
pub const PROBE_STATE_CAP: u64 = 1_000_000;

/// Probe an open cell: generate `samples` random instances of the given
/// size, solve exactly (bounded by [`PROBE_STATE_CAP`] states each), and
/// report the worst observed search-state count.
/// Returns `(max_states, coherent_count, incoherent_count)`.
pub fn probe_open_cell(
    cell: OpenCell,
    procs: usize,
    samples: u64,
    seed: u64,
) -> (u64, usize, usize) {
    // Pruning off: the probe's evidence is the difficulty of the *naive*
    // exact search in each open cell (rapid growth hints at hardness); the
    // PR-4 inference layer would mask exactly the signal being probed.
    let cfg = SearchConfig {
        max_states: Some(PROBE_STATE_CAP),
        prune: crate::backtrack::PruneConfig::none(),
        ..Default::default()
    };
    let mut max_states = 0u64;
    let mut coherent = 0;
    let mut incoherent = 0;
    for i in 0..samples {
        let trace = gen_open_instance(cell, procs, seed.wrapping_add(i));
        debug_assert_eq!(
            InstanceProfile::of(&trace, Addr::ZERO).known_complexity(),
            KnownComplexity::Open,
            "generator escaped the open cell"
        );
        let (verdict, stats) = solve_backtracking_with_stats(&trace, Addr::ZERO, &cfg);
        max_states = max_states.max(stats.states);
        match verdict {
            crate::Verdict::Coherent(_) => coherent += 1,
            crate::Verdict::Incoherent(_) => incoherent += 1,
            crate::Verdict::Unknown => {}
        }
    }
    (max_states, coherent, incoherent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_stay_inside_their_cells() {
        for seed in 0..40 {
            let t = gen_open_instance(OpenCell::TwoSimpleOpsPerProc, 5, seed);
            let p = InstanceProfile::of(&t, Addr::ZERO);
            assert!(p.max_ops_per_proc <= 2);
            assert!(p.max_writes_per_value <= 2);
            assert_eq!(
                p.known_complexity(),
                KnownComplexity::Open,
                "seed {seed}: {t:?}"
            );

            let t = gen_open_instance(OpenCell::RmwTwoWritesPerValue, 4, seed);
            let p = InstanceProfile::of(&t, Addr::ZERO);
            assert!(p.max_writes_per_value <= 2, "seed {seed}");
            assert_eq!(
                p.known_complexity(),
                KnownComplexity::Open,
                "seed {seed}: {t:?}"
            );
        }
    }

    #[test]
    fn probe_runs_and_sees_both_outcomes() {
        let (max_states, coherent, incoherent) =
            probe_open_cell(OpenCell::TwoSimpleOpsPerProc, 6, 60, 1);
        assert!(max_states > 0);
        assert!(coherent > 0, "expected some coherent instances");
        assert!(incoherent > 0, "expected some incoherent instances");
    }

    #[test]
    fn rmw_probe_runs() {
        let (max_states, coherent, incoherent) =
            probe_open_cell(OpenCell::RmwTwoWritesPerValue, 4, 40, 2);
        assert!(max_states > 0);
        assert!(coherent + incoherent <= 40); // capped instances count as neither
    }
}
