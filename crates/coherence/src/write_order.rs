//! VMC with the write order supplied (§5.2): polynomial verification for
//! memory systems augmented to report the order in which writes executed.
//!
//! Given the total order of the write operations, the paper's algorithm
//! seeds the schedule with that order and inserts each read into its
//! feasible window behind a write of the matching value — O(n²) overall.
//! When every operation is a read-modify-write the write order is already a
//! total order of all operations, and a single O(n) scan checks that each
//! read component returns the preceding write component.

use crate::backtrack::precheck;
use crate::verdict::{Verdict, Violation, ViolationKind};
use std::collections::HashMap;
use vermem_trace::{check_coherent_schedule, Addr, OpRef, Schedule, Trace, Value};

/// Decide coherence at `addr` given the order in which the write-capable
/// operations (writes and RMWs) executed. Runs in O(n²); O(n) when every
/// operation is an RMW.
///
/// `write_order` must list exactly the write-capable operations of `trace`
/// at `addr`; an order that omits writes, repeats them, or contradicts
/// program order yields [`ViolationKind::InvalidWriteOrder`].
pub fn solve_with_write_order(trace: &Trace, addr: Addr, write_order: &[OpRef]) -> Verdict {
    // Validate coverage: exactly the write-capable ops at this address.
    let mut expected: Vec<OpRef> = trace
        .iter_ops()
        .filter(|(_, op)| op.addr() == addr && op.is_writing())
        .map(|(r, _)| r)
        .collect();
    let mut given: Vec<OpRef> = write_order.to_vec();
    expected.sort_unstable();
    given.sort_unstable();
    if expected != given {
        return Verdict::Incoherent(Violation {
            addr,
            kind: ViolationKind::InvalidWriteOrder {
                detail: format!(
                    "order lists {} operations, trace has {} write-capable operations \
                     at this address (or the sets differ)",
                    write_order.len(),
                    expected.len()
                ),
            },
        });
    }
    // Validate program order within each process.
    let mut last_index: HashMap<u16, u32> = HashMap::new();
    for &r in write_order {
        if let Some(&prev) = last_index.get(&r.proc.0) {
            if r.index <= prev {
                return Verdict::Incoherent(Violation {
                    addr,
                    kind: ViolationKind::InvalidWriteOrder {
                        detail: format!(
                            "{:?} ordered after {:?} against program order",
                            OpRef {
                                proc: r.proc,
                                index: prev
                            },
                            r
                        ),
                    },
                });
            }
        }
        last_index.insert(r.proc.0, r.index);
    }

    if let Some(v) = precheck(trace, addr) {
        return Verdict::Incoherent(v);
    }

    let m = write_order.len();
    let initial = trace.initial(addr);

    // value_at_slot[i]: memory value after the first i writes.
    let mut value_at_slot: Vec<Value> = Vec::with_capacity(m + 1);
    value_at_slot.push(initial);
    for &w in write_order {
        let op = trace.op(w).expect("validated");
        value_at_slot.push(op.written_value().expect("write-capable"));
    }

    // RMW read components must observe the value at their own slot.
    // position_of[write ref] = index in write_order.
    let mut position_of: HashMap<OpRef, usize> = HashMap::with_capacity(m);
    for (j, &w) in write_order.iter().enumerate() {
        position_of.insert(w, j);
    }
    for (j, &w) in write_order.iter().enumerate() {
        let op = trace.op(w).expect("validated");
        if let Some(need) = op.read_value() {
            if value_at_slot[j] != need {
                return Verdict::Incoherent(Violation {
                    addr,
                    kind: ViolationKind::UnplaceableRead {
                        read: w,
                        value: need,
                    },
                });
            }
        }
    }

    // Final value: the last write must install it.
    if let Some(f) = trace.final_value(addr) {
        if value_at_slot[m] != f {
            return Verdict::Incoherent(Violation {
                addr,
                kind: ViolationKind::FinalValueUnwritable { value: f },
            });
        }
    }

    // Place pure reads greedily at the earliest feasible slot. reads at
    // slot i are scheduled after the first i writes (before write i).
    let mut reads_at_slot: Vec<Vec<OpRef>> = vec![Vec::new(); m + 1];
    for (p, history) in trace.histories().iter().enumerate() {
        let p = p as u16;
        // Program-ordered ops of this process at the address.
        let ops: Vec<(OpRef, vermem_trace::Op)> = history
            .iter()
            .enumerate()
            .filter(|(_, op)| op.addr() == addr)
            .map(|(i, op)| (OpRef::new(p, i as u32), op))
            .collect();
        let mut min_slot = 0usize;
        for (k, &(r, op)) in ops.iter().enumerate() {
            if op.is_writing() {
                // Slot just after this write; the write's own position is
                // consistent with earlier placements by construction (min
                // slot never exceeds the next write's position, checked in
                // the read branch below).
                let j = position_of[&r];
                if min_slot > j {
                    return Verdict::Incoherent(Violation {
                        addr,
                        kind: ViolationKind::InvalidWriteOrder {
                            detail: format!(
                                "write {r:?} is ordered before a program-order \
                                 predecessor's required position"
                            ),
                        },
                    });
                }
                min_slot = j + 1;
            } else {
                let need = op.read_value().expect("pure read");
                // Feasible window: [min_slot, max_slot], where max_slot is
                // the position of the next write-capable op of this process.
                let max_slot = ops[k + 1..]
                    .iter()
                    .find(|(_, o)| o.is_writing())
                    .map(|(w, _)| position_of[w])
                    .unwrap_or(m);
                let mut placed = None;
                for (i, &val) in value_at_slot
                    .iter()
                    .enumerate()
                    .take(max_slot + 1)
                    .skip(min_slot)
                {
                    if val == need {
                        placed = Some(i);
                        break;
                    }
                }
                match placed {
                    Some(i) => {
                        reads_at_slot[i].push(r);
                        min_slot = i;
                    }
                    None => {
                        return Verdict::Incoherent(Violation {
                            addr,
                            kind: ViolationKind::UnplaceableRead {
                                read: r,
                                value: need,
                            },
                        });
                    }
                }
            }
        }
    }

    // Assemble the witness schedule.
    let mut refs: Vec<OpRef> = Vec::with_capacity(trace.num_ops());
    for i in 0..=m {
        refs.extend_from_slice(&reads_at_slot[i]);
        if i < m {
            refs.push(write_order[i]);
        }
    }
    let witness = Schedule::from_refs(refs);
    debug_assert!(
        check_coherent_schedule(trace, addr, &witness).is_ok(),
        "write-order solver produced invalid witness"
    );
    Verdict::Coherent(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{solve_backtracking, SearchConfig};
    use vermem_trace::{Op, TraceBuilder};

    fn refs(pairs: &[(u16, u32)]) -> Vec<OpRef> {
        pairs.iter().map(|&(p, i)| OpRef::new(p, i)).collect()
    }

    #[test]
    fn simple_coherent_with_order() {
        // P0: W(1) R(2); P1: W(2). Order W(1) then W(2).
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64)])
            .build();
        let v = solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 0), (1, 0)]));
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn wrong_order_detected() {
        // Same trace, but order W(2) then W(1): R(2) can't be placed (it
        // must follow P0's W(1), after which the value is 1 forever).
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64)])
            .build();
        let v = solve_with_write_order(&t, Addr::ZERO, &refs(&[(1, 0), (0, 0)]));
        assert!(matches!(
            v.violation().unwrap().kind,
            ViolationKind::UnplaceableRead { .. }
        ));
    }

    #[test]
    fn order_violating_program_order_rejected() {
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::w(2u64)]).build();
        let v = solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 1), (0, 0)]));
        assert!(matches!(
            v.violation().unwrap().kind,
            ViolationKind::InvalidWriteOrder { .. }
        ));
    }

    #[test]
    fn incomplete_order_rejected() {
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::w(2u64)]).build();
        let v = solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 0)]));
        assert!(matches!(
            v.violation().unwrap().kind,
            ViolationKind::InvalidWriteOrder { .. }
        ));
    }

    #[test]
    fn all_rmw_chain_accepted_and_broken_chain_rejected() {
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(1u64, 2u64)])
            .build();
        let ok = solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 0), (1, 0)]));
        assert!(ok.is_coherent());
        let bad = solve_with_write_order(&t, Addr::ZERO, &refs(&[(1, 0), (0, 0)]));
        assert!(bad.is_incoherent());
    }

    #[test]
    fn final_value_checked_against_last_write() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(2u64)])
            .final_value(0u32, 2u64)
            .build();
        assert!(solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 0), (1, 0)])).is_coherent());
        assert!(solve_with_write_order(&t, Addr::ZERO, &refs(&[(1, 0), (0, 0)])).is_incoherent());
    }

    #[test]
    fn read_before_any_write_uses_initial() {
        let t = TraceBuilder::new()
            .proc([Op::r(0u64), Op::w(1u64), Op::r(1u64)])
            .build();
        let v = solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 1)]));
        assert!(v.is_coherent());
    }

    #[test]
    fn agrees_with_exact_solver_using_witness_write_order() {
        // For generated coherent traces, extracting the write order from the
        // exact solver's witness must re-verify via the fast path.
        for seed in 0..15 {
            let (t, _) = vermem_trace::gen::gen_hard_coherent(4, 6, 2, seed);
            let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
            let witness = exact.schedule().expect("generated coherent");
            let worder: Vec<OpRef> = witness
                .refs()
                .iter()
                .copied()
                .filter(|&r| t.op(r).unwrap().is_writing())
                .collect();
            let fast = solve_with_write_order(&t, Addr::ZERO, &worder);
            assert!(fast.is_coherent(), "seed {seed}");
        }
    }

    #[test]
    fn greedy_placement_handles_shared_slots() {
        // Two reads of the same process in one slot, program order kept.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64), Op::r(1u64)])
            .build();
        let v = solve_with_write_order(&t, Addr::ZERO, &refs(&[(0, 0)]));
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }
}
