//! Violation explanation: shrink an incoherent execution to a **minimal
//! incoherent core** — a 1-minimal subset of its operations (per-process
//! order preserved) that is still incoherent, so a protocol engineer sees
//! the few operations that actually conflict instead of the whole trace.
//!
//! Uses greedy delta debugging: repeatedly drop any single operation whose
//! removal keeps the projection incoherent, until no single removal does
//! (1-minimality). Each candidate is re-verified with a budgeted exact
//! solver; a budget miss conservatively keeps the operation.

use crate::backtrack::{solve_backtracking, SearchConfig};
use crate::verdict::{Verdict, Violation};
use vermem_trace::{Addr, Op, OpRef, ProcessHistory, Trace};

/// Budget for each verification performed during shrinking.
#[derive(Clone, Copy, Debug)]
pub struct ExplainConfig {
    /// Per-candidate search budget. `None` = unlimited (exact shrinking).
    pub max_states: Option<u64>,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        // Shrinking performs O(n²) verifications; keep each one bounded.
        ExplainConfig {
            max_states: Some(200_000),
        }
    }
}

/// A minimal incoherent core of an execution at one address.
#[derive(Clone, Debug)]
pub struct MinimalCore {
    /// The shrunken trace (operations at `addr` only, per-process order
    /// preserved; processes left empty are retained for stable indexing).
    pub trace: Trace,
    /// For each kept operation: its reference in the *original* trace, in
    /// (process, program-order) order.
    pub kept: Vec<OpRef>,
    /// The violation reported for the core.
    pub violation: Violation,
}

impl MinimalCore {
    /// Number of operations in the core.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// True if the core is empty (cannot happen for a real violation).
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }
}

/// Shrink the operations of `trace` at `addr` to a minimal incoherent
/// core. Returns `None` if the projection verifies coherent (or the budget
/// cannot confirm a violation at all).
pub fn minimize_incoherent_core(
    trace: &Trace,
    addr: Addr,
    cfg: &ExplainConfig,
) -> Option<MinimalCore> {
    let search = SearchConfig {
        max_states: cfg.max_states,
        ..Default::default()
    };

    // Working set: per-process vectors of (original ref, op), projected.
    let mut ops: Vec<Vec<(OpRef, Op)>> = trace
        .histories()
        .iter()
        .enumerate()
        .map(|(p, h)| {
            h.iter()
                .enumerate()
                .filter(|(_, op)| op.addr() == addr)
                .map(|(i, op)| (OpRef::new(p as u16, i as u32), op))
                .collect()
        })
        .collect();

    let build = |ops: &[Vec<(OpRef, Op)>], with_final: bool| -> Trace {
        let mut t = Trace::from_histories(
            ops.iter()
                .map(|h| h.iter().map(|&(_, op)| op).collect::<ProcessHistory>()),
        );
        t.set_initial(addr, trace.initial(addr));
        if with_final {
            if let Some(f) = trace.final_value(addr) {
                t.set_final(addr, f);
            }
        }
        t
    };

    // The input must be (confirmably) incoherent to begin with.
    let mut violation = match solve_backtracking(&build(&ops, true), addr, &search) {
        Verdict::Incoherent(v) => v,
        _ => return None,
    };

    // Shrink the *constraint* first: if the violation survives without the
    // final-value requirement, drop it — otherwise removing writes makes
    // sub-traces trivially "incoherent" (an empty trace cannot reach a
    // non-initial final value) and the core degenerates to nothing. When
    // the constraint is essential, the minimal core may legitimately be
    // very small or even empty: it certifies that the recorded operations
    // cannot account for the observed final memory state (a lost-update
    // signature), not an ordering conflict among specific operations.
    let with_final = match solve_backtracking(&build(&ops, false), addr, &search) {
        Verdict::Incoherent(v) => {
            violation = v;
            false
        }
        _ => true,
    };
    loop {
        let mut shrunk = false;
        'outer: for p in 0..ops.len() {
            for i in 0..ops[p].len() {
                let removed = ops[p].remove(i);
                match solve_backtracking(&build(&ops, with_final), addr, &search) {
                    Verdict::Incoherent(v) => {
                        violation = v;
                        shrunk = true;
                        break 'outer;
                    }
                    _ => {
                        ops[p].insert(i, removed);
                    }
                }
            }
        }
        if !shrunk {
            break;
        }
    }

    let kept: Vec<OpRef> = ops.iter().flatten().map(|&(r, _)| r).collect();
    // The violation was reported against the shrunken trace; remap its
    // operation references back into the original trace so the report
    // points at real operations.
    let remap = |core_ref: OpRef| -> OpRef {
        ops.get(core_ref.proc.0 as usize)
            .and_then(|h| h.get(core_ref.index as usize))
            .map(|&(orig, _)| orig)
            .unwrap_or(core_ref)
    };
    violation.kind = match violation.kind {
        crate::ViolationKind::NoWriterForValue { read, value } => {
            crate::ViolationKind::NoWriterForValue {
                read: remap(read),
                value,
            }
        }
        crate::ViolationKind::UnplaceableRead { read, value } => {
            crate::ViolationKind::UnplaceableRead {
                read: remap(read),
                value,
            }
        }
        crate::ViolationKind::PrecedenceCycle { cycle } => crate::ViolationKind::PrecedenceCycle {
            cycle: cycle.into_iter().map(remap).collect(),
        },
        other => other,
    };
    Some(MinimalCore {
        trace: build(&ops, with_final),
        kept,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{Op, TraceBuilder};

    fn core_of(trace: &Trace) -> MinimalCore {
        minimize_incoherent_core(trace, Addr::ZERO, &ExplainConfig::default())
            .expect("trace must be incoherent")
    }

    #[test]
    fn coherent_trace_yields_none() {
        let t = TraceBuilder::new().proc([Op::w(1u64), Op::r(1u64)]).build();
        assert!(minimize_incoherent_core(&t, Addr::ZERO, &ExplainConfig::default()).is_none());
    }

    #[test]
    fn unwritten_read_shrinks_to_single_op() {
        // Lots of fine ops plus one read of a never-written value.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(1u64), Op::w(2u64), Op::r(2u64)])
            .proc([Op::r(1u64), Op::r(99u64), Op::r(2u64)])
            .build();
        let core = core_of(&t);
        // Minimal cores are not unique (removing a read's writer leaves
        // another single-read core), but any 1-minimal core here is a
        // single unservable read.
        assert_eq!(core.len(), 1);
        let (_, op) = core.trace.iter_ops().next().expect("one op");
        assert!(matches!(op, Op::Read { .. }));
    }

    #[test]
    fn corr_regression_core_is_small_and_one_minimal() {
        // CoRR with padding: P1 sees 2 then 1 — core needs both writes and
        // both reads (4 ops).
        let t = TraceBuilder::new()
            .proc([Op::w(5u64), Op::w(1u64), Op::w(2u64), Op::r(2u64)])
            .proc([Op::r(2u64), Op::r(1u64), Op::r(1u64)])
            .build();
        let core = core_of(&t);
        assert!(
            core.len() <= 4,
            "core has {} ops: {:?}",
            core.len(),
            core.trace
        );
        // 1-minimality: removing any single op makes it coherent (or at
        // least not provably incoherent under the same budget).
        let search = SearchConfig::default();
        for skip in 0..core.len() {
            let mut b = TraceBuilder::new();
            let mut idx = 0;
            for h in core.trace.histories() {
                let ops: Vec<Op> = h
                    .iter()
                    .filter(|_| {
                        let keep = idx != skip;
                        idx += 1;
                        keep
                    })
                    .collect();
                b = b.proc(ops);
            }
            let t2 = b.build();
            assert!(
                solve_backtracking(&t2, Addr::ZERO, &search).is_coherent(),
                "removing op {skip} should make the core coherent"
            );
        }
    }

    #[test]
    fn cores_of_injected_violations_stay_incoherent() {
        use vermem_trace::gen::{gen_sc_trace, inject_violation, GenConfig, ViolationKind};
        for seed in 0..10 {
            let (trace, _) = gen_sc_trace(&GenConfig::single_address(3, 24, 900 + seed));
            let Some((mutated, inj)) =
                inject_violation(&trace, ViolationKind::CorruptReadValue, seed)
            else {
                continue;
            };
            assert!(inj.guaranteed);
            let core = core_of(&mutated);
            assert!(!core.is_empty());
            assert!(core.len() <= mutated.num_ops());
            // The core itself verifies incoherent.
            assert!(
                solve_backtracking(&core.trace, Addr::ZERO, &SearchConfig::default())
                    .is_incoherent()
            );
        }
    }

    #[test]
    fn kept_refs_point_at_original_ops() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(7u64)])
            .build();
        let core = core_of(&t);
        for (&r, (_, core_op)) in core.kept.iter().zip(core.trace.iter_ops()) {
            assert_eq!(t.op(r), Some(core_op));
        }
    }
}
