//! VMC with one simple operation per process (Figure 5.3 row
//! "1 Operation/Process", simple column).
//!
//! With singleton histories there are no program-order constraints at all,
//! so after the static prechecks (every read value written or initial; the
//! final value producible) a coherent schedule can always be *constructed*:
//! reads of `d_I` first, then the writes grouped by value with each group's
//! reads immediately after it, the `d_F` group last. The paper lists
//! O(n lg n); grouping with hashing gives O(n).

use crate::backtrack::precheck_ops;
use crate::verdict::Verdict;
use std::collections::HashMap;
use vermem_trace::{check_coherent_schedule, Addr, AddrOps, OpRef, Schedule, Trace, Value};

/// True if every process issues at most one operation at `addr`, and all of
/// them are simple reads/writes.
pub fn applicable(trace: &Trace, addr: Addr) -> bool {
    applicable_ops(&AddrOps::of(trace, addr))
}

/// As [`applicable`], decided in O(procs) from a pre-built per-address
/// index entry's cached structure.
pub fn applicable_ops(ops: &AddrOps) -> bool {
    !ops.has_rmw() && ops.max_ops_per_proc() <= 1
}

/// Decide coherence at `addr` for one-simple-op-per-process instances.
/// After [`crate::backtrack::precheck`] passes, such an instance is always
/// coherent.
pub fn solve_one_op(trace: &Trace, addr: Addr) -> Verdict {
    let verdict = solve_one_op_ops(&AddrOps::of(trace, addr));
    if let Verdict::Coherent(witness) = &verdict {
        debug_assert!(
            check_coherent_schedule(trace, addr, witness).is_ok(),
            "one-op solver produced invalid witness"
        );
    }
    verdict
}

/// As [`solve_one_op`], on a pre-built per-address index entry.
pub fn solve_one_op_ops(indexed: &AddrOps) -> Verdict {
    debug_assert!(
        applicable_ops(indexed),
        "one-op fast path preconditions violated"
    );
    if let Some(v) = precheck_ops(indexed) {
        return Verdict::Incoherent(v);
    }
    let initial = indexed.initial();
    let final_value = indexed.final_value();

    let mut initial_reads: Vec<OpRef> = Vec::new();
    let mut writes_by_value: HashMap<Value, Vec<OpRef>> = HashMap::new();
    let mut reads_by_value: HashMap<Value, Vec<OpRef>> = HashMap::new();
    for (r, op) in indexed.iter() {
        if let Some(v) = op.written_value() {
            writes_by_value.entry(v).or_default().push(r);
        } else {
            let v = op.read_value().expect("simple read");
            if v == initial && !writes_by_value.contains_key(&v) {
                // Tentative: may be re-bucketed below if v gets written.
                initial_reads.push(r);
            } else {
                reads_by_value.entry(v).or_default().push(r);
            }
        }
    }
    // Reads of d_I noted before a write of d_I appeared are still fine up
    // front; but reads of a written d_I collected in reads_by_value need a
    // group. Both placements are valid; only the grouping below matters.
    // Re-bucket initial reads if d_I is written and d_F == d_I is required:
    // keeping them up front is always valid, so no action needed.

    let mut values: Vec<Value> = writes_by_value.keys().copied().collect();
    values.sort_unstable();
    // The final value's group must come last.
    if let Some(f) = final_value {
        if let Some(pos) = values.iter().position(|&v| v == f) {
            let v = values.remove(pos);
            values.push(v);
        }
        // If f == initial and nothing writes it, precheck guaranteed there
        // are no writes at all; `values` is empty and the schedule is reads
        // only.
    }

    let mut refs: Vec<OpRef> = Vec::new();
    refs.extend(initial_reads);
    for &v in &values {
        refs.extend(writes_by_value[&v].iter().copied());
        if let Some(reads) = reads_by_value.get(&v) {
            refs.extend(reads.iter().copied());
        }
    }
    // Reads of values that are never written can only be reads of d_I that
    // were bucketed into reads_by_value because d_I is also written: they
    // are served by the d_I write group, handled above. Any other unwritten
    // value was rejected by precheck.
    for (&v, reads) in &reads_by_value {
        if !writes_by_value.contains_key(&v) {
            debug_assert!(v == initial);
            // d_I never written (else covered above): serve up front.
            let mut all = reads.clone();
            all.extend(refs.iter().copied());
            refs = all;
        }
    }

    Verdict::Coherent(Schedule::from_refs(refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{solve_backtracking, SearchConfig};
    use vermem_trace::{Op, TraceBuilder};

    #[test]
    fn applicability() {
        let ok = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64)])
            .build();
        assert!(applicable(&ok, Addr::ZERO));
        let two_ops = TraceBuilder::new().proc([Op::w(1u64), Op::r(1u64)]).build();
        assert!(!applicable(&two_ops, Addr::ZERO));
        let rmw = TraceBuilder::new().proc([Op::rw(0u64, 1u64)]).build();
        assert!(!applicable(&rmw, Addr::ZERO));
    }

    #[test]
    fn coherent_construction() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(2u64)])
            .proc([Op::r(1u64)])
            .proc([Op::r(2u64)])
            .proc([Op::r(0u64)])
            .build();
        let v = solve_one_op(&t, Addr::ZERO);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn unwritten_value_detected() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(7u64)])
            .build();
        assert!(solve_one_op(&t, Addr::ZERO).is_incoherent());
    }

    #[test]
    fn final_value_group_last() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(2u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = solve_one_op(&t, Addr::ZERO);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn duplicate_value_writes_grouped() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64)])
            .build();
        assert!(solve_one_op(&t, Addr::ZERO).is_coherent());
    }

    #[test]
    fn initial_value_written_and_read() {
        // d_I = 0 is also written; reads of 0 can be served either way.
        let t = TraceBuilder::new()
            .proc([Op::w(0u64)])
            .proc([Op::w(1u64)])
            .proc([Op::r(0u64)])
            .final_value(0u32, 1u64)
            .build();
        let v = solve_one_op(&t, Addr::ZERO);
        let s = v.schedule().expect("coherent");
        check_coherent_schedule(&t, Addr::ZERO, s).unwrap();
    }

    #[test]
    fn agrees_with_exact_on_random_instances() {
        use vermem_util::rng::StdRng;
        for seed in 0..150u64 {
            let mut rng = StdRng::seed_from_u64(3000 + seed);
            let n = rng.gen_range(1..=6);
            let mut b = TraceBuilder::new();
            for _ in 0..n {
                let v = rng.gen_range(0..3u64);
                b = b.proc([if rng.gen_bool(0.5) {
                    Op::w(v)
                } else {
                    Op::r(v)
                }]);
            }
            let mut t = b.build();
            if rng.gen_bool(0.3) {
                t.set_final(0u32, rng.gen_range(0..3u64));
            }
            let fast = solve_one_op(&t, Addr::ZERO);
            let exact = solve_backtracking(&t, Addr::ZERO, &SearchConfig::default());
            assert_eq!(
                fast.is_coherent(),
                exact.is_coherent(),
                "divergence on seed {seed}: {t:?}"
            );
        }
    }
}
