//! Parallel per-address verification engine.
//!
//! The paper's §3 definition makes coherence a *per-address* property: an
//! execution is coherent iff every address independently admits a coherent
//! schedule. The per-address solves share nothing but the immutable trace
//! and its [`AddrIndex`], which makes addresses the natural parallelism
//! axis (cf. Roy et al. and the Chini–Saivasan framework in PAPERS.md).
//!
//! [`verify_execution_par`] fans the indexed addresses out over a
//! [`scoped_map`] work-stealing pool and reduces verdicts **in address
//! order**, so the result is *deterministic*: the reported violation (or
//! Unknown address) is bit-identical to the sequential
//! [`crate::verify_execution_with`] at every thread count, including the
//! aggregated [`SearchStats`].
//!
//! ## Determinism contract
//!
//! * Every per-address solve is a pure function of `(trace, addr,
//!   verifier)` — workers share no mutable state.
//! * The first non-coherent verdict trips the [`CancelToken`], so
//!   in-flight workers stop early; addresses they *skipped* are re-solved
//!   inline during the in-order reduction, guaranteeing that the address
//!   reported is the **first** failing address in [`Trace::addresses`]
//!   order — exactly what the sequential engine reports — never merely
//!   "whichever worker lost the race".
//! * [`ExecutionReport::stats`] sums the per-address [`SearchStats`] over
//!   the prefix of addresses up to and including the reported failure (all
//!   addresses when coherent). Speculative work beyond the failure point is
//!   discarded from the sum, so the stats are also thread-count-invariant.
//! * `jobs <= 1` never spawns a thread (the pool runs inline), making the
//!   sequential engine a special case of the parallel one.

use crate::verdict::Verdict;
use crate::{ExecutionVerdict, SearchStats, TierStats, VmcVerifier};
use std::collections::BTreeMap;
use vermem_trace::{AddrIndex, Trace};
use vermem_util::pool::{available_jobs, scoped_map, CancelToken};

/// Outcome of a (parallel) whole-execution verification, with the
/// aggregated search statistics the per-address solvers accumulated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionReport {
    /// The deterministic verdict (identical to the sequential engine's).
    pub verdict: ExecutionVerdict,
    /// Per-address [`SearchStats`] summed in address order up to and
    /// including the reported failure (all addresses when coherent).
    pub stats: SearchStats,
    /// Per-tier accounting over the same deterministic address prefix:
    /// how many addresses the polynomial frontline decided vs how many
    /// were escalated to an exponential engine (see [`crate::closure`]).
    pub tiers: TierStats,
    /// Number of distinct addresses in the trace.
    pub addresses: usize,
    /// Worker count actually used (after resolving `jobs == 0`).
    pub jobs: usize,
}

impl ExecutionReport {
    /// True if the execution is coherent.
    pub fn is_coherent(&self) -> bool {
        self.verdict.is_coherent()
    }
}

/// Verify every address of `trace` on `jobs` worker threads
/// (`0` = [`available_jobs`]). Deterministic: see the module docs.
///
/// ```
/// use vermem_coherence::{verify_execution_par, VmcVerifier};
/// use vermem_trace::{Op, TraceBuilder};
/// let trace = TraceBuilder::new()
///     .proc([Op::write(0u32, 1u64), Op::write(1u32, 2u64)])
///     .proc([Op::read(0u32, 1u64), Op::read(1u32, 2u64)])
///     .build();
/// let report = verify_execution_par(&trace, &VmcVerifier::new(), 4);
/// assert!(report.is_coherent());
/// assert_eq!(report.addresses, 2);
/// ```
pub fn verify_execution_par(trace: &Trace, verifier: &VmcVerifier, jobs: usize) -> ExecutionReport {
    let index = AddrIndex::build(trace);
    let n = index.len();
    let jobs = if jobs == 0 { available_jobs() } else { jobs }.max(1);

    let mut exec_span = vermem_util::span!("verify.execution");
    exec_span.arg("addresses", n as u64);
    exec_span.arg("jobs", jobs as u64);

    let cancel = CancelToken::new();
    let results = scoped_map(jobs, n, &cancel, |i| {
        // Per-address solve span: `dur` makes the top-K slowest-addresses
        // table fall out of the trace; disabled = a no-op guard.
        let mut span = vermem_util::span!("verify.addr");
        let ops_i = index.entry(i);
        let out = verifier.verify_ops_tiered(trace, ops_i);
        if span.is_recording() {
            span.arg("addr", ops_i.addr().0 as u64);
            span.arg("ops", ops_i.num_ops() as u64);
            span.arg("states", out.1.states);
        }
        if !matches!(out.0, Verdict::Coherent(_)) {
            // First failure (in wall-clock order) stops in-flight work; the
            // in-order reduction below restores address-order determinism.
            cancel.cancel();
        }
        out
    });

    // Deterministic reduction: walk addresses in order, re-solving any slot
    // a cancelled worker skipped, and stop at the first failure.
    let mut witnesses = BTreeMap::new();
    let mut stats = SearchStats::default();
    let mut tiers = TierStats::default();
    for (i, slot) in results.into_iter().enumerate() {
        let ops = index.entry(i);
        let (verdict, s, tier) = match slot {
            Some(solved) => solved,
            None => {
                // Cancel-skipped slot re-solved inline: record it under the
                // same span name so its cost is visible in the trace too.
                let mut span = vermem_util::span!("verify.addr");
                let out = verifier.verify_ops_tiered(trace, ops);
                if span.is_recording() {
                    span.arg("addr", ops.addr().0 as u64);
                    span.arg("ops", ops.num_ops() as u64);
                    span.arg("states", out.1.states);
                    span.arg("resolved_inline", 1);
                }
                out
            }
        };
        stats.absorb(&s);
        tiers.record(tier);
        match verdict {
            Verdict::Coherent(w) => {
                witnesses.insert(ops.addr(), w);
            }
            Verdict::Incoherent(v) => {
                return ExecutionReport {
                    verdict: ExecutionVerdict::Incoherent(v),
                    stats,
                    tiers,
                    addresses: n,
                    jobs,
                };
            }
            Verdict::Unknown => {
                return ExecutionReport {
                    verdict: ExecutionVerdict::Unknown { addr: ops.addr() },
                    stats,
                    tiers,
                    addresses: n,
                    jobs,
                };
            }
        }
    }
    ExecutionReport {
        verdict: ExecutionVerdict::Coherent(witnesses),
        stats,
        tiers,
        addresses: n,
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_execution_with;
    use vermem_trace::{Op, TraceBuilder};

    fn multi_addr_trace(seed: u64) -> Trace {
        let (t, _) = vermem_trace::gen::gen_sc_trace(&vermem_trace::gen::GenConfig {
            procs: 4,
            total_ops: 120,
            addrs: 9,
            seed,
            ..Default::default()
        });
        t
    }

    #[test]
    fn matches_sequential_on_coherent_traces() {
        let verifier = VmcVerifier::new();
        for seed in 0..8u64 {
            let t = multi_addr_trace(seed);
            let seq = verify_execution_with(&t, &verifier);
            for jobs in [1, 2, 8] {
                let par = verify_execution_par(&t, &verifier, jobs);
                assert_eq!(par.verdict, seq, "seed {seed} jobs {jobs}");
                assert_eq!(par.jobs, jobs);
                assert_eq!(par.addresses, t.addresses().len());
            }
        }
    }

    #[test]
    fn reports_first_failing_address_at_every_thread_count() {
        // Two independent violations (addresses 3 and 7): every thread
        // count must report address 3, exactly like the sequential engine.
        let t = TraceBuilder::new()
            .proc([
                Op::write(3u32, 1u64),
                Op::write(7u32, 1u64),
                Op::write(5u32, 2u64),
            ])
            .proc([
                Op::read(7u32, 9u64),
                Op::read(3u32, 8u64),
                Op::read(5u32, 2u64),
            ])
            .build();
        let verifier = VmcVerifier::new();
        let seq = verify_execution_with(&t, &verifier);
        let seq_violation = match &seq {
            ExecutionVerdict::Incoherent(v) => v.clone(),
            other => panic!("expected incoherent, got {other:?}"),
        };
        assert_eq!(seq_violation.addr, vermem_trace::Addr(3));
        for jobs in [1, 2, 3, 8] {
            let par = verify_execution_par(&t, &verifier, jobs);
            assert_eq!(
                par.verdict,
                ExecutionVerdict::Incoherent(seq_violation.clone()),
                "jobs {jobs}"
            );
        }
    }

    #[test]
    fn stats_are_thread_count_invariant() {
        let verifier = VmcVerifier::new();
        for seed in 0..4u64 {
            let t = multi_addr_trace(100 + seed);
            let baseline = verify_execution_par(&t, &verifier, 1);
            for jobs in [2, 4, 8] {
                let par = verify_execution_par(&t, &verifier, jobs);
                assert_eq!(par.stats, baseline.stats, "seed {seed} jobs {jobs}");
                assert_eq!(par.tiers, baseline.tiers, "seed {seed} jobs {jobs}");
                assert_eq!(par.verdict, baseline.verdict, "seed {seed} jobs {jobs}");
            }
        }
    }

    #[test]
    fn unknown_address_is_deterministic() {
        // A tiny state budget forces Unknown on a hard multi-address trace;
        // the reported address must match the sequential engine at every
        // thread count.
        let mut b = TraceBuilder::new();
        for p in 0..3u32 {
            let mut ops = Vec::new();
            for a in 0..4u32 {
                // Same-value write pairs at every address: hard instances.
                ops.push(Op::write(a, u64::from(p) + 1));
                ops.push(Op::read(a, 1u64));
                ops.push(Op::write(a, u64::from(p) + 10));
                ops.push(Op::read(a, 12u64));
            }
            b = b.proc(ops);
        }
        let t = b.build();
        let verifier = VmcVerifier {
            search: crate::SearchConfig {
                max_states: Some(3),
                ..Default::default()
            },
            ..Default::default()
        };
        let seq = verify_execution_with(&t, &verifier);
        for jobs in [1, 2, 8] {
            let par = verify_execution_par(&t, &verifier, jobs);
            assert_eq!(par.verdict, seq, "jobs {jobs}");
        }
    }

    #[test]
    fn empty_trace_report() {
        let report = verify_execution_par(&Trace::new(), &VmcVerifier::new(), 0);
        assert!(report.is_coherent());
        assert_eq!(report.addresses, 0);
        assert_eq!(report.stats, SearchStats::default());
        assert_eq!(report.tiers, TierStats::default());
        assert!(report.jobs >= 1);
    }
}
