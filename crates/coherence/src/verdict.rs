//! Verdicts and violation reports produced by the VMC solvers.

use vermem_trace::{Addr, OpRef, Schedule, Value};

/// Why an execution is (or appears) incoherent at an address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read returns a value that is never written and differs from the
    /// initial value — no schedule can serve it.
    NoWriterForValue {
        /// The offending read (or RMW read component).
        read: OpRef,
        /// The unservable value.
        value: Value,
    },
    /// The configured final value is not the initial value and is never
    /// written, or writes exist but none writes it.
    FinalValueUnwritable {
        /// The required final value.
        value: Value,
    },
    /// The exhaustive search space was fully explored without finding a
    /// coherent schedule.
    SearchExhausted,
    /// The supplied write order is inconsistent with program order or does
    /// not cover exactly the write operations.
    InvalidWriteOrder {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Under the supplied write order, a read could not be placed in its
    /// feasible window.
    UnplaceableRead {
        /// The read that could not be placed.
        read: OpRef,
        /// The value it needs to observe.
        value: Value,
    },
    /// A read-modify-write chain cannot be formed (all-RMW instances): the
    /// value-graph has no Eulerian path with the required endpoints.
    BrokenRmwChain {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The precedence graph required by the read-map is cyclic.
    PrecedenceCycle {
        /// Operations participating in (a witness of) the cycle.
        cycle: Vec<OpRef>,
    },
}

/// A coherence violation at a specific address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The address whose projection is incoherent.
    pub addr: Addr,
    /// The failure class.
    pub kind: ViolationKind,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coherence violation at {:?}: ", self.addr)?;
        match &self.kind {
            ViolationKind::NoWriterForValue { read, value } => {
                write!(
                    f,
                    "read {read:?} observes {value:?}, which is never written"
                )
            }
            ViolationKind::FinalValueUnwritable { value } => {
                write!(f, "required final value {value:?} cannot be produced")
            }
            ViolationKind::SearchExhausted => {
                write!(f, "no coherent interleaving exists (search exhausted)")
            }
            ViolationKind::InvalidWriteOrder { detail } => {
                write!(f, "invalid write order: {detail}")
            }
            ViolationKind::UnplaceableRead { read, value } => {
                write!(
                    f,
                    "read {read:?} of {value:?} has no feasible slot in the write order"
                )
            }
            ViolationKind::BrokenRmwChain { detail } => {
                write!(f, "read-modify-write chain cannot be formed: {detail}")
            }
            ViolationKind::PrecedenceCycle { cycle } => {
                write!(f, "read-map precedence cycle through {cycle:?}")
            }
        }
    }
}

/// The answer to a VMC query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A coherent schedule exists; the witness is attached and always passes
    /// [`vermem_trace::check_coherent_schedule`].
    Coherent(Schedule),
    /// No coherent schedule exists.
    Incoherent(Violation),
    /// The solver's budget was exhausted before reaching an answer.
    Unknown,
}

impl Verdict {
    /// True if a coherent schedule was found.
    pub fn is_coherent(&self) -> bool {
        matches!(self, Verdict::Coherent(_))
    }

    /// True if incoherence was proven.
    pub fn is_incoherent(&self) -> bool {
        matches!(self, Verdict::Incoherent(_))
    }

    /// The witness schedule, if coherent.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            Verdict::Coherent(s) => Some(s),
            _ => None,
        }
    }

    /// The violation, if incoherent.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Incoherent(v) => Some(v),
            _ => None,
        }
    }
}
