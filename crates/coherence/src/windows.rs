//! Feasibility-interval propagation for the exact VMC search.
//!
//! Roy et al. ("Fast and Generalized Polynomial Time Memory Consistency
//! Verification", PAPERS.md) observe that practical verifiers win by
//! *inference before enumeration*: compute, for every operation, a window
//! of schedule positions it could legally occupy, and for every read the
//! set of writes that could serve it; tighten both to a fixpoint; and only
//! then enumerate. This module is that inference layer for VMC:
//!
//! * **Serving candidates.** A read of value `v` can only be served by the
//!   initial value (when no program-order-earlier write of its own process
//!   exists and `v = d_I`) or by a write of `v` that is not forced after
//!   it. Own-process writes are filtered hard: only the *last* write
//!   program-order-before the read can serve it (any earlier one is
//!   shadowed), and every foreign serving write must land *after* that
//!   last own-process write.
//! * **RMW pigeonhole.** Distinct atomic read-modify-writes observing the
//!   same value always have distinct "suppliers" (the latest write before
//!   an RMW is unique, and an RMW is itself a write), so more RMW reads of
//!   `v` than writes of `v` (plus one for `d_I`) is immediately
//!   incoherent. This is the paper's "hardness needs repeated values"
//!   observation turned into a rejection rule.
//! * **Position windows.** Every op gets `[lo, hi]` bounds on its schedule
//!   position from program order, tightened by longest-path propagation
//!   over the *must-precede* graph (program order plus forced serving
//!   edges from singleton candidate sets). A must-precede cycle, an empty
//!   window, or an emptied candidate set proves incoherence without any
//!   search ([`WindowOutcome::Infeasible`]).
//! * **fr-edge propagation** (TSOtool-style, cf. Roy et al.). A read `r`
//!   with a *unique* serving candidate `w` sits between `w` and the next
//!   write, so `r` must precede every write ordered after `w`, and every
//!   write ordered before `r` must precede `w`. A read that can only see
//!   the initial value precedes every write. Symmetrically, a candidate
//!   dies when another write provably lands between it and the read (it
//!   can no longer be the *latest* write before the read). These rules
//!   feed the same fixpoint: new edges tighten windows, tighter windows
//!   kill candidates, dead candidates force more edges. A cycle derived
//!   this way is a polynomial incoherence proof.
//! * **Final-value edge.** When the dumped final value has a unique
//!   writer, that write is the last write of every coherent schedule, so
//!   every other write must precede it.
//! * **Fast accept.** When the must-precede graph is acyclic, a
//!   deterministic *value-aware* topological simulation runs: released
//!   reads of the current value are absorbed first, an RMW consuming the
//!   current value outranks plain writes, remaining writes go in
//!   `(lo, hi, id)` window order. If the simulation is a coherent
//!   schedule, the instance is decided positively with that witness
//!   ([`WindowOutcome::Schedule`]) — again without search.
//!
//! Everything here computes **necessary** conditions: a window/candidate
//! is only discarded when *no* coherent schedule can use it, so pruning a
//! DFS branch that schedules an op outside its surviving window
//! ([`WindowTable::allows`]) never loses a witness, and `Infeasible` is
//! always a true incoherence proof. Soundness arguments are spelled out in
//! DESIGN.md §4b.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vermem_trace::{AddrOps, Op, OpRef, Value};
use vermem_util::bitset::{BitRow, BitSet};
use vermem_util::hash::{FxHashMap, FxHashSet};

/// Per-operation feasible position windows, indexed densely by
/// `(process, program-order index)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowTable {
    offsets: Vec<u32>,
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl WindowTable {
    /// Dense id of the `idx`-th op of process `proc`.
    #[inline]
    fn id(&self, proc: usize, idx: u32) -> usize {
        self.offsets[proc] as usize + idx as usize
    }

    /// True if the op may occupy schedule position `pos` (0-based) in
    /// *some* coherent schedule, as far as the propagated windows know.
    /// A `false` answer is a proof: no coherent schedule places it there.
    #[inline]
    pub fn allows(&self, proc: usize, idx: u32, pos: usize) -> bool {
        let i = self.id(proc, idx);
        (self.lo[i] as usize) <= pos && pos <= (self.hi[i] as usize)
    }

    /// The `[lo, hi]` window of the `idx`-th op of process `proc`.
    pub fn window(&self, proc: usize, idx: u32) -> (u32, u32) {
        let i = self.id(proc, idx);
        (self.lo[i], self.hi[i])
    }
}

/// Result of the polynomial window pre-pass.
#[derive(Clone, Debug)]
pub enum WindowOutcome {
    /// Proven incoherent: a candidate set emptied, a window emptied, the
    /// RMW pigeonhole failed, or the must-precede graph is cyclic.
    Infeasible,
    /// Proven coherent: the must-precede topological order simulates as a
    /// coherent schedule (a verified witness, in original-trace refs).
    Schedule(Vec<OpRef>),
    /// Undecided: surviving windows for DFS branch pruning.
    Table(WindowTable),
}

/// Candidate-set budget: above this many (read, candidate-write) pairs the
/// fixpoint is skipped and only program-order windows are returned, so the
/// pre-pass stays linear-ish on adversarial value distributions.
const MAX_CANDIDATE_PAIRS: usize = 1 << 22;

/// Fixpoint round cap. Each round only shrinks windows and candidate
/// sets, so convergence is guaranteed; the cap bounds worst-case cost
/// (stopping early merely prunes less — still sound).
const MAX_ROUNDS: usize = 32;

/// Deep-rule budget. The quadratic-ish rules — fr-edge propagation (a
/// transitive closure of the must-precede graph each round), the
/// final-value write fan-out, and the init-read fan-out — only pay for
/// themselves on small, constraint-dense addresses; above this many ops
/// per address they are skipped and the cheap linear fixpoint still runs
/// (skipping only prunes less — still sound).
const MAX_DEEP_OPS: usize = 256;

/// Record `a → b` in the must-precede graph unless already present.
/// Returns true when the edge is new.
fn add_edge(
    a: u32,
    b: u32,
    succs: &mut [Vec<u32>],
    preds: &mut [Vec<u32>],
    seen: &mut FxHashSet<(u32, u32)>,
) -> bool {
    if a != b && seen.insert((a, b)) {
        succs[a as usize].push(b);
        preds[b as usize].push(a);
        true
    } else {
        false
    }
}

/// Reusable per-thread scratch for the fixpoint rounds. Every round of
/// every address re-shapes these to its geometry and zeroes in place;
/// memory is allocated only when an address outgrows the thread's
/// high-water mark, so steady-state analysis rounds allocate nothing.
#[derive(Default)]
struct Scratch {
    /// In-degrees of the must-precede graph (topological sort).
    indeg: Vec<u32>,
    /// Zero-in-degree work stack (topological sort).
    queue: Vec<u32>,
    /// The round's topological order.
    order: Vec<u32>,
    /// Transitive-closure matrix: row `i` holds the ops provably after `i`.
    reach: BitSet,
    /// Writes that must precede the read under scrutiny.
    writes_before: BitRow,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

struct ReadInfo {
    /// Dense id of the read (or RMW read component).
    id: u32,
    /// Dense id of the last own-process write strictly program-order
    /// before the read, if any. Only it (among own-process writes) can
    /// serve the read, and every foreign serving write must land after it.
    prev_write: Option<u32>,
    /// True while the initial value `d_I` remains a viable server.
    has_init: bool,
    /// Surviving candidate serving writes (dense ids).
    cands: Vec<u32>,
}

/// Run feasibility-interval propagation on one address's operations.
///
/// Call after [`crate::backtrack::precheck_ops`] (the precheck handles
/// never-written values and unproducible finals; this pass assumes nothing
/// beyond that and re-proves what it needs).
pub fn analyze(ops: &AddrOps) -> WindowOutcome {
    SCRATCH.with(|s| analyze_with(ops, &mut s.borrow_mut()))
}

fn analyze_with(ops: &AddrOps, scratch: &mut Scratch) -> WindowOutcome {
    let Scratch {
        indeg,
        queue,
        order,
        reach,
        writes_before,
    } = scratch;
    let per_proc = ops.per_proc();
    let n = ops.num_ops();
    let initial = ops.initial();

    // Dense layout.
    let mut offsets = Vec::with_capacity(per_proc.len());
    let mut acc = 0u32;
    for h in per_proc {
        offsets.push(acc);
        acc += h.len() as u32;
    }
    let mut flat: Vec<(usize, u32, OpRef, Op)> = Vec::with_capacity(n);
    for (p, h) in per_proc.iter().enumerate() {
        for (j, &(r, op)) in h.iter().enumerate() {
            flat.push((p, j as u32, r, op));
        }
    }

    // Program-order position bounds.
    let mut lo = vec![0u32; n];
    let mut hi = vec![0u32; n];
    for (i, &(p, j, _, _)) in flat.iter().enumerate() {
        let len = per_proc[p].len() as u32;
        lo[i] = j;
        hi[i] = n as u32 - (len - j);
    }

    // Writers per value, and the RMW pigeonhole.
    let mut writers: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
    let mut rmw_reads: FxHashMap<Value, usize> = FxHashMap::default();
    for (i, &(_, _, _, op)) in flat.iter().enumerate() {
        if let Some(v) = op.written_value() {
            writers.entry(v).or_default().push(i as u32);
        }
        if op.is_rmw() {
            if let Some(v) = op.read_value() {
                *rmw_reads.entry(v).or_insert(0) += 1;
            }
        }
    }
    for (&v, &consumers) in &rmw_reads {
        let supply = writers.get(&v).map_or(0, Vec::len) + usize::from(v == initial);
        if consumers > supply {
            // More atomic observers of `v` than distinct suppliers: the
            // latest-write-before an RMW is unique per RMW (an RMW is
            // itself a write), so this is a pigeonhole contradiction.
            return WindowOutcome::Infeasible;
        }
    }

    // Initial serving-candidate sets.
    let mut reads: Vec<ReadInfo> = Vec::new();
    let mut pairs = 0usize;
    for (p, h) in per_proc.iter().enumerate() {
        let mut prev_write: Option<u32> = None;
        for (j, &(_, op)) in h.iter().enumerate() {
            let id = offsets[p] + j as u32;
            if let Some(v) = op.read_value() {
                let has_init = v == initial && prev_write.is_none();
                let mut cands = Vec::new();
                if let Some(ws) = writers.get(&v) {
                    for &w in ws {
                        if w == id {
                            continue; // an RMW cannot serve its own read
                        }
                        let (wp, _, _, _) = flat[w as usize];
                        if wp == p && prev_write != Some(w) {
                            // Own-process writes other than the last one
                            // before the read are shadowed by it (or are
                            // program-order after the read).
                            continue;
                        }
                        cands.push(w);
                    }
                }
                if cands.is_empty() && !has_init {
                    return WindowOutcome::Infeasible;
                }
                pairs += cands.len();
                reads.push(ReadInfo {
                    id,
                    prev_write,
                    has_init,
                    cands,
                });
            }
            if op.is_writing() {
                prev_write = Some(id);
            }
        }
    }

    // Must-precede graph: program order seeds it; forced serving, fr, and
    // final-value edges join during the fixpoint.
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut edge_seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    for (p, h) in per_proc.iter().enumerate() {
        for j in 1..h.len() {
            let a = offsets[p] + j as u32 - 1;
            let b = offsets[p] + j as u32;
            succs[a as usize].push(b);
            preds[b as usize].push(a);
            edge_seen.insert((a, b));
        }
    }

    let write_ids: Vec<u32> = flat
        .iter()
        .enumerate()
        .filter(|(_, &(_, _, _, op))| op.is_writing())
        .map(|(i, _)| i as u32)
        .collect();

    let skip_fixpoint = pairs > MAX_CANDIDATE_PAIRS;
    let deep = !skip_fixpoint && n <= MAX_DEEP_OPS;

    // Final-value edge: the last write of every coherent schedule produces
    // the dumped final value, so a *unique* writer of that value must
    // follow every other write (an O(writes) fan-out — deep rule). No
    // writer at all is a contradiction unless the final value is the
    // (never overwritten) initial value; that check is always on.
    if let Some(f) = ops.final_value() {
        match writers.get(&f).map(Vec::as_slice) {
            Some(&[wf]) if deep => {
                for &w in &write_ids {
                    add_edge(w, wf, &mut succs, &mut preds, &mut edge_seen);
                }
            }
            Some(_) => {}
            None => {
                if f != initial || !write_ids.is_empty() {
                    return WindowOutcome::Infeasible;
                }
            }
        }
    }

    let mut rounds = 0;
    let mut changed = true;
    while changed && rounds < MAX_ROUNDS && !skip_fixpoint {
        changed = false;
        rounds += 1;

        // Longest-path window tightening over the must-precede DAG.
        order.clear();
        indeg.clear();
        indeg.extend(preds.iter().map(|p| p.len() as u32));
        queue.clear();
        queue.extend((0..n as u32).filter(|&i| indeg[i as usize] == 0));
        while let Some(i) = queue.pop() {
            order.push(i);
            for &s in &succs[i as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() < n {
            return WindowOutcome::Infeasible; // must-precede cycle
        }
        for &i in order.iter() {
            for &pr in &preds[i as usize] {
                let bound = lo[pr as usize] + 1;
                if bound > lo[i as usize] {
                    lo[i as usize] = bound;
                    changed = true;
                }
            }
        }
        for &i in order.iter().rev() {
            for &s in &succs[i as usize] {
                let bound = hi[s as usize].saturating_sub(1);
                if bound < hi[i as usize] {
                    hi[i as usize] = bound;
                    changed = true;
                }
            }
        }
        for i in 0..n {
            if lo[i] > hi[i] {
                return WindowOutcome::Infeasible;
            }
        }

        // Transitive closure of this round's must-precede snapshot
        // (reverse-topological bitset accumulation), for the fr rules.
        // Row `i` of `reach` holds the ops strictly after `i` in every
        // schedule. Successor rows are final by the time `i` is visited,
        // so each row accumulates in place — no per-row temporary.
        if deep {
            reach.reset(n, n);
            for &i in order.iter().rev() {
                for &s in &succs[i as usize] {
                    reach.set(i as usize, s as usize);
                    reach.union_row(i as usize, s as usize);
                }
            }
        }

        // Candidate filtering + forced serving edges + fr propagation.
        for r in &mut reads {
            let rid = r.id as usize;
            let before = r.cands.len();
            let prev = r.prev_write;
            // Writes that must precede this read (fr rules below).
            if deep {
                writes_before.reset(n);
                for &w in &write_ids {
                    if reach.test(w as usize, rid) {
                        writes_before.set(w as usize);
                    }
                }
            }
            r.cands.retain(|&w| {
                let wid = w as usize;
                // The serving write must be strictly before the read...
                if lo[wid] >= hi[rid] {
                    return false;
                }
                // ...strictly after the last own-process write...
                if let Some(pw) = prev {
                    if w != pw && lo[pw as usize] >= hi[wid] {
                        return false;
                    }
                }
                // ...and the *latest* write before the read: it is dead
                // when another write provably lands between the two.
                if deep && reach.row_intersects(wid, writes_before.words()) {
                    return false;
                }
                true
            });
            if r.cands.len() != before {
                changed = true;
            }
            if r.cands.is_empty() && !r.has_init {
                return WindowOutcome::Infeasible;
            }
            if !r.has_init && r.cands.len() == 1 {
                let w = r.cands[0];
                changed |= add_edge(w, r.id, &mut succs, &mut preds, &mut edge_seen);
                if let Some(pw) = r.prev_write {
                    if pw != w {
                        changed |= add_edge(pw, w, &mut succs, &mut preds, &mut edge_seen);
                    }
                }
                if deep {
                    // fr edges: the read sits between its unique server
                    // `w` and the next write, so it precedes every write
                    // ordered after `w`, and every write ordered before
                    // the read precedes `w`.
                    for &w2 in &write_ids {
                        if w2 == w || w2 == r.id {
                            continue;
                        }
                        if reach.test(w as usize, w2 as usize) {
                            changed |= add_edge(r.id, w2, &mut succs, &mut preds, &mut edge_seen);
                        }
                        if writes_before.test(w2 as usize) {
                            changed |= add_edge(w2, w, &mut succs, &mut preds, &mut edge_seen);
                        }
                    }
                }
            }
            if deep && r.has_init && r.cands.is_empty() {
                // Must read the initial value, which no write re-produces
                // (any such write would be a candidate): the read precedes
                // every write (O(writes) fan-out per such read — deep rule).
                for &w2 in &write_ids {
                    changed |= add_edge(r.id, w2, &mut succs, &mut preds, &mut edge_seen);
                }
            }
        }
    }

    // Fast accept: a value-aware greedy simulation of the must-precede
    // graph. Reads are *absorbed* as soon as they are released and match
    // the current value (the same admissible move the exact search makes
    // greedily); an RMW whose read matches the current value outranks any
    // plain write (skipping it could strand the RMW behind an overwrite);
    // remaining writes go in deterministic `(lo, hi, id)` window order.
    // Success is self-certifying — every scheduled read was checked
    // against the value it sees, so the order is itself the witness
    // schedule. Failure just falls through to DFS.
    if n > 0 && !skip_fixpoint {
        indeg.clear();
        indeg.extend(preds.iter().map(|p| p.len() as u32));
        // Released-but-unscheduled ops, bucketed by what can unblock them:
        // plain reads and RMWs wait for their read value to become
        // current; plain writes are always eligible.
        type Bucket = FxHashMap<Value, BinaryHeap<Reverse<(u32, u32, u32)>>>;
        fn pop_bucket(bucket: &mut Bucket, v: Value) -> Option<u32> {
            let q = bucket.get_mut(&v)?;
            let i = q.pop().map(|Reverse((_, _, i))| i);
            if q.is_empty() {
                bucket.remove(&v);
            }
            i
        }
        let mut ready_reads: Bucket = FxHashMap::default();
        let mut ready_rmws: Bucket = FxHashMap::default();
        let mut ready_writes: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        let release = |i: u32,
                       reads: &mut Bucket,
                       rmws: &mut Bucket,
                       writes: &mut BinaryHeap<Reverse<(u32, u32, u32)>>| {
            let (_, _, _, op) = flat[i as usize];
            let key = Reverse((lo[i as usize], hi[i as usize], i));
            match op.read_value() {
                Some(v) if op.written_value().is_some() => rmws.entry(v).or_default().push(key),
                Some(v) => reads.entry(v).or_default().push(key),
                None => writes.push(key),
            }
        };
        for i in 0..n as u32 {
            if indeg[i as usize] == 0 {
                release(i, &mut ready_reads, &mut ready_rmws, &mut ready_writes);
            }
        }
        let mut sched: Vec<u32> = Vec::with_capacity(n);
        let mut current = initial;
        while sched.len() < n {
            // Absorb phase first, then the RMW consuming the current
            // value, then the lowest-window plain write.
            let next = pop_bucket(&mut ready_reads, current)
                .or_else(|| pop_bucket(&mut ready_rmws, current))
                .or_else(|| ready_writes.pop().map(|Reverse((_, _, i))| i));
            let Some(i) = next else {
                break; // released ops all wait on a value nobody can produce now
            };
            if let Some(v) = flat[i as usize].3.written_value() {
                current = v;
            }
            sched.push(i);
            for &s in &succs[i as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    release(s, &mut ready_reads, &mut ready_rmws, &mut ready_writes);
                }
            }
        }
        if sched.len() == n && ops.final_value().is_none_or(|f| f == current) {
            return WindowOutcome::Schedule(
                sched.into_iter().map(|i| flat[i as usize].2).collect(),
            );
        }
    }

    WindowOutcome::Table(WindowTable { offsets, lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vermem_trace::{Addr, TraceBuilder};

    fn analyze_trace(t: &vermem_trace::Trace) -> WindowOutcome {
        analyze(&AddrOps::of(t, Addr::ZERO))
    }

    #[test]
    fn simple_coherent_instance_fast_accepts() {
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64)])
            .build();
        match analyze_trace(&t) {
            WindowOutcome::Schedule(s) => {
                let sched = vermem_trace::Schedule::from_refs(s);
                vermem_trace::check_coherent_schedule(&t, Addr::ZERO, &sched).unwrap();
            }
            other => panic!("expected fast accept, got {other:?}"),
        }
    }

    #[test]
    fn rmw_pigeonhole_rejects() {
        // Three RMWs observe value 1 but only one write of 1 exists (and
        // the initial value is 0): pigeonhole contradiction.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::rw(1u64, 2u64)])
            .proc([Op::rw(1u64, 3u64)])
            .proc([Op::rw(1u64, 4u64)])
            .build();
        assert!(matches!(analyze_trace(&t), WindowOutcome::Infeasible));
    }

    #[test]
    fn forced_cycle_rejects() {
        // P0: W(1) R(2); P1: W(2) R(1). Each read has a unique foreign
        // serving write and a shadowing own-process write, forcing
        // W(1) < W(2) (to serve R(1) after W(1)... precisely: serving
        // edges W(2)->R(2), W(1)->R(1) plus after-own-write edges
        // W(1)->W(2) and W(2)->W(1) — a must-precede cycle.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64)])
            .proc([Op::w(2u64), Op::r(1u64)])
            .build();
        assert!(matches!(analyze_trace(&t), WindowOutcome::Infeasible));
    }

    #[test]
    fn own_process_shadowing_filters_candidates() {
        // P0: W(1) W(2) R(1) — the only write of 1 is shadowed by W(2),
        // so R(1) has no server (initial is 0).
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64), Op::r(1u64)])
            .build();
        assert!(matches!(analyze_trace(&t), WindowOutcome::Infeasible));
    }

    #[test]
    fn forced_serving_edges_prove_incoherence_without_search() {
        // P0: W(1) R(2) W(2); P1: W(2) R(1) W(1). Own-process shadowing
        // leaves each read a *unique* foreign server, and the forced
        // after-own-write edges W(1)→W(2) and W(2)→W(1) form a
        // must-precede cycle: incoherent, decided polynomially.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::r(2u64), Op::w(2u64)])
            .proc([Op::w(2u64), Op::r(1u64), Op::w(1u64)])
            .build();
        assert!(matches!(analyze_trace(&t), WindowOutcome::Infeasible));
    }

    #[test]
    fn undecided_instance_returns_windows_covering_program_order() {
        // Whether the value-aware simulation decides this instance or
        // falls back to a table, both outcomes must be well-formed: a
        // returned schedule is a verified witness, returned windows cover
        // program order.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64)])
            .proc([Op::r(1u64), Op::r(2u64)])
            .build();
        match analyze_trace(&t) {
            WindowOutcome::Table(w) => {
                // Program-order bounds always hold.
                for p in 0..2 {
                    for j in 0..2u32 {
                        let (lo, hi) = w.window(p, j);
                        assert!(lo >= j && hi <= 2 + j && lo <= hi, "({p},{j}) {lo}..{hi}");
                    }
                }
            }
            WindowOutcome::Schedule(s) => {
                let sched = vermem_trace::Schedule::from_refs(s);
                vermem_trace::check_coherent_schedule(&t, Addr::ZERO, &sched).unwrap();
            }
            WindowOutcome::Infeasible => panic!("instance is coherent"),
        }
    }

    #[test]
    fn never_rejects_coherent_instances() {
        use vermem_trace::gen::gen_hard_coherent;
        for seed in 0..40u64 {
            let (t, _) = gen_hard_coherent(4, 6, 2, seed);
            match analyze_trace(&t) {
                WindowOutcome::Infeasible => panic!("rejected coherent instance, seed {seed}"),
                WindowOutcome::Schedule(s) => {
                    let sched = vermem_trace::Schedule::from_refs(s);
                    vermem_trace::check_coherent_schedule(&t, Addr::ZERO, &sched)
                        .unwrap_or_else(|e| panic!("bad fast-accept witness, seed {seed}: {e:?}"));
                }
                WindowOutcome::Table(_) => {}
            }
        }
    }

    #[test]
    fn empty_address_yields_empty_schedule_or_table() {
        let t = TraceBuilder::new().proc([]).build();
        match analyze_trace(&t) {
            WindowOutcome::Infeasible => panic!("empty is coherent"),
            WindowOutcome::Schedule(s) => assert!(s.is_empty()),
            WindowOutcome::Table(_) => {}
        }
    }
}
