//! Online (streaming) coherence checking — the hardware error detector the
//! paper's introduction motivates, made possible by the §5.2 observation
//! that verification is polynomial when the memory system supplies its
//! write order.
//!
//! The checker consumes the machine's event stream *as it executes*:
//! writes in per-address commit order, and reads/RMWs in program order per
//! process (the stream any write-invalidate memory system can produce, cf.
//! Qadeer's logical-order-equals-temporal-order observation cited in §2).
//! It maintains, per address, the committed value sequence ("slots") and a
//! per-process placement cursor, and places each read greedily at the
//! earliest feasible slot — exactly the §5.2 insertion algorithm run
//! incrementally:
//!
//! * a read matching an existing slot within its window is placed in O(log
//!   n);
//! * a read with no feasible slot *yet* is deferred (its serving write may
//!   commit later);
//! * a deferred read's window closes when its process commits its next
//!   write to that address — if it is still unplaced, a violation is
//!   reported at that very event, pinpointing detection latency;
//! * [`OnlineVerifier::finish`] flushes still-deferred reads as violations.
//!
//! The verdict is identical to running [`crate::solve_with_write_order`]
//! offline on the captured trace (tested against it), but violations
//! surface *during* execution.

use std::collections::HashMap;
use vermem_trace::{Addr, Op, ProcId, Value};

/// A violation reported by the online checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnlineViolation {
    /// Index (in the event stream) at which the violation became certain.
    pub detected_at: u64,
    /// Index at which the offending operation was observed (for deferred
    /// reads this precedes `detected_at`; the gap is the detection latency).
    pub issued_at: u64,
    /// The process whose read cannot be served.
    pub proc: ProcId,
    /// The address involved.
    pub addr: Addr,
    /// The unservable observed value.
    pub value: Value,
    /// Human-readable cause.
    pub cause: OnlineCause,
}

/// Why the online checker flagged an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnlineCause {
    /// An RMW's read component did not match the last committed value.
    RmwMismatch,
    /// A deferred read's window closed (its process committed a newer
    /// write) while the read was still unservable.
    WindowClosed,
    /// The stream ended with the read still unservable.
    EndOfStream,
}

#[derive(Clone, Debug)]
struct PendingRead {
    proc: ProcId,
    value: Value,
    issued_at: u64,
}

#[derive(Default)]
struct AddrState {
    /// Committed values; slot `s` (0-based over `0..=slots.len()`) denotes
    /// "after `s` writes", so the value at slot 0 is the initial value and
    /// the value at slot `s > 0` is `slots[s-1]`.
    slots: Vec<Value>,
    /// For each value: the sorted slots at which it is current.
    value_slots: HashMap<Value, Vec<usize>>,
    /// Per-process placement cursor (earliest slot its next read may use).
    min_slot: HashMap<u16, usize>,
    /// Deferred reads, per process, in program order.
    pending: HashMap<u16, Vec<PendingRead>>,
}

/// The streaming verifier. Feed events with [`OnlineVerifier::observe`];
/// call [`OnlineVerifier::finish`] at end of stream.
///
/// ```
/// use vermem_coherence::OnlineVerifier;
/// use vermem_trace::{Op, ProcId};
/// let mut v = OnlineVerifier::new();
/// v.observe(ProcId(0), Op::w(1u64));
/// v.observe(ProcId(1), Op::r(1u64));
/// assert!(v.clean());
/// assert!(v.finish().is_empty());
/// ```
#[derive(Default)]
pub struct OnlineVerifier {
    addrs: HashMap<Addr, AddrState>,
    initial: HashMap<Addr, Value>,
    violations: Vec<OnlineViolation>,
    events: u64,
}

impl OnlineVerifier {
    /// A fresh verifier with all locations initialized to
    /// [`Value::INITIAL`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a non-default initial value for a location (before feeding
    /// events).
    pub fn set_initial(&mut self, addr: Addr, value: Value) {
        self.initial.insert(addr, value);
    }

    fn initial_of(&self, addr: Addr) -> Value {
        self.initial.get(&addr).copied().unwrap_or(Value::INITIAL)
    }

    /// Number of events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Violations detected so far.
    pub fn violations(&self) -> &[OnlineViolation] {
        &self.violations
    }

    /// True if no violation has been detected yet.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Feed the next event: `proc` executed/committed `op`. Writes must
    /// arrive in their per-address commit order; reads and RMWs in program
    /// order per process (per address). Returns the number of violations
    /// this event surfaced.
    pub fn observe(&mut self, proc: ProcId, op: Op) -> usize {
        let seq = self.events;
        self.events += 1;
        let before = self.violations.len();
        let addr = op.addr();
        let initial = self.initial_of(addr);

        match op {
            Op::Read { value, .. } => {
                self.on_read(seq, proc, addr, value, initial);
            }
            Op::Write { value, .. } => {
                self.on_write(seq, proc, addr, value, initial);
            }
            Op::Rmw { read, write, .. } => {
                // The read component binds to the immediately preceding
                // committed value.
                let state = self.addrs.entry(addr).or_default();
                let current = state.slots.last().copied().unwrap_or(initial);
                if current != read {
                    self.violations.push(OnlineViolation {
                        detected_at: seq,
                        issued_at: seq,
                        proc,
                        addr,
                        value: read,
                        cause: OnlineCause::RmwMismatch,
                    });
                }
                self.on_write(seq, proc, addr, write, initial);
            }
        }
        self.violations.len() - before
    }

    fn on_read(&mut self, seq: u64, proc: ProcId, addr: Addr, value: Value, initial: Value) {
        let state = self.addrs.entry(addr).or_default();
        ensure_initial_slot(state, initial);
        let queue = state.pending.entry(proc.0).or_default();
        if !queue.is_empty() {
            // Preserve program order behind an already-deferred read.
            queue.push(PendingRead {
                proc,
                value,
                issued_at: seq,
            });
            return;
        }
        let min = state.min_slot.get(&proc.0).copied().unwrap_or(0);
        match place(state, value, min) {
            Some(slot) => {
                state.min_slot.insert(proc.0, slot);
            }
            None => {
                state.pending.entry(proc.0).or_default().push(PendingRead {
                    proc,
                    value,
                    issued_at: seq,
                });
            }
        }
    }

    fn on_write(&mut self, seq: u64, proc: ProcId, addr: Addr, value: Value, initial: Value) {
        let state = self.addrs.entry(addr).or_default();
        ensure_initial_slot(state, initial);

        // The writer's own deferred reads' windows close now.
        if let Some(queue) = state.pending.get_mut(&proc.0) {
            for stale in queue.drain(..) {
                self.violations.push(OnlineViolation {
                    detected_at: seq,
                    issued_at: stale.issued_at,
                    proc: stale.proc,
                    addr,
                    value: stale.value,
                    cause: OnlineCause::WindowClosed,
                });
            }
        }

        // Commit the write as a new slot.
        let slot = state.slots.len() + 1;
        state.slots.push(value);
        state.value_slots.entry(value).or_default().push(slot);
        // The writer's later reads must observe this write or newer.
        let cursor = state.min_slot.entry(proc.0).or_insert(0);
        *cursor = (*cursor).max(slot);

        // Retry deferred reads of every process, in program order, stopping
        // at the first that still cannot be placed.
        let procs: Vec<u16> = state.pending.keys().copied().collect();
        for p in procs {
            let queue = state.pending.get_mut(&p).expect("listed");
            let mut placed = 0;
            let mut min = state.min_slot.get(&p).copied().unwrap_or(0);
            for pr in queue.iter() {
                match place_readonly(&state.value_slots, state.slots.len(), pr.value, min) {
                    Some(slot) => {
                        min = slot;
                        placed += 1;
                    }
                    None => break,
                }
            }
            if placed > 0 {
                state.min_slot.insert(p, min);
                state.pending.get_mut(&p).expect("listed").drain(..placed);
            }
        }
    }

    /// End of stream: any still-deferred read is a violation. Returns the
    /// full violation list.
    pub fn finish(mut self) -> Vec<OnlineViolation> {
        let end = self.events;
        let mut stragglers: Vec<OnlineViolation> = Vec::new();
        for (&addr, state) in &mut self.addrs {
            for queue in state.pending.values_mut() {
                for pr in queue.drain(..) {
                    stragglers.push(OnlineViolation {
                        detected_at: end,
                        issued_at: pr.issued_at,
                        proc: pr.proc,
                        addr,
                        value: pr.value,
                        cause: OnlineCause::EndOfStream,
                    });
                }
            }
        }
        stragglers.sort_by_key(|v| v.issue_key());
        self.violations.extend(stragglers);
        self.violations
    }
}

impl OnlineViolation {
    fn issue_key(&self) -> (u64, u64, u32, u16) {
        (self.detected_at, self.issued_at, self.addr.0, self.proc.0)
    }
}

fn ensure_initial_slot(state: &mut AddrState, initial: Value) {
    // Slot 0 carries the initial value; register it once.
    state.value_slots.entry(initial).or_insert_with(|| {
        let mut v = Vec::with_capacity(4);
        v.insert(0, 0);
        v
    });
}

/// Earliest slot ≥ `min` where `value` is current, if any (and it must not
/// exceed the number of committed writes).
fn place(state: &mut AddrState, value: Value, min: usize) -> Option<usize> {
    place_readonly(&state.value_slots, state.slots.len(), value, min)
}

fn place_readonly(
    value_slots: &HashMap<Value, Vec<usize>>,
    max_slot: usize,
    value: Value,
    min: usize,
) -> Option<usize> {
    let slots = value_slots.get(&value)?;
    let idx = slots.partition_point(|&s| s < min);
    slots.get(idx).copied().filter(|&s| s <= max_slot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn simple_stream_is_clean() {
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::w(1u64));
        v.observe(p(1), Op::r(1u64));
        v.observe(p(0), Op::w(2u64));
        v.observe(p(1), Op::r(2u64));
        assert!(v.clean());
        assert!(v.finish().is_empty());
    }

    #[test]
    fn regression_read_is_flagged() {
        // P1 reads 2 then 1 after the writes committed 1 then 2.
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::w(1u64));
        v.observe(p(0), Op::w(2u64));
        v.observe(p(1), Op::r(2u64));
        assert_eq!(v.observe(p(1), Op::r(1u64)), 0, "deferred, not yet fatal");
        let violations = v.finish();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].cause, OnlineCause::EndOfStream);
        assert_eq!(violations[0].value, Value(1));
    }

    #[test]
    fn deferred_read_served_by_later_write() {
        // The read observes a value committed after it was issued — legal
        // per-address serialization, accepted once the write commits.
        let mut v = OnlineVerifier::new();
        v.observe(p(1), Op::r(7u64)); // deferred
        assert!(v.clean());
        v.observe(p(0), Op::w(7u64));
        assert!(v.clean());
        assert!(v.finish().is_empty());
    }

    #[test]
    fn window_closes_on_own_write() {
        // P1 defers a read of 9, then commits its own write: the read can
        // no longer be served by anything later → flagged at that event.
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::w(1u64));
        v.observe(p(1), Op::r(9u64)); // deferred
        let n = v.observe(p(1), Op::w(2u64));
        assert_eq!(n, 1);
        assert_eq!(v.violations()[0].cause, OnlineCause::WindowClosed);
        assert_eq!(v.violations()[0].detected_at, 2);
    }

    #[test]
    fn rmw_chain_checked_inline() {
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::rw(0u64, 1u64));
        v.observe(p(1), Op::rw(1u64, 2u64));
        assert!(v.clean());
        let n = v.observe(p(0), Op::rw(7u64, 8u64)); // expected 2
        assert_eq!(n, 1);
        assert_eq!(v.violations()[0].cause, OnlineCause::RmwMismatch);
    }

    #[test]
    fn initial_values_respected() {
        let mut v = OnlineVerifier::new();
        v.set_initial(Addr::ZERO, Value(5));
        v.observe(p(0), Op::r(5u64));
        v.observe(p(0), Op::w(1u64));
        v.observe(p(1), Op::r(5u64)); // may still bind to slot 0
        assert!(v.finish().is_empty());
    }

    #[test]
    fn per_process_order_enforced() {
        // P1 reads 2 then 1 while writes commit 1 then 2: the second read's
        // only slot precedes the first read's placement.
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::w(1u64));
        v.observe(p(0), Op::w(2u64));
        v.observe(p(1), Op::r(2u64)); // placed at slot 2
        v.observe(p(1), Op::r(1u64)); // needs slot 1 < 2: deferred forever
        assert_eq!(v.finish().len(), 1);
    }

    #[test]
    fn program_order_preserved_behind_deferred_reads() {
        // P1 defers a read of 5, then issues a read of 1. Even though 1 is
        // already available, it must not be placed before the deferred read.
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::w(1u64));
        v.observe(p(1), Op::r(5u64)); // deferred
        v.observe(p(1), Op::r(1u64)); // queued behind it
        v.observe(p(0), Op::w(5u64));
        // Now 5 is placeable at slot 2 and 1 is NOT placeable at ≥ 2.
        let violations = v.finish();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].value, Value(1));
    }

    #[test]
    fn addresses_are_independent() {
        let mut v = OnlineVerifier::new();
        v.observe(p(0), Op::write(0u32, 1u64));
        v.observe(p(0), Op::write(1u32, 2u64));
        v.observe(p(1), Op::read(1u32, 2u64));
        v.observe(p(1), Op::read(0u32, 1u64));
        assert!(v.finish().is_empty());
    }
}
