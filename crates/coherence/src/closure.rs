//! Polynomial constraint-closure **frontline** for the tiered verifier.
//!
//! The paper's motivating use case is *online* error detection, yet the
//! exact search pays VMC's NP-complete worst case on every address. Roy et
//! al. ("Fast and Generalized Polynomial Time Memory Consistency
//! Verification", PAPERS.md) observe that TSOtool-style constraint closure
//! decides almost every address of a *real* trace in polynomial time: derive
//! ordering constraints from the reads-from (rf), write-order (wo) and
//! from-read (fr) relations, propagate them to a fixpoint, and only
//! escalate the rare residue whose constraint graph stays ambiguous.
//!
//! This module is that frontline, packaged as a three-way outcome:
//!
//! * [`ClosureOutcome::Coherent`] — the closure *proved* coherence: the
//!   forced serving order is acyclic and simulates to a valid schedule.
//! * [`ClosureOutcome::Violation`] — the closure *derived* a contradiction
//!   (a read with no possible writer, an unwritable final value, an emptied
//!   serving window, a must-precede cycle, or an RMW pigeonhole failure).
//! * [`ClosureOutcome::Escalate`] — neither: the residual [`WindowTable`]
//!   of per-operation position intervals is handed to the exact tier, which
//!   resumes from it without re-running the analysis.
//!
//! ## Soundness (why a tiered verdict is bit-identical to exact-only)
//!
//! The closure is the composition of two passes the exact search *already
//! runs first* when `prune.windows` is on: the static prechecks
//! ([`precheck_ops`]) and the feasibility-interval fixpoint
//! ([`windows::analyze`]). Both are deterministic pure functions of the
//! per-address operations, and every constraint they derive is *necessary*
//! (implied by the definition of a coherent schedule — DESIGN.md §4b, §4d).
//! Hoisting them out of [`crate::backtrack`] into a frontline therefore
//! computes the identical result the exact engine would have computed —
//! the same verdicts, the same witness schedules, and the same
//! [`SearchStats`] — so the tier split can never disagree with the exact
//! engine on any input. The differential suite
//! (`crates/sim/tests/tier_differential.rs`) pins this across litmus,
//! generated, healthy-sim and fault-injected traces at 1/2/8 jobs.
//!
//! The closure never answers [`crate::Verdict::Unknown`]: budgets live in
//! the exact tier only, so an `Unknown` from an escalated search always
//! reaches the caller unmasked (pinned by a regression test below).

use crate::backtrack::{precheck_ops, SearchStats};
use crate::verdict::{Violation, ViolationKind};
use crate::windows::{self, WindowOutcome, WindowTable};
use vermem_trace::{AddrOps, Schedule};
use vermem_util::obs;

/// Outcome of the polynomial frontline on one address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClosureOutcome {
    /// Closure success: a coherent schedule was constructed in polynomial
    /// time (the forced serving order simulated to a witness).
    Coherent(Schedule),
    /// A contradiction was derived: the address is certainly incoherent.
    Violation(Violation),
    /// The constraint residue is ambiguous; the exact tier must decide.
    /// Carries the closed [`WindowTable`] so the exact search resumes from
    /// the fixpoint instead of recomputing it.
    Escalate(WindowTable),
}

impl ClosureOutcome {
    /// True if the frontline decided the address (no escalation needed).
    pub fn is_decided(&self) -> bool {
        !matches!(self, ClosureOutcome::Escalate(_))
    }
}

/// Run the constraint-closure frontline on one address.
///
/// Returns the outcome plus the [`SearchStats`] contribution that keeps the
/// tiered pipeline's counters bit-identical to the exact engine's: zero for
/// a closure `Coherent` (the exact engine's windows fast-accept also
/// reports zero) and `window_prunes = 1` for a fixpoint-derived
/// `Violation` (matching the exact engine's windows fast-reject; precheck
/// violations stay at zero there too).
///
/// ```
/// use vermem_coherence::closure::{analyze_ops, ClosureOutcome};
/// use vermem_trace::{Addr, AddrOps, Op, TraceBuilder};
/// // Repeated values across many processes leave reads with several
/// // plausible servers the closure cannot disambiguate: the residual
/// // window table escalates to the exact tier.
/// let (hard, _) = vermem_trace::gen::gen_hard_coherent(4, 6, 2, 12);
/// let (out, _) = analyze_ops(&AddrOps::of(&hard, Addr::ZERO));
/// assert!(matches!(out, ClosureOutcome::Escalate(_)));
///
/// // A single writer forces every rf edge: decided without escalation.
/// let single = TraceBuilder::new()
///     .proc([Op::w(1u64)])
///     .proc([Op::r(1u64), Op::r(1u64)])
///     .build();
/// let (out, _) = analyze_ops(&AddrOps::of(&single, Addr::ZERO));
/// assert!(matches!(out, ClosureOutcome::Coherent(_)));
/// ```
pub fn analyze_ops(ops: &AddrOps) -> (ClosureOutcome, SearchStats) {
    let mut stats = SearchStats::default();
    // rf existence: every read needs a producible value (a writer, or the
    // initial value), and the final value needs a producer.
    if let Some(v) = precheck_ops(ops) {
        return (ClosureOutcome::Violation(v), stats);
    }
    // Constraint propagation to a fixpoint: serving-candidate (rf) sets,
    // forced write-order (wo) and from-read (fr) edges feeding a
    // must-precede graph, and longest-path position windows (the
    // vector-clock view of the same closure).
    match windows::analyze(ops) {
        WindowOutcome::Infeasible => {
            // Same counter contribution and obs events as the exact
            // engine's inline fast-reject (backtrack.rs), keeping tiered
            // stats bit-identical to exact-only.
            stats.window_prunes = 1;
            if obs::enabled() {
                obs::counter_add("search.window.prunes", stats.window_prunes);
                obs::counter_add("search.window.fast_reject", 1);
            }
            (
                ClosureOutcome::Violation(Violation {
                    addr: ops.addr(),
                    kind: ViolationKind::SearchExhausted,
                }),
                stats,
            )
        }
        WindowOutcome::Schedule(s) => {
            if obs::enabled() {
                obs::counter_add("search.window.fast_accept", 1);
            }
            (ClosureOutcome::Coherent(Schedule::from_refs(s)), stats)
        }
        WindowOutcome::Table(t) => (ClosureOutcome::Escalate(t), stats),
    }
}

/// Per-tier accounting for a (whole-execution) verification run: how many
/// addresses each tier decided. Summed field-wise by the parallel reducer
/// in address order, so — like [`SearchStats`] — the counts are
/// deterministic and thread-count-invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Addresses decided without entering an exponential engine: the
    /// Figure 5.3 polynomial fast paths plus closure-frontline decisions.
    pub frontline_decided: u64,
    /// Addresses the exponential tier decided (escalated closure residues,
    /// SAT runs, and — under `--tier=exact` — every general instance, even
    /// when the search's *internal* inference pass settles it).
    pub escalated: u64,
}

impl TierStats {
    /// Field-wise summation (the parallel reducer's operation).
    pub fn absorb(&mut self, other: &TierStats) {
        self.frontline_decided += other.frontline_decided;
        self.escalated += other.escalated;
    }

    /// Total addresses accounted.
    pub fn total(&self) -> u64 {
        self.frontline_decided + self.escalated
    }

    /// Record one address decided by `tier`.
    pub fn record(&mut self, tier: Tier) {
        match tier {
            Tier::Frontline => self.frontline_decided += 1,
            Tier::Exact => self.escalated += 1,
        }
    }
}

/// Which tier decided an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// A polynomial engine: a Figure 5.3 fast path or the closure
    /// frontline.
    Frontline,
    /// An exponential engine: the memoized backtracking search (whether or
    /// not its internal pruning ended up deciding cheaply) or SAT.
    Exact,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{solve_backtracking_ops_with_stats, SearchConfig};
    use crate::verdict::Verdict;
    use vermem_trace::{Addr, Op, Trace, TraceBuilder};

    fn ops_of(t: &Trace) -> AddrOps {
        AddrOps::of(t, Addr::ZERO)
    }

    #[test]
    fn single_writer_addresses_stay_in_the_frontline() {
        // A lone writer of one value forces every rf edge: the closure
        // proves coherence directly, no matter how many processes read.
        let t = TraceBuilder::new()
            .proc([Op::w(1u64)])
            .proc([Op::r(1u64), Op::r(1u64)])
            .proc([Op::r(1u64)])
            .build();
        let (out, stats) = analyze_ops(&ops_of(&t));
        assert!(matches!(out, ClosureOutcome::Coherent(_)), "{out:?}");
        assert_eq!(stats, SearchStats::default());

        // A single-writer *multi-value* address is the read-map fast path:
        // the tiered dispatcher counts it as frontline-decided without
        // even invoking the closure.
        let multi = TraceBuilder::new()
            .proc([Op::w(1u64), Op::w(2u64)])
            .proc([Op::r(1u64), Op::r(2u64)])
            .proc([Op::r(2u64)])
            .build();
        let v = crate::VmcVerifier::new();
        let ops = ops_of(&multi);
        assert_eq!(v.select_ops(&ops), crate::Algorithm::ReadMap);
        let (verdict, _, tier) = v.verify_ops_tiered(&multi, &ops);
        assert!(verdict.is_coherent());
        assert_eq!(tier, Tier::Frontline);
    }

    #[test]
    fn all_reads_of_initial_value_decided_by_closure() {
        // No writes at all: every read must see the initial value; the
        // closure proves the trivial schedule (and catches the violation
        // when one read disagrees).
        let ok = TraceBuilder::new()
            .proc([Op::r(0u64), Op::r(0u64)])
            .proc([Op::r(0u64)])
            .build();
        let (out, _) = analyze_ops(&ops_of(&ok));
        assert!(matches!(out, ClosureOutcome::Coherent(_)), "{out:?}");

        let bad = TraceBuilder::new().proc([Op::r(0u64), Op::r(7u64)]).build();
        let (out, stats) = analyze_ops(&ops_of(&bad));
        match out {
            ClosureOutcome::Violation(v) => {
                assert!(matches!(v.kind, ViolationKind::NoWriterForValue { .. }));
                // Precheck-derived: no window-prune counter, matching the
                // exact engine's precheck path.
                assert_eq!(stats, SearchStats::default());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn rmw_chains_decided_by_closure() {
        // An atomic fetch-and-increment chain: rf edges force a total
        // order; the closure follows it without search.
        let t = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64), Op::rw(2u64, 3u64)])
            .proc([Op::rw(1u64, 2u64), Op::rw(3u64, 4u64)])
            .build();
        let (out, _) = analyze_ops(&ops_of(&t));
        assert!(matches!(out, ClosureOutcome::Coherent(_)), "{out:?}");

        // Pigeonhole failure: two RMWs claim the same read value.
        let bad = TraceBuilder::new()
            .proc([Op::rw(0u64, 1u64)])
            .proc([Op::rw(0u64, 2u64)])
            .build();
        let (out, stats) = analyze_ops(&ops_of(&bad));
        match out {
            ClosureOutcome::Violation(v) => {
                assert_eq!(v.kind, ViolationKind::SearchExhausted);
                assert_eq!(stats.window_prunes, 1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn escalated_residue_agrees_with_exact_search() {
        // A repeated-value interleaving the closure cannot settle (built by
        // the hard-instance generator precisely to defeat inference): it
        // escalates, and resuming the exact search from the escalated
        // table reproduces the from-scratch result bit-for-bit.
        let (t, _) = vermem_trace::gen::gen_hard_coherent(4, 6, 2, 12);
        let ops = ops_of(&t);
        let cfg = SearchConfig::default();
        let (out, pre_stats) = analyze_ops(&ops);
        let table = match out {
            ClosureOutcome::Escalate(table) => table,
            other => panic!("expected escalation, got {other:?}"),
        };
        assert_eq!(pre_stats, SearchStats::default());
        let (v_esc, s_esc) =
            crate::backtrack::solve_escalated_ops_with_stats(&ops, &cfg, Some(table));
        let (v_ref, s_ref) = solve_backtracking_ops_with_stats(&ops, &cfg);
        assert_eq!(v_esc, v_ref);
        assert_eq!(s_esc, s_ref);
    }

    #[test]
    fn budget_unknown_from_exact_tier_is_never_masked() {
        // Regression pin: the frontline never answers Unknown itself, and
        // when the escalated exact search exhausts its budget the Unknown
        // verdict (and its stats) pass through the tiered dispatcher
        // unchanged.
        let (t, _) = vermem_trace::gen::gen_hard_coherent(5, 8, 2, 0);
        let ops = ops_of(&t);
        let cfg = SearchConfig {
            max_states: Some(2),
            ..Default::default()
        };
        let (out, _) = analyze_ops(&ops);
        assert!(
            matches!(out, ClosureOutcome::Escalate(_)),
            "instance must escalate for the pin to bite: {out:?}"
        );
        let tiered = crate::VmcVerifier {
            search: cfg,
            ..Default::default()
        };
        assert!(tiered.tier.frontline, "tiering is on by default");
        let (verdict, stats) = tiered.verify_ops_with_stats(&t, &ops);
        assert_eq!(verdict, Verdict::Unknown);
        let (v_ref, s_ref) = solve_backtracking_ops_with_stats(&ops, &cfg);
        assert_eq!(v_ref, Verdict::Unknown);
        assert_eq!(stats, s_ref);
    }

    #[test]
    fn tier_stats_absorb_and_record() {
        let mut a = TierStats::default();
        a.record(Tier::Frontline);
        a.record(Tier::Exact);
        let mut b = TierStats {
            frontline_decided: 3,
            escalated: 1,
        };
        b.absorb(&a);
        assert_eq!(
            b,
            TierStats {
                frontline_decided: 4,
                escalated: 2,
            }
        );
        assert_eq!(b.total(), 6);
    }
}
